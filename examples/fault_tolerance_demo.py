#!/usr/bin/env python3
"""Fault injection walkthrough: outages, recovery and the elasticity edge.

The demo:

1. builds a deterministic fault plan — both from a seeded MTBF profile
   and by hand — and shows it is reproducible and content-keyed,
2. replays one explicit node outage under ONES and FIFO on the same
   trace and compares evictions, restarts, goodput and JCT against the
   zero-fault twin runs,
3. runs a seeded robustness grid through the experiment Runner and
   prints the per-scheduler JCT degradation (the Fig. 15 harness as a
   robustness benchmark).

Run with::

    python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

import warnings

from repro.analysis.reporting import format_table
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.orchestrator import Runner
from repro.experiments.registry import create_scheduler
from repro.experiments.spec import ExperimentSpec
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator

warnings.filterwarnings("ignore", message="Covariance of the parameters")

TRACE = TraceConfig(num_jobs=6, arrival_rate=1.0 / 15.0, convergence_patience=4)


def demo_plans() -> None:
    print("=== 1. Deterministic fault plans ===")
    config = FaultConfig(profile="mtbf", seed=7, mtbf_hours=0.5, repair_minutes=10)
    plan = config.build_plan(num_nodes=4, horizon=4 * 3600.0)
    print(f"mtbf profile (seed 7): {len(plan)} injections, "
          f"counts {plan.counts()}, key {plan.plan_key()[:12]}")
    again = config.build_plan(num_nodes=4, horizon=4 * 3600.0)
    print(f"regenerated plan identical: {plan == again}")

    explicit = FaultConfig(
        injections=(
            FaultInjection(120.0, FaultKind.NODE_DOWN, 0),
            FaultInjection(720.0, FaultKind.NODE_UP, 0),
        )
    )
    print(f"hand-written outage: node 0 down 120s..720s "
          f"(config key {explicit.config_key()[:12]})")


def _run(scheduler_name: str, faults: FaultConfig | None):
    scheduler = create_scheduler(
        scheduler_name, 2021, **({"population_size": 6} if scheduler_name == "ONES" else {})
    )
    trace = TraceGenerator(TRACE, seed=17).generate()
    simulator = ClusterSimulator(
        make_longhorn_cluster(16),
        scheduler,
        trace,
        config=SimulationConfig(faults=faults),
    )
    return simulator.run()


def demo_single_outage() -> None:
    print()
    print("=== 2. One node outage: ONES vs FIFO on the same trace ===")
    outage = FaultConfig(
        injections=(
            FaultInjection(120.0, FaultKind.NODE_DOWN, 0),
            FaultInjection(720.0, FaultKind.NODE_UP, 0),
        )
    )
    rows = []
    for name in ("ONES", "FIFO"):
        clean = _run(name, None)
        faulted = _run(name, outage)
        rows.append({
            "scheduler": name,
            "clean_jct": round(clean.average_jct, 1),
            "faulted_jct": round(faulted.average_jct, 1),
            "degradation": round(faulted.average_jct / clean.average_jct, 2),
            "evictions": int(faulted.faults["evictions"]),
            "restarts": int(faulted.faults["restarts"]),
            "goodput": round(faulted.faults["goodput"], 3),
        })
    print(format_table(rows))
    print("The outage evicts whichever jobs held node 0; every scheduler")
    print("re-places them through its normal policy path — elastic")
    print("re-configuration is what keeps the ONES degradation low.")


def demo_robustness_grid() -> None:
    print()
    print("=== 3. A robustness grid through the experiment Runner ===")
    spec = ExperimentSpec(
        schedulers=("ONES", "FIFO"),
        capacities=(16,),
        seeds=(7,),
        traces=(TRACE,),
        scheduler_options={"ONES": {"population_size": 6}},
        faults=(None, FaultConfig(profile="mtbf", seed=3, mtbf_hours=0.3,
                                  repair_minutes=8)),
    )
    runner = Runner()
    sweep = runner.run(spec)
    print(f"[runner] {runner.stats.describe()}")
    print("JCT degradation vs zero-fault twin (1.0 = fully absorbed):")
    for name, ratio in sorted(sweep.fault_degradation("jct").items(), key=lambda kv: kv[1]):
        print(f"  {name:6s}: {ratio:5.2f}x")
    print()
    print(format_table([
        {k: (round(v, 3) if isinstance(v, float) else v) for k, v in row.items()}
        for row in sweep.recovery_table()
    ]))


def main() -> None:
    demo_plans()
    demo_single_outage()
    demo_robustness_grid()


if __name__ == "__main__":
    main()
