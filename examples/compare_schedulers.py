#!/usr/bin/env python3
"""Compare ONES against DRL, Tiresias and Optimus on a shared trace.

This is a scaled-down version of the paper's main experiment (Fig. 15 and
Table 4), expressed with the declarative orchestration API: an
:class:`~repro.experiments.spec.ExperimentSpec` grid describes the runs,
a :class:`~repro.experiments.orchestrator.Runner` executes them — serially
or on a process pool (``--workers``), with optional on-disk caching so a
re-run only executes missing cells (``--cache-dir`` + ``--resume``).

Run with::

    python examples/compare_schedulers.py              # ~1-2 minutes
    python examples/compare_schedulers.py --quick      # smaller, ~20 s
    python examples/compare_schedulers.py --workers 4  # parallel cells
"""

from __future__ import annotations

import argparse

from repro.analysis.metrics import completion_fraction_within
from repro.analysis.reporting import ascii_bar_chart, format_table
from repro.analysis.stats import significance_table
from repro.experiments import ExperimentSpec, Runner
from repro.workload.trace import TraceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a smaller configuration")
    parser.add_argument("--gpus", type=int, default=None, help="cluster size (multiple of 4)")
    parser.add_argument("--jobs", type=int, default=None, help="number of jobs in the trace")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size (1 = serial; results are identical)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache per-cell artifacts here (enables --resume)")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already cached in --cache-dir")
    args = parser.parse_args()
    if args.resume and not args.cache_dir:
        parser.error("--resume requires --cache-dir (the cell cache lives there)")

    num_gpus = args.gpus or (16 if args.quick else 32)
    num_jobs = args.jobs or (10 if args.quick else 20)

    spec = ExperimentSpec.comparison(
        num_gpus=num_gpus,
        seed=args.seed,
        trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 30.0),
    )
    print(f"Running {num_jobs} jobs on {num_gpus} GPUs with schedulers: "
          f"{', '.join(spec.schedulers)}")
    runner = Runner(
        backend="process" if args.workers > 1 else "serial",
        workers=args.workers if args.workers > 1 else None,
        cache_dir=args.cache_dir,
    )
    sweep = runner.run(spec, resume=args.resume)
    print(f"[runner] {runner.stats.describe()} ({runner.backend.name} backend)")
    comparison = sweep.to_comparisons()[num_gpus]

    for metric, label in [
        ("jct", "Average JCT (s)"),
        ("execution_time", "Average execution time (s)"),
        ("queuing_time", "Average queuing time (s)"),
    ]:
        print()
        print(label)
        print("-" * len(label))
        print(ascii_bar_chart(comparison.averages(metric), unit="s"))

    print()
    print("Fraction of jobs completed within 200 s")
    fractions = completion_fraction_within(list(comparison.results.values()), 200.0)
    print(ascii_bar_chart({k: 100 * v for k, v in fractions.items()}, unit="%"))

    print()
    improvements = comparison.improvements("ONES", "jct")
    print("ONES average-JCT improvement over baselines:")
    for name, value in improvements.items():
        print(f"  vs {name:10s}: {100 * value:5.1f}%")

    ones = comparison.results["ONES"]
    baselines = [r for n, r in comparison.results.items() if n != "ONES"]
    table4 = significance_table(ones, baselines)
    print()
    print("Wilcoxon significance tests (Table 4)")
    print(format_table([report.as_row() for report in table4.values()]))


if __name__ == "__main__":
    main()
