#!/usr/bin/env python3
"""Compare ONES against DRL, Tiresias and Optimus on a shared trace.

This is a scaled-down version of the paper's main experiment (Fig. 15 and
Table 4): every scheduler replays exactly the same 20-job trace on a
32-GPU cluster, and the script prints average JCT / execution / queuing
time, the fraction of jobs finished within 200 s, and Wilcoxon
significance tests of ONES against each baseline.

Run with::

    python examples/compare_schedulers.py            # ~1-2 minutes
    python examples/compare_schedulers.py --quick    # smaller, ~20 s
"""

from __future__ import annotations

import argparse

from repro.analysis.metrics import completion_fraction_within
from repro.analysis.reporting import ascii_bar_chart, format_table
from repro.analysis.stats import significance_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison
from repro.workload.trace import TraceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a smaller configuration")
    parser.add_argument("--gpus", type=int, default=None, help="cluster size (multiple of 4)")
    parser.add_argument("--jobs", type=int, default=None, help="number of jobs in the trace")
    parser.add_argument("--seed", type=int, default=2021)
    args = parser.parse_args()

    num_gpus = args.gpus or (16 if args.quick else 32)
    num_jobs = args.jobs or (10 if args.quick else 20)

    config = ExperimentConfig(
        num_gpus=num_gpus,
        trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 30.0),
        seed=args.seed,
    )
    print(f"Running {num_jobs} jobs on {num_gpus} GPUs with schedulers: "
          f"{', '.join(config.scheduler_factories())}")
    comparison = run_comparison(config)

    for metric, label in [
        ("jct", "Average JCT (s)"),
        ("execution_time", "Average execution time (s)"),
        ("queuing_time", "Average queuing time (s)"),
    ]:
        print()
        print(label)
        print("-" * len(label))
        print(ascii_bar_chart(comparison.averages(metric), unit="s"))

    print()
    print("Fraction of jobs completed within 200 s")
    fractions = completion_fraction_within(list(comparison.results.values()), 200.0)
    print(ascii_bar_chart({k: 100 * v for k, v in fractions.items()}, unit="%"))

    print()
    improvements = comparison.improvements("ONES", "jct")
    print("ONES average-JCT improvement over baselines:")
    for name, value in improvements.items():
        print(f"  vs {name:10s}: {100 * value:5.1f}%")

    ones = comparison.results["ONES"]
    baselines = [r for n, r in comparison.results.items() if n != "ONES"]
    table4 = significance_table(ones, baselines)
    print()
    print("Wilcoxon significance tests (Table 4)")
    print(format_table([report.as_row() for report in table4.values()]))


if __name__ == "__main__":
    main()
