#!/usr/bin/env python3
"""Two tenants share a live scheduler service for one simulated day.

Stands up the scheduler service *in process* (no sockets needed — the
CLI ``serve``/``submit`` verbs speak the same engine over JSONL/TCP) and
drives it with two tenants of very different temperament:

* ``research`` — a diurnal arrival stream (busy days, quiet nights) of
  small CV jobs, generously quota'd;
* ``prod`` — a steady Poisson trickle of larger NLP fine-tuning jobs,
  capped at 8 outstanding GPUs, so some submissions bounce off the
  admission layer.

Submissions arrive in virtual time over a 24-hour window while ONES
re-packs the cluster continuously.  The demo prints each tenant's
decision ledger, the decision-latency SLO view, and the final per-tenant
goodput after the cluster runs dry.

Run with::

    python examples/online_service_demo.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.reporting import format_table
from repro.service.engine import SchedulerService
from repro.service.load import arrival_summary, generate_submissions
from repro.service.schemas import ServiceConfig, TenantQuota
from repro.workload.arrivals import ArrivalConfig

DAY = 24 * 3600.0


def main() -> None:
    service = SchedulerService(
        ServiceConfig(
            num_gpus=32,
            scheduler="ONES",
            seed=2021,
            mode="virtual",
            tenants=(
                TenantQuota(tenant="research", max_gpus=24),
                TenantQuota(tenant="prod", max_gpus=8, max_active=4),
            ),
        )
    )

    base = ArrivalConfig(rate=1.0 / 1800.0, seed=2021, period_hours=24.0)
    load = generate_submissions(
        ["research"], 40, arrivals=replace(base, profile="diurnal", rate=1.0 / 1200.0),
        gpu_choices=(1, 2, 4), gpu_weights=(0.5, 0.3, 0.2), job_types=("cv",),
    ) + generate_submissions(
        ["prod"], 15, arrivals=base,
        gpu_choices=(2, 4), gpu_weights=(0.6, 0.4), job_types=("nlp",),
    )
    # A 9am prod burst: five 4-GPU jobs land at once, overrunning prod's
    # 8-GPU quota — the admission layer bounces the overflow.
    from repro.service.schemas import JobSubmission

    load += [
        JobSubmission(tenant="prod", job_type="nlp", replicas=4,
                      name=f"prod-burst-{i}", arrival_time=9 * 3600.0 + i)
        for i in range(5)
    ]
    load = [s for s in load if s.arrival_time <= DAY]
    load.sort(key=lambda s: (s.arrival_time, s.tenant))
    print("Generated load:", arrival_summary(load))
    print()

    for submission in load:
        decision = service.submit(submission)
        if decision.status == "rejected":
            print(
                f"  t={decision.virtual_time / 3600.0:5.1f}h  "
                f"{submission.tenant:>8}  REJECTED  {decision.reason}"
            )

    status = service.status()
    print()
    print(
        f"After the last arrival (virtual t={status['virtual_time'] / 3600.0:.1f}h): "
        f"{status['jobs_total']} jobs admitted, {status['jobs_completed']} already "
        f"done, queue depth {status['queue_depth']}, {status['gpus_busy']} GPUs busy"
    )
    print(format_table([
        {
            "tenant": name,
            "submitted": row["submitted"],
            "placed": row["placed"],
            "queued": row["queued"],
            "rejected": row["rejected"],
            "p50 ms": round(row["decision_latency"]["p50_ms"], 2),
            "p99 ms": round(row["decision_latency"]["p99_ms"], 2),
        }
        for name, row in status["tenants"].items()
    ]))

    result = service.drain()
    metrics = service.metrics()
    print()
    print(
        f"Cluster drained at t={service.now / 3600.0:.1f}h: "
        f"{len(result.completed)} completed / {len(result.incomplete)} incomplete, "
        f"avg JCT {result.average_jct / 60.0:.1f} min, "
        f"GPU utilisation {result.gpu_utilization:.0%}"
    )
    print(format_table([
        {
            "tenant": name,
            "completed": row["completed"],
            "mean JCT (min)": round(row["mean_jct"] / 60.0, 1),
            "goodput (GPU-h)": round(row["service_seconds"] / 3600.0, 1),
        }
        for name, row in sorted(metrics["goodput_by_tenant"].items())
    ]))
    overall = metrics["decision_latency"]
    print()
    print(
        f"Decision latency over {int(overall['count'])} decisions: "
        f"p50 {overall['p50_ms']:.2f} ms, p99 {overall['p99_ms']:.2f} ms "
        f"({metrics['submissions_per_second']:.0f} submissions/s sustained)"
    )


if __name__ == "__main__":
    main()
