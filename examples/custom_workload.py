#!/usr/bin/env python3
"""Define a custom workload mix and scheduler configuration.

The Table-2 catalogue is only a default: this example builds a custom
workload template (a ResNet-50 fine-tuning task on a private dataset),
mixes it with two catalogue templates, generates a trace over that custom
catalogue and runs ONES with a tuned configuration (larger population,
Bayesian-linear predictor, gentler scale-down policy).

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.cluster.topology import make_longhorn_cluster
from repro.core.batch_limit import BatchLimitConfig
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.prediction.predictor import PredictorConfig
from repro.sim.simulator import ClusterSimulator
from repro.workload.tasks import TaskFamily, WorkloadTemplate, build_workload_catalog
from repro.workload.trace import TraceConfig, TraceGenerator


def build_custom_catalog():
    """A private fine-tuning task plus two templates from Table 2."""
    custom = WorkloadTemplate(
        name="private-resnet50-finetune",
        family=TaskFamily.CV,
        dataset="private-retail-images",
        model_name="resnet50",
        dataset_size=15_000,
        num_classes=40,
        compute_scale=1.0,
        local_base_batch=64,
        base_lr=0.05,
        target_accuracy=0.72,
        max_accuracy=0.82,
        base_epochs_to_target=10.0,
        critical_batch=1024,
        final_loss=0.3,
    )
    table2 = build_workload_catalog()
    cifar = next(t for t in table2 if t.dataset == "cifar10" and t.model_name == "resnet18")
    bert = next(t for t in table2 if t.dataset == "sst2")
    return [custom, cifar, bert]


def main() -> None:
    catalog = build_custom_catalog()
    print("Custom catalogue:")
    print(format_table([
        {
            "name": t.name,
            "model": t.model_name,
            "dataset size": t.dataset_size,
            "target acc": t.target_accuracy,
        }
        for t in catalog
    ]))

    trace = TraceGenerator(
        TraceConfig(num_jobs=9, arrival_rate=1.0 / 25.0),
        catalog=catalog,
        seed=123,
    ).generate()

    scheduler = ONESScheduler(
        ONESConfig(
            evolution=EvolutionConfig(population_size=12, mutation_rate=0.3),
            predictor=PredictorConfig(backend="blr", history_size=128),
            batch_limits=BatchLimitConfig(sigma_damping=20.0, max_batch_multiplier=8.0),
        ),
        seed=123,
    )

    topology = make_longhorn_cluster(16)
    result = ClusterSimulator(topology, scheduler, trace).run()

    rows = []
    for job_id in sorted(result.completed):
        job = result.jobs[job_id]
        metrics = result.completed[job_id]
        rows.append(
            {
                "job": job_id,
                "task": job.spec.task,
                "JCT (s)": round(metrics["jct"], 1),
                "exec (s)": round(metrics["execution_time"], 1),
                "epochs": int(metrics["epochs"]),
                "max GPUs": max((r.num_gpus for r in job.epoch_records), default=0),
                "max batch": max((r.global_batch for r in job.epoch_records), default=0),
            }
        )
    print()
    print(format_table(rows))
    print()
    print(f"Average JCT: {result.average_jct:.1f} s   "
          f"GPU utilisation: {100 * result.gpu_utilization:.1f} %")


if __name__ == "__main__":
    main()
