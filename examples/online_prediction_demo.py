#!/usr/bin/env python3
"""Demonstrate the online training-progress predictor (§3.2.1, Fig. 6).

The script simulates a handful of jobs to completion, feeds their
training logs to the progress predictor, and then predicts the progress
distribution of a held-out job at several points of its training —
printing the predictive mean, the 90% credible interval and the derived
remaining-workload / remaining-time estimates (Eqs. 5-7).

Run with::

    python examples/online_prediction_demo.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.cluster.topology import make_longhorn_cluster
from repro.core.ones_scheduler import ONESScheduler
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from repro.sim.simulator import ClusterSimulator
from repro.workload.trace import TraceConfig, TraceGenerator


def main() -> None:
    # 1. Simulate a small cluster so we have realistic completed-job logs.
    trace = TraceGenerator(TraceConfig(num_jobs=10, arrival_rate=1.0 / 15.0), seed=7).generate()
    topology = make_longhorn_cluster(16)
    result = ClusterSimulator(topology, ONESScheduler(seed=7), trace).run()
    completed = [result.jobs[j] for j in sorted(result.completed)]
    print(f"Simulated {len(completed)} completed jobs to build a training-log history.")

    # 2. Fit the predictor on all but the last job.
    holdout = completed[-1]
    for backend in ("gpr", "blr"):
        predictor = ProgressPredictor(PredictorConfig(backend=backend), seed=7)
        for job in completed[:-1]:
            predictor.observe_completion(job)
        print()
        print(f"=== Backend: {backend.upper()} "
              f"(fitted on {predictor.history.completed_jobs} jobs, "
              f"{len(predictor.history)} log points) ===")

        # 3. Query the predictor at several points of the held-out job's life.
        rows = []
        records = holdout.epoch_records
        checkpoints = [0, len(records) // 4, len(records) // 2, 3 * len(records) // 4, len(records) - 1]
        throughput = max(holdout.measured_throughput, 1.0)
        for idx in checkpoints:
            record = records[idx]
            # Rebuild a lightweight view of the job as it looked at that epoch.
            from repro.jobs.job import Job

            snapshot = Job(holdout.spec)
            snapshot.start_running(0.0, [0], [min(64, holdout.spec.max_local_batch)])
            snapshot.advance(record.samples_processed, max(record.time, 1.0))
            dist = predictor.progress_distribution(snapshot)
            low, high = dist.confidence_interval(0.9)
            remaining = predictor.remaining_workload(snapshot)
            rows.append(
                {
                    "epoch": record.epoch_index,
                    "samples": int(record.samples_processed),
                    "predicted progress": round(dist.mean, 3),
                    "90% CI": f"[{low:.2f}, {high:.2f}]",
                    "remaining samples": int(remaining),
                    "remaining time (s)": round(remaining / throughput, 1),
                }
            )
        print(format_table(rows))
        actual_total = holdout.samples_processed
        print(f"Held-out job {holdout.job_id} actually processed "
              f"{int(actual_total)} samples over {holdout.epochs_completed} epochs.")


if __name__ == "__main__":
    main()
