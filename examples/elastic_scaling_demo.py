#!/usr/bin/env python3
"""Walk through the elastic batch-size scaling mechanism (Figs. 11, 12, 16).

The demo:

1. starts a 2-worker ResNet-50 job through its worker managers,
2. plans and executes a checkpoint-free migration that adds two workers
   and doubles the batch size, printing the timed protocol steps,
3. compares the elastic re-configuration overhead against checkpoint-based
   migration for every model in the Fig. 16 study.

Run with::

    python examples/elastic_scaling_demo.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.jobs.model_zoo import get_model
from repro.scaling.agent import ScalingAgent
from repro.scaling.coordinator import MigrationCoordinator
from repro.scaling.messages import make_scale_command, make_start_command
from repro.scaling.overhead import OverheadModel
from repro.scaling.worker_manager import WorkerManagerPool


def demo_worker_managers() -> None:
    print("=== 1. Starting a 2-worker job through its worker managers ===")
    pool = WorkerManagerPool(num_gpus=4)
    for gpu in (0, 1):
        pool[gpu].handle(
            make_start_command("resnet50-job", gpu, local_batch=64, peer_gpus=[0, 1],
                               learning_rate=0.1),
            now=0.0,
        )
    print(f"Busy GPUs: {pool.busy_gpus()}   jobs: {pool.jobs_running()}")

    print()
    print("=== 2. Elastic re-configuration: double the local batch in place ===")
    for gpu in (0, 1):
        pool[gpu].handle(
            make_scale_command("resnet50-job", gpu, new_local_batch=128,
                               new_peer_gpus=[0, 1], new_learning_rate=0.2),
            now=60.0,
        )
    for gpu in (0, 1):
        agent = pool[gpu].agent
        print(f"GPU {gpu}: local batch {agent.local_batch}, lr {agent.learning_rate}, "
              f"stopped during scaling: {agent.training_was_stopped_during_scaling()}")


def demo_migration_plan() -> None:
    print()
    print("=== 3. Checkpoint-free migration: add workers 2 and 3 (Fig. 12) ===")
    coordinator = MigrationCoordinator()
    model = get_model("resnet50")
    plan = coordinator.plan_add_workers(
        "resnet50-job", model, previous_gpus=[0, 1], new_gpus=[2, 3], start_time=120.0
    )
    rows = [
        {
            "step": step.name,
            "start (s)": round(step.start, 3),
            "duration (s)": round(step.duration, 3),
            "workers": str(list(step.workers)),
            "overlapped": "yes" if step.overlapped else "no",
        }
        for step in plan.steps
    ]
    print(format_table(rows))
    print(f"Training visibly paused for {plan.total_pause:.2f} s "
          f"(total migration work: {plan.makespan:.2f} s)")

    # Drive real scaling agents through the plan to prove the protocol holds.
    agents = {g: ScalingAgent(g, "resnet50-job") for g in range(4)}
    for gpu in (0, 1):
        agents[gpu].load_job(0.0, 64, 0.1, [0, 1])
        agents[gpu].start_training(0.0)
    coordinator.execute_plan(
        plan,
        agents,
        new_local_batches={g: 64 for g in range(4)},
        new_learning_rate=0.2,
        new_topology=[0, 1, 2, 3],
    )
    print(f"All four workers training: "
          f"{all(agents[g].is_training for g in range(4))}")


def demo_overheads() -> None:
    print()
    print("=== 4. Elastic vs checkpoint-based overhead per model (Fig. 16) ===")
    overheads = OverheadModel()
    names = ["alexnet", "resnet18", "resnet50", "vgg16", "googlenet", "inceptionv3", "lstm"]
    rows = []
    for name in names:
        model = get_model(name)
        elastic = overheads.elastic_overhead(model)
        checkpoint = overheads.checkpoint_overhead(model)
        rows.append(
            {
                "model": name,
                "elastic (s)": round(elastic, 2),
                "checkpoint (s)": round(checkpoint, 2),
                "speedup": round(checkpoint / elastic, 1),
            }
        )
    print(format_table(rows))


def main() -> None:
    demo_worker_managers()
    demo_migration_plan()
    demo_overheads()


if __name__ == "__main__":
    main()
