#!/usr/bin/env python3
"""Quickstart: schedule a small trace with ONES on a simulated GPU cluster.

Run with::

    python examples/quickstart.py

The script resolves the ONES scheduler from the experiment registry by
name, generates a 10-job trace from the paper's Table-2 workload
catalogue, replays it on a 16-GPU Longhorn-like cluster through the
shared execution path (:func:`repro.experiments.simulate_trace`) and
prints per-job and aggregate scheduling metrics.  To run whole grids of
(scheduler x capacity x seed) cells — in parallel, with caching — see
``examples/compare_schedulers.py`` and the ``Runner`` API.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments import create_scheduler, simulate_trace
from repro.sim.simulator import SimulationConfig
from repro.utils.units import format_duration
from repro.workload.trace import TraceConfig, TraceGenerator


def main() -> None:
    # 1. A cluster: 4 Longhorn nodes x 4 V100 GPUs.
    topology = make_longhorn_cluster(16)
    print(f"Cluster: {topology.describe()}")

    # 2. A workload trace drawn from the Table-2 catalogue.
    trace_config = TraceConfig(num_jobs=10, arrival_rate=1.0 / 20.0)
    trace = TraceGenerator(trace_config, seed=42).generate()
    print(f"Trace: {len(trace)} jobs, first arrival at t=0, "
          f"last at t={trace[-1].arrival_time:.0f}s")

    # 3. The ONES scheduler, resolved from the registry by name
    #    (small population so the example runs in seconds).
    scheduler = create_scheduler("ONES", seed=42, population_size=8)

    # 4. Replay the trace.
    result = simulate_trace(
        scheduler, trace, num_gpus=16, simulation=SimulationConfig(max_time=24 * 3600)
    )

    # 5. Report.
    rows = []
    for job_id in sorted(result.completed):
        job = result.jobs[job_id]
        metrics = result.completed[job_id]
        max_batch = max((b for _, b in job.batch_history), default=0)
        rows.append(
            {
                "job": job_id,
                "task": job.spec.task,
                "submitted B": job.spec.base_batch,
                "max B": max_batch,
                "epochs": int(metrics["epochs"]),
                "JCT": format_duration(metrics["jct"]),
                "exec": format_duration(metrics["execution_time"]),
                "queue": format_duration(metrics["queuing_time"]),
            }
        )
    print()
    print(format_table(rows))
    print()
    summary = result.summary()
    print(f"Average JCT       : {summary['average_jct']:.1f} s")
    print(f"Average execution : {summary['average_execution_time']:.1f} s")
    print(f"Average queuing   : {summary['average_queuing_time']:.1f} s")
    print(f"GPU utilisation   : {100 * summary['gpu_utilization']:.1f} %")
    print(f"Re-configurations : {summary['reconfigurations']}")
    print()
    print(f"Scheduler internals: {scheduler.describe_state()}")


if __name__ == "__main__":
    main()
