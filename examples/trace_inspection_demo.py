#!/usr/bin/env python3
"""Record, inspect, and export a structured execution trace.

Every layer of the repro stack — the simulation kernel, the ONES
evolutionary search, the hierarchical reconciler, the fault handlers —
emits typed span/event records into one :class:`TraceRecorder` when a
recorder is installed.  This demo runs a small faulted hierarchical
simulation with tracing on, then walks through what the trace answers:

* *why* each reconfiguration happened (winning score, generations run,
  whether the allocation deployed),
* which shard evolved when, generation by generation,
* which jobs the reconciler assigned to which partition,
* what each fault evicted.

It finishes by exporting JSONL (the schema the ``repro-ones trace``
inspector reads) and Chrome ``trace_event`` JSON — open the latter at
https://ui.perfetto.dev to see the run on a timeline.

The same artifacts come out of the CLI without writing any code::

    repro-ones run --scheduler ones-hier --gpus 256 --trace-out run.jsonl
    repro-ones trace run.jsonl                 # summary tables
    repro-ones trace run.jsonl --tree          # nested span tree
    repro-ones trace run.jsonl --filter-cat ones --tree
    repro-ones trace run.jsonl --chrome run.chrome.json

Run with::

    python examples/trace_inspection_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig
from repro.core.partitioned import HierarchicalConfig, HierarchicalONESScheduler
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.obs.trace import (
    TraceRecorder,
    filter_records,
    format_tree,
    install_tracer,
    summarize,
    uninstall_tracer,
    validate_trace_file,
)
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator


def run_traced_simulation() -> TraceRecorder:
    """A small faulted hierarchical run with the recorder installed."""
    tracer = install_tracer(TraceRecorder())
    trace = TraceGenerator(
        TraceConfig(num_jobs=8, arrival_rate=1.0 / 15.0, convergence_patience=3),
        seed=17,
    ).generate()
    scheduler = HierarchicalONESScheduler(
        HierarchicalConfig(
            partitions=2,
            ones=ONESConfig(evolution=EvolutionConfig(population_size=4)),
        ),
        seed=2021,
    )
    faults = FaultConfig(
        injections=(
            FaultInjection(60.0, FaultKind.NODE_DOWN, 1),
            FaultInjection(300.0, FaultKind.NODE_UP, 1),
        )
    )
    result = ClusterSimulator(
        make_longhorn_cluster(16), scheduler, trace,
        config=SimulationConfig(faults=faults),
    ).run()
    uninstall_tracer()
    print(f"simulated {len(result.completed)} jobs, makespan "
          f"{result.makespan:.0f}s, {len(tracer)} trace records\n")
    return tracer


def show_summary(tracer: TraceRecorder) -> None:
    summary = summarize(tracer.records())
    print("=== record counts by category ===")
    print(format_table([
        {"category": cat, "records": count}
        for cat, count in summary["by_cat"].items()
    ]))
    print()


def show_reconfig_decisions(tracer: TraceRecorder) -> None:
    """Each deployment decision, with the evidence behind it."""
    decisions = filter_records(tracer.records(), name="reconfig_decision")
    print(f"=== reconfiguration decisions ({len(decisions)}) ===")
    rows = [
        {
            "t (s)": round(record["t"], 1),
            "shard": record["attrs"]["shard"],
            "score": round(record["attrs"]["score"], 4),
            "generations": record["attrs"]["generations"],
            "deployed": record["attrs"]["deployed"],
        }
        for record in decisions[:8]
    ]
    print(format_table(rows))
    if len(decisions) > 8:
        print(f"... and {len(decisions) - 8} more")
    print()


def show_fault_span_tree(tracer: TraceRecorder) -> None:
    """The nested view around the fault events."""
    faults = filter_records(tracer.records(), cat="fault")
    print(f"=== fault events ({len(faults)}) ===")
    for line in format_tree(faults, max_records=10):
        print(line)
    print()


def export_artifacts(tracer: TraceRecorder) -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    jsonl = out_dir / "run.trace.jsonl"
    chrome = out_dir / "run.chrome.json"
    tracer.export_jsonl(str(jsonl))
    tracer.export_chrome(str(chrome))
    errors = validate_trace_file(str(jsonl))
    print("=== exports ===")
    print(f"JSONL ({'schema-valid' if not errors else 'INVALID'}): {jsonl}")
    print(f"  inspect with: repro-ones trace {jsonl} --tree")
    print(f"Chrome trace_event: {chrome}")
    print("  open at https://ui.perfetto.dev (or chrome://tracing)")


def main() -> None:
    tracer = run_traced_simulation()
    show_summary(tracer)
    show_reconfig_decisions(tracer)
    show_fault_span_tree(tracer)
    export_artifacts(tracer)


if __name__ == "__main__":
    main()
