#!/usr/bin/env python3
"""Distributed, crash-proof sweeps on the durable work queue.

A sweep grid is just pure, content-hashed cells, so it can be executed
by any number of worker processes — on this host or on several hosts
sharing a filesystem — coordinating through nothing but a queue
directory: an append-only work log plus atomic per-cell lease files.
This demo runs the whole story on one machine:

1. enqueue a small scheduler x capacity grid into a queue directory and
   execute it with two local workers, checking the result is
   bit-identical to a plain serial run;
2. SIGKILL a worker *mid-cell* and watch the lease protocol recover:
   the dead worker's lease expires, another worker re-claims the cell,
   and the sweep still finishes with identical artifacts;
3. re-run the sweep against the same queue directory: every cell is
   already terminal, so nothing executes (idempotent resume by content
   key).

The same protocol scales out with the CLI::

    # one host enqueues and waits
    repro-ones sweep ... --backend queue --queue-dir /shared/q --workers 0
    # any number of hosts attach workers
    repro-ones worker /shared/q --exit-when-done

Run with::

    python examples/distributed_sweep_demo.py          # ~30 s
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.experiments.backends import ExecutionPolicy
from repro.experiments.orchestrator import Runner
from repro.experiments.queue import WorkQueue
from repro.experiments.spec import ExperimentSpec
from repro.workload.trace import TraceConfig


def demo_grid() -> ExperimentSpec:
    return ExperimentSpec(
        schedulers=("ONES", "FIFO"),
        capacities=(8, 16),
        seeds=(7,),
        traces=(TraceConfig(num_jobs=5, arrival_rate=0.1),),
        scheduler_options={"ONES": {"population_size": 8}},
    )


def start_worker(queue_dir: Path, *extra: str) -> subprocess.Popen:
    """Start ``python -m repro.experiments.worker`` against ``queue_dir``."""
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.worker", str(queue_dir), *extra],
        env=env,
    )


def wait_for_claim(queue_dir: Path, timeout: float = 60.0) -> None:
    log = queue_dir / "log.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if log.exists():
            for line in log.read_text().splitlines():
                try:
                    if json.loads(line).get("event") == "claimed":
                        return
                except json.JSONDecodeError:
                    continue
        time.sleep(0.1)
    raise RuntimeError("no worker claimed a cell in time")


def main() -> None:
    spec = demo_grid()
    print(f"grid: {spec.num_cells} cells "
          f"({', '.join(spec.schedulers)} x {list(spec.capacities)} GPUs)")

    print("\n--- serial reference run ---")
    serial = Runner(backend="serial").run(spec)

    with tempfile.TemporaryDirectory() as tmp:
        print("\n--- 1. queue-backed sweep, two local workers ---")
        runner = Runner(backend="queue", queue_dir=os.path.join(tmp, "q1"),
                        workers=2, lease_ttl=60.0)
        sweep = runner.run(spec)
        print(f"[runner] {runner.stats.describe()}")
        assert sweep.to_json() == serial.to_json()
        print("queue artifacts are bit-identical to serial")

        print("\n--- 2. chaos drill: SIGKILL a worker mid-cell ---")
        qdir = Path(tmp) / "q2"
        queue = WorkQueue(qdir, lease_ttl=2.0, policy=ExecutionPolicy(max_retries=3))
        queue.enqueue_all(spec.expand())
        # The victim claims a cell, then holds it open without finishing —
        # the SIGKILL lands mid-cell, exactly the worst moment.
        victim = start_worker(qdir, "--hold-s", "300", "--worker-id", "victim",
                              "--ttl", "2")
        wait_for_claim(qdir)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        print("victim worker SIGKILLed while holding a lease")
        rescuer = start_worker(qdir, "--exit-when-done", "--worker-id", "rescuer")
        rescuer.wait(timeout=300)
        status = queue.status()
        print(f"recovered: {status.completed} completed, "
              f"{status.expired_leases} lease(s) expired, {status.claims} claims")
        assert status.terminal and status.dead == 0
        chaos_runner = Runner(backend="queue", queue_dir=qdir, workers=0,
                              lease_ttl=2.0)
        chaos_sweep = chaos_runner.run(spec)
        assert chaos_sweep.to_json() == serial.to_json()
        print("sweep recovered from worker death, artifacts still bit-identical")

        print("\n--- 3. idempotent resume against the same queue dir ---")
        resumed = Runner(backend="queue", queue_dir=os.path.join(tmp, "q1"),
                         workers=0, lease_ttl=60.0)
        again = resumed.run(spec)
        assert again.to_json() == serial.to_json()
        print(f"[runner] {resumed.stats.describe()} — no new claims, "
              "every cell served from the durable result store")

    print("\ndistributed sweep demo OK")


if __name__ == "__main__":
    main()
