#!/usr/bin/env python3
"""Visualise how two schedulers use the cluster over time.

Runs the same 12-job trace under ONES and Tiresias on 16 GPUs and prints,
for each run, an ASCII utilisation sparkline, telemetry summary and a
compact per-job Gantt listing — showing how ONES keeps the cluster
saturated by growing and shrinking jobs while a fixed-size scheduler
leaves GPUs idle.

Run with::

    python examples/cluster_timeline.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.baselines.tiresias import TiresiasScheduler
from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.sim.simulator import ClusterSimulator
from repro.sim.telemetry import ascii_utilization_sparkline, job_gantt, summarize_run
from repro.workload.trace import TraceConfig, TraceGenerator


def run_and_report(name, scheduler, trace):
    topology = make_longhorn_cluster(16)
    result = ClusterSimulator(topology, scheduler, trace).run()
    telemetry = summarize_run(result)

    print(f"=== {name} ===")
    print(f"utilisation over time: |{ascii_utilization_sparkline(result, width=64)}|")
    print(format_table([{
        "avg JCT (s)": round(result.average_jct, 1),
        "makespan (s)": round(result.makespan, 1),
        "mean util": f"{100 * telemetry.mean_utilization:.0f}%",
        "peak util": f"{100 * telemetry.peak_utilization:.0f}%",
        "mean GPUs/job": round(telemetry.mean_gpus_per_job, 2),
        "mean peak-batch ratio": round(telemetry.mean_peak_batch_ratio, 2),
        "reconfigs": telemetry.total_reconfigurations,
    }]))

    segments = job_gantt(result.jobs)
    rows = []
    for job_id in sorted(result.completed):
        job_segments = [s for s in segments if s.job_id == job_id]
        rows.append(
            {
                "job": job_id,
                "segments": len(job_segments),
                "first start (s)": round(min(s.start for s in job_segments), 1),
                "last end (s)": round(max(s.end for s in job_segments), 1),
                "peak GPUs": max(s.num_gpus for s in job_segments),
            }
        )
    print(format_table(rows))
    print()
    return result


def main() -> None:
    trace = TraceGenerator(TraceConfig(num_jobs=12, arrival_rate=1.0 / 20.0), seed=99).generate()
    ones = run_and_report(
        "ONES",
        ONESScheduler(ONESConfig(evolution=EvolutionConfig(population_size=10)), seed=99),
        trace,
    )
    tiresias = run_and_report("Tiresias", TiresiasScheduler(), trace)
    improvement = 1.0 - ones.average_jct / tiresias.average_jct
    print(f"ONES reduces average JCT by {100 * improvement:.1f}% on this trace.")


if __name__ == "__main__":
    main()
