"""Tests for repro.experiments.figures — shape checks for every figure/table."""

import numpy as np
import pytest

from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.workload.trace import TraceConfig


@pytest.fixture
def small_config():
    config = ExperimentConfig.small(num_gpus=8, num_jobs=5, seed=21)
    config.trace = TraceConfig(num_jobs=5, arrival_rate=1.0 / 10.0, convergence_patience=3)
    config.schedulers = {
        "ONES": lambda seed: ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=seed
        ),
        "Tiresias": lambda seed: TiresiasScheduler(),
    }
    return config


class TestFigure2:
    def test_elastic_dominates_fixed_at_scale(self):
        data = figures.figure2_throughput_scaling()
        assert len(data["workers"]) == 8
        assert data["elastic_batch"][-1] > data["fixed_batch"][-1]
        # Fixed-batch curve saturates: its best point is not the last one.
        assert np.argmax(data["fixed_batch"]) < len(data["fixed_batch"]) - 1


class TestFigure3:
    def test_more_gpus_converge_slower(self):
        data = figures.figure3_convergence_vs_gpus(epochs=120)
        assert data["1_gpus"][60] > data["8_gpus"][60]
        for key in ("1_gpus", "2_gpus", "4_gpus", "8_gpus"):
            assert np.all(np.diff(data[key]) >= -1e-12)


class TestFigure13And14:
    def test_abrupt_scaling_spikes_loss(self):
        data = figures.figure13_abrupt_scaling()
        switch = int(data["switch_epoch"][0])
        assert data["scaled_batch"][switch] > data["fixed_batch"][switch]
        assert data["scaled_batch"][switch] > data["scaled_batch"][switch - 1]

    def test_gradual_scaling_stays_smooth(self):
        data = figures.figure14_gradual_scaling()
        assert np.max(np.diff(data["loss"])) < 0.05
        assert len(data["loss"]) == sum(e for _, e in ((256, 30), (1024, 30), (4096, 30)))


class TestTables:
    def test_table2_counts(self):
        summary = figures.table2_workload_catalog()
        assert summary["total"] == 50

    def test_table3_matches_paper(self):
        rows = {row["Scheduler"]: row for row in figures.table3_capabilities()}
        assert rows["ONES"]["Elastic Batch Size"] == "Y"
        assert rows["DRL"]["Allow Preemption"] == "N"
        assert rows["Tiresias"]["Elastic Job Size"] == "N"
        assert rows["Optimus"]["Greedy/Dynamic Strategy"] == "Greedy"


class TestFigure16:
    def test_checkpoint_dwarfs_elastic(self):
        table = figures.figure16_overheads()
        assert len(table) == 7
        for model, row in table.items():
            assert row["checkpoint"] > row["elastic"], model


class TestFigure15SmallScale:
    def test_comparison_payload_structure(self, small_config):
        payload = figures.figure15_comparison(small_config)
        assert set(payload["averages_jct"]) == {"ONES", "Tiresias"}
        assert "table4" in payload
        assert "Tiresias" in payload["table4"]
        assert 0.0 <= payload["fraction_within_200s"]["ONES"] <= 1.0

    def test_ones_wins_on_average_jct(self, small_config):
        payload = figures.figure15_comparison(small_config)
        averages = payload["averages_jct"]
        assert averages["ONES"] <= averages["Tiresias"]
