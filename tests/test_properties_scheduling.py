"""Property-based tests of scheduling-layer invariants (hypothesis).

These complement ``test_properties.py`` (data-structure level) with
invariants of the policy layer: the batch-size limiter never leaves its
legal range, the fill operator never violates Eq. 4's one-job-per-GPU
constraint or device-memory bounds, and derived allocations always stay
consistent with their genome.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch_limit import BatchLimitConfig, BatchSizeLimiter
from repro.core.operators import fill_idle_gpus, refresh, uniform_mutation
from repro.core.schedule import IDLE, Schedule
from tests._core_helpers import make_context, make_jobs
from tests.conftest import make_job


# --- batch-size limiter ---------------------------------------------------------------------


@st.composite
def limiter_scenarios(draw):
    base_batch = draw(st.sampled_from([32, 64, 128, 256]))
    dataset_size = draw(st.sampled_from([2_000, 10_000, 40_000]))
    epochs = draw(st.integers(min_value=1, max_value=30))
    executed_times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
            min_size=epochs,
            max_size=epochs,
        )
    )
    contended = draw(st.lists(st.booleans(), min_size=epochs, max_size=epochs))
    rejections = draw(st.integers(min_value=0, max_value=5))
    return base_batch, dataset_size, executed_times, contended, rejections


class TestLimiterProperties:
    @settings(max_examples=60, deadline=None)
    @given(limiter_scenarios())
    def test_limit_always_within_legal_range(self, scenario):
        base_batch, dataset_size, executed_times, contended, rejections = scenario
        config = BatchLimitConfig()
        limiter = BatchSizeLimiter(config)
        job = make_job(
            job_id="p", base_batch=base_batch, dataset_size=dataset_size, requested_gpus=1
        )
        job.start_running(0.0, [0], [min(base_batch, job.spec.max_local_batch)])
        limiter.on_job_arrival(job)
        upper = max(1, min(int(config.max_batch_multiplier * base_batch), dataset_size))
        for epoch, (t, c) in enumerate(zip(executed_times, contended), start=1):
            job.epochs_completed = epoch
            limit = limiter.on_epoch_end(job, executed_time=t, contended=c)
            assert config.min_batch <= limit <= upper
        for _ in range(rejections):
            limit = limiter.on_schedule_rejection(job)
            assert config.min_batch <= limit <= upper

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_uncontended_growth_is_monotone_until_cap(self, epochs):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=1e-9))
        job = make_job(job_id="p", base_batch=64, dataset_size=50_000)
        job.start_running(0.0, [0], [64])
        limiter.on_job_arrival(job)
        previous = limiter.limit("p")
        for epoch in range(1, epochs + 1):
            job.epochs_completed = epoch
            current = limiter.on_epoch_end(job, executed_time=10.0 * epoch, contended=False)
            assert current >= previous
            previous = current


# --- operators ----------------------------------------------------------------------------------


@st.composite
def operator_scenarios(draw):
    num_jobs = draw(st.integers(min_value=1, max_value=5))
    num_gpus = draw(st.sampled_from([4, 8, 16]))
    genome = draw(
        st.lists(
            st.integers(min_value=IDLE, max_value=num_jobs - 1),
            min_size=num_gpus,
            max_size=num_gpus,
        )
    )
    limit_multiplier = draw(st.sampled_from([1, 2, 8, 32]))
    mutation_rate = draw(st.floats(min_value=0.0, max_value=1.0))
    return num_jobs, num_gpus, genome, limit_multiplier, mutation_rate


def _context_for(num_jobs, num_gpus, limit_multiplier, seed=0):
    jobs = make_jobs(num_jobs)
    limits = {j: job.spec.base_batch * limit_multiplier for j, job in jobs.items()}
    return make_context(jobs, num_gpus=num_gpus, limits=limits, seed=seed)


class TestOperatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(operator_scenarios())
    def test_refresh_and_fill_respect_constraints(self, scenario):
        num_jobs, num_gpus, genome, limit_multiplier, _ = scenario
        ctx = _context_for(num_jobs, num_gpus, limit_multiplier)
        schedule = Schedule(roster=ctx.roster, genome=np.asarray(genome, dtype=np.int64))
        refreshed = refresh(schedule, ctx)
        filled = fill_idle_gpus(refreshed, ctx)
        # One job per GPU is structural; counts never exceed desired or cluster.
        for job_id, count in filled.gpu_counts().items():
            assert 1 <= count <= min(ctx.desired_gpus(job_id), num_gpus)
        # Materialised allocations respect device memory limits.
        allocation = filled.to_allocation(ctx.jobs, ctx.limits)
        allocation.validate(
            num_gpus,
            max_local_batch={j: job.spec.max_local_batch for j, job in ctx.jobs.items()},
        )
        # If anything is waiting, the cluster is saturated up to desired sizes.
        if filled.waiting_jobs():
            for job_id in filled.placed_jobs():
                assert filled.gpu_count(job_id) <= ctx.desired_gpus(job_id)

    @settings(max_examples=40, deadline=None)
    @given(operator_scenarios())
    def test_mutation_output_is_executable(self, scenario):
        num_jobs, num_gpus, genome, limit_multiplier, mutation_rate = scenario
        ctx = _context_for(num_jobs, num_gpus, limit_multiplier, seed=1)
        schedule = Schedule(roster=ctx.roster, genome=np.asarray(genome, dtype=np.int64))
        mutated = uniform_mutation(fill_idle_gpus(schedule, ctx), ctx, mutation_rate)
        allocation = mutated.to_allocation(ctx.jobs, ctx.limits)
        allocation.validate(
            num_gpus,
            max_local_batch={j: job.spec.max_local_batch for j, job in ctx.jobs.items()},
        )
        # Every placed job's derived batch respects its limit and dataset.
        for job_id in mutated.placed_jobs():
            job = ctx.jobs[job_id]
            batch = mutated.global_batch(job, ctx.limit(job_id))
            assert batch <= max(ctx.limit(job_id), mutated.gpu_count(job_id))
            assert batch <= job.dataset_size
