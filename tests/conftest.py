"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.cluster.topology import ClusterTopology, make_longhorn_cluster
from repro.jobs.convergence import ConvergenceProfile
from repro.jobs.job import Job, JobSpec
from repro.jobs.model_zoo import get_model
from repro.jobs.throughput import ThroughputModel
from repro.workload.tasks import build_workload_catalog, make_job_spec
from repro.workload.trace import TraceConfig, TraceGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_topology() -> ClusterTopology:
    """A 2-node / 8-GPU Longhorn-like cluster."""
    return make_longhorn_cluster(8)


@pytest.fixture
def topology16() -> ClusterTopology:
    """A 4-node / 16-GPU Longhorn-like cluster."""
    return make_longhorn_cluster(16)


@pytest.fixture
def throughput_model(small_topology) -> ThroughputModel:
    """Throughput model over the small cluster."""
    return ThroughputModel(small_topology)


def make_profile(
    base_epochs: float = 5.0,
    target: float = 0.8,
    max_acc: float = 0.9,
    critical_batch: int = 512,
) -> ConvergenceProfile:
    """A small convergence profile for unit tests."""
    return ConvergenceProfile(
        base_epochs_to_target=base_epochs,
        target_accuracy=target,
        max_accuracy=max_acc,
        initial_loss=2.3,
        final_loss=0.1,
        reference_batch=128,
        critical_batch=critical_batch,
    )


def make_spec(
    job_id: str = "job-a",
    model_name: str = "resnet18",
    dataset_size: int = 4000,
    base_batch: int = 128,
    requested_gpus: int = 1,
    arrival_time: float = 0.0,
    base_epochs: float = 5.0,
    patience: int = 3,
) -> JobSpec:
    """A compact job spec whose jobs finish in a handful of epochs."""
    return JobSpec(
        job_id=job_id,
        task=f"test-{model_name}",
        model=get_model(model_name),
        dataset="testset",
        dataset_size=dataset_size,
        num_classes=10,
        convergence=make_profile(base_epochs=base_epochs),
        base_batch=base_batch,
        base_lr=0.1,
        requested_gpus=requested_gpus,
        arrival_time=arrival_time,
        convergence_patience=patience,
    )


def make_job(**kwargs) -> Job:
    """A fresh Job built from :func:`make_spec`."""
    return Job(make_spec(**kwargs))


def make_running_job(
    job_id: str = "job-a",
    gpu_ids=(0,),
    local_batches=(128,),
    now: float = 0.0,
    **kwargs,
) -> Job:
    """A Job already running on the given GPUs."""
    job = make_job(job_id=job_id, **kwargs)
    job.start_running(now, gpu_ids=list(gpu_ids), local_batches=list(local_batches))
    return job


@pytest.fixture
def job_factory():
    """Factory fixture returning :func:`make_job`."""
    return make_job


@pytest.fixture
def spec_factory():
    """Factory fixture returning :func:`make_spec`."""
    return make_spec


@pytest.fixture
def running_job_factory():
    """Factory fixture returning :func:`make_running_job`."""
    return make_running_job


@pytest.fixture
def small_trace():
    """A 6-job trace drawn from the Table-2 catalogue."""
    config = TraceConfig(num_jobs=6, arrival_rate=1.0 / 10.0)
    return TraceGenerator(config, seed=5).generate()


@pytest.fixture
def tiny_trace():
    """A 3-job trace of quick jobs for fast end-to-end tests."""
    catalog = build_workload_catalog()
    cifar = [t for t in catalog if t.dataset == "cifar10"][:3]
    specs = []
    for i, template in enumerate(cifar):
        spec = make_job_spec(
            template,
            job_id=f"tiny-{i}",
            arrival_time=float(5 * i),
            requested_gpus=1,
            convergence_patience=3,
        )
        specs.append(spec)
    return specs


@pytest.fixture
def simple_allocation() -> Allocation:
    """Two jobs on four GPUs."""
    return Allocation(
        {
            0: WorkerAssignment("job-a", 64),
            1: WorkerAssignment("job-a", 64),
            2: WorkerAssignment("job-b", 32),
            3: WorkerAssignment("job-b", 32),
        }
    )
