"""Tests for repro.cluster.placement."""

import pytest

from repro.cluster.placement import (
    contiguous_runs,
    fragmentation,
    nodes_spanned,
    pack_workers,
    placement_quality,
)


class TestPlacementQuality:
    def test_perfectly_packed(self, small_topology):
        assert placement_quality(small_topology, [0, 1, 2, 3]) == pytest.approx(1.0)

    def test_spread_is_worse(self, small_topology):
        packed = placement_quality(small_topology, [0, 1])
        spread = placement_quality(small_topology, [0, 4])
        assert spread < packed

    def test_empty_is_perfect(self, small_topology):
        assert placement_quality(small_topology, []) == 1.0


class TestFragmentation:
    def test_no_free_gpus(self, small_topology):
        assert fragmentation(small_topology, []) == 0.0

    def test_concentrated_free_gpus(self, small_topology):
        assert fragmentation(small_topology, [0, 1, 2, 3]) == 0.0

    def test_scattered_free_gpus(self, small_topology):
        assert fragmentation(small_topology, [0, 4]) > 0.0


class TestNodesSpanned:
    def test_delegates_to_topology(self, small_topology):
        assert nodes_spanned(small_topology, [0, 7]) == 2


class TestPackWorkers:
    def test_packs_in_job_order(self):
        packed = pack_workers(
            gpu_order=[0, 1, 2, 3],
            workers_per_job={"a": [(3, 8), (1, 8)], "b": [(0, 4)]},
            job_order=["a", "b"],
        )
        assert packed == {0: ("a", 8), 1: ("a", 8), 2: ("b", 4)}

    def test_too_many_workers_raises(self):
        with pytest.raises(ValueError, match="cannot pack"):
            pack_workers([0], {"a": [(0, 1), (1, 1)]}, ["a"])

    def test_missing_job_in_order_raises(self):
        with pytest.raises(ValueError, match="missing jobs"):
            pack_workers([0, 1], {"a": [(0, 1)]}, ["b"])

    def test_empty(self):
        assert pack_workers([0, 1], {}, []) == {}


class TestContiguousRuns:
    def test_single_run(self):
        assert contiguous_runs([2, 3, 4]) == [(2, 3)]

    def test_multiple_runs(self):
        assert contiguous_runs([0, 1, 5, 7, 8]) == [(0, 2), (5, 1), (7, 2)]

    def test_empty(self):
        assert contiguous_runs([]) == []
