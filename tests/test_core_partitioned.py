"""Hierarchical partitioned ONES: flat parity, reconciler properties, wide path.

The parity suite is differential — the single-partition configuration
must reproduce flat ONES *bit-for-bit* (full ``SimulationResult``
payload), faulted and unfaulted, because the scheduler delegates
wholesale to one flat instance in that mode.  The property suite pins
the reconciler invariants: a job's workers never span two partitions,
assignments are sticky, and gangs wider than a partition spill to the
whole-node wide path and get placed.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import replace

from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.core.partitioned import (
    WIDE,
    HierarchicalConfig,
    HierarchicalONESScheduler,
)
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.sim.views import partition_nodes
from repro.workload.trace import TraceConfig, TraceGenerator

warnings.filterwarnings("ignore", message="Covariance of the parameters")

SEED = 2021


def _trace(num_jobs=8, seed=17, patience=3, interval=20.0):
    config = TraceConfig(
        num_jobs=num_jobs, arrival_rate=1.0 / interval, convergence_patience=patience
    )
    return TraceGenerator(config, seed=seed).generate()


def _ones_config():
    # A small population keeps the differential runs fast without
    # changing any code path under test.
    return ONESConfig(evolution=EvolutionConfig(population_size=4))


def _faults():
    """A multi-event profile: two outages, one of them overlapping."""
    return FaultConfig(
        injections=(
            FaultInjection(60.0, FaultKind.NODE_DOWN, 1),
            FaultInjection(180.0, FaultKind.NODE_DOWN, 2),
            FaultInjection(420.0, FaultKind.NODE_UP, 1),
            FaultInjection(600.0, FaultKind.NODE_UP, 2),
        )
    )


def _run(scheduler, trace, num_gpus=16, faults=None):
    simulator = ClusterSimulator(
        make_longhorn_cluster(num_gpus),
        scheduler,
        trace,
        config=SimulationConfig(faults=faults),
    )
    return simulator.run()


def _payload(result):
    payload = result.to_dict()
    # The scheduler label legitimately differs ("ONES" vs "ONES-hier");
    # every behavioural field must match bit-for-bit.
    payload.pop("scheduler_name", None)
    payload.pop("scheduler", None)
    return json.dumps(payload, sort_keys=True)


class TestFlatParity:
    """partitions=1 must be bit-identical to flat ONES."""

    def test_unfaulted_run_is_bit_identical(self):
        flat = _run(ONESScheduler(_ones_config(), seed=SEED), _trace())
        hier = _run(
            HierarchicalONESScheduler(
                HierarchicalConfig(partitions=1, ones=_ones_config()), seed=SEED
            ),
            _trace(),
        )
        assert _payload(flat) == _payload(hier)

    def test_faulted_run_is_bit_identical(self):
        flat = _run(ONESScheduler(_ones_config(), seed=SEED), _trace(), faults=_faults())
        hier = _run(
            HierarchicalONESScheduler(
                HierarchicalConfig(partitions=1, ones=_ones_config()), seed=SEED
            ),
            _trace(),
            faults=_faults(),
        )
        assert _payload(flat) == _payload(hier)

    def test_partition_size_covering_cluster_is_parity_mode(self):
        scheduler = HierarchicalONESScheduler(
            HierarchicalConfig(partition_size=16, ones=_ones_config()), seed=SEED
        )
        result = _run(scheduler, _trace(num_jobs=4))
        assert result.incomplete == []
        # Delegation, not emulation: a single flat instance did the work.
        assert scheduler._flat is not None
        assert scheduler.describe_state()["partitions"] == 1


class _Recording(HierarchicalONESScheduler):
    """Snapshots (assignment, deployed allocation) at every deployment."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.snapshots = []

    def _handle(self, state, kind, job=None, record=None):
        allocation = super()._handle(state, kind, job, record)
        if allocation is not None:
            self.snapshots.append((dict(self._assignment), allocation.as_dict()))
        return allocation


def _partition_of_node(topology, size):
    lookup = {}
    for index, nodes in enumerate(partition_nodes(topology, size)):
        for node in nodes:
            lookup[node] = index
    return lookup


class TestReconcilerProperties:
    def _run_recorded(self, trace, num_gpus=32, partition_size=16, faults=None):
        scheduler = _Recording(
            HierarchicalConfig(partition_size=partition_size, ones=_ones_config()),
            seed=SEED,
        )
        topology = make_longhorn_cluster(num_gpus)
        result = ClusterSimulator(
            topology, scheduler, trace, config=SimulationConfig(faults=faults)
        ).run()
        return scheduler, topology, result

    def test_no_job_ever_spans_two_partitions(self):
        scheduler, topology, result = self._run_recorded(_trace(num_jobs=8))
        assert result.incomplete == []
        assert scheduler.snapshots
        node_partition = _partition_of_node(topology, 16)
        for assignment, alloc in scheduler.snapshots:
            per_job = {}
            for gpu, worker in alloc.items():
                node = int(topology.node_of(gpu))
                per_job.setdefault(worker[0], set()).add(node_partition[node])
            for job_id, partitions in per_job.items():
                owner = assignment.get(job_id)
                if owner == WIDE:
                    continue
                assert len(partitions) == 1, (job_id, partitions)
                assert partitions == {owner}, (job_id, partitions, owner)

    def test_assignments_are_sticky(self):
        scheduler, _, _ = self._run_recorded(_trace(num_jobs=8))
        seen = {}
        for assignment, _alloc in scheduler.snapshots:
            for job_id, index in assignment.items():
                seen.setdefault(job_id, set()).add(index)
        assert seen
        for job_id, indices in seen.items():
            assert len(indices) == 1, (job_id, indices)

    def test_wide_job_spills_and_gang_places(self):
        trace = _trace(num_jobs=6)
        # One gang wider than a 16-GPU partition: must take the wide path.
        wide_id = trace[2].job_id
        trace[2] = replace(trace[2], requested_gpus=24)
        scheduler, topology, result = self._run_recorded(trace)
        assert result.incomplete == []
        assert wide_id in result.completed
        assert scheduler.num_wide_placements >= 1
        wide_snapshots = [
            (assignment, alloc)
            for assignment, alloc in scheduler.snapshots
            if any(worker[0] == wide_id for worker in alloc.values())
        ]
        assert wide_snapshots, "the wide gang was never deployed"
        for assignment, alloc in wide_snapshots:
            assert assignment[wide_id] == WIDE
            gpus = [g for g, worker in alloc.items() if worker[0] == wide_id]
            assert len(gpus) == 24
            # The gang owns its nodes outright: no co-located workers.
            wide_nodes = {int(topology.node_of(g)) for g in gpus}
            for gpu, worker in alloc.items():
                if worker[0] != wide_id:
                    assert int(topology.node_of(gpu)) not in wide_nodes

    def test_faulted_partitioned_run_completes(self):
        scheduler, _, result = self._run_recorded(
            _trace(num_jobs=6), faults=_faults()
        )
        assert result.incomplete == []
        assert result.faults["node_down_events"] > 0
        # Faults never corrupted the partition bookkeeping.
        summary = scheduler.describe_state()
        assert summary["partitions"] == 2
        assert summary["assigned_jobs"] == 0  # everything pruned at the end

    def test_parallel_workers_bit_identical_to_sequential(self):
        sequential, _, seq_result = self._run_recorded(_trace(num_jobs=6))
        parallel = _Recording(
            HierarchicalConfig(
                partition_size=16, ones=_ones_config(), parallel_workers=2
            ),
            seed=SEED,
        )
        par_result = _run(parallel, _trace(num_jobs=6), num_gpus=32)
        assert _payload(seq_result) == _payload(par_result)
