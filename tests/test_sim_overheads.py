"""Simulator semantics around re-configuration overheads and preemption."""

import pytest

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    allocation_without_jobs,
)
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.jobs.job import EpochRecord, Job
from repro.scaling.overhead import ReconfigurationKind
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from tests.conftest import make_spec


class GrowOnceScheduler(SchedulerBase):
    """Starts a job on 1 GPU, then grows it to 2 GPUs after its first epoch."""

    name = "grow-once"
    capabilities = SchedulerCapabilities("greedy", True, True, True)

    def __init__(self, kind: ReconfigurationKind) -> None:
        self.reconfiguration_kind = kind
        self.grew = False

    def on_job_arrival(self, job, state):
        return allocation_with_job(state.allocation, job, [0], [64])

    def on_epoch_end(self, job, record, state):
        if not self.grew:
            self.grew = True
            return allocation_with_job(state.allocation, job, [0, 1], [64, 64])
        return None


class PreemptOnceScheduler(SchedulerBase):
    """Preempts the job after its first epoch, resumes it after a pause."""

    name = "preempt-once"
    capabilities = SchedulerCapabilities("greedy", True, False, False)
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT

    def __init__(self) -> None:
        self.state = "fresh"

    def on_job_arrival(self, job, state):
        return allocation_with_job(state.allocation, job, [0], [64])

    def on_epoch_end(self, job, record, state):
        if self.state == "fresh":
            self.state = "preempted"
            return allocation_without_jobs(state.allocation, [job.job_id])
        return None

    def on_timer(self, state):
        pending = state.pending_jobs()
        if self.state == "preempted" and pending:
            self.state = "resumed"
            job = next(iter(pending.values()))
            return allocation_with_job(state.allocation, job, [0], [64])
        return None

    timer_interval = 60.0


def _single_job_trace():
    return [make_spec(job_id="solo", dataset_size=2000, base_epochs=3.0, patience=2)]


class TestReconfigurationOverheads:
    def test_elastic_grow_is_cheaper_than_checkpoint_grow(self, small_topology):
        results = {}
        for kind in (ReconfigurationKind.ELASTIC, ReconfigurationKind.CHECKPOINT):
            scheduler = GrowOnceScheduler(kind)
            result = ClusterSimulator(
                small_topology,
                scheduler,
                _single_job_trace(),
                config=SimulationConfig(start_overhead=0.0),
            ).run()
            results[kind] = result
        elastic = results[ReconfigurationKind.ELASTIC].completed["solo"]
        checkpoint = results[ReconfigurationKind.CHECKPOINT].completed["solo"]
        # Both grew once; the checkpoint-based run paid more overhead and
        # therefore finished later.
        assert checkpoint["reconfig_overhead"] > elastic["reconfig_overhead"]
        assert checkpoint["jct"] > elastic["jct"]

    def test_overhead_recorded_per_job(self, small_topology):
        scheduler = GrowOnceScheduler(ReconfigurationKind.ELASTIC)
        result = ClusterSimulator(small_topology, scheduler, _single_job_trace()).run()
        metrics = result.completed["solo"]
        # Start + one grow.
        assert metrics["reconfigurations"] == 2
        assert metrics["reconfig_overhead"] > 0

    def test_growth_changes_worker_count_in_records(self, small_topology):
        scheduler = GrowOnceScheduler(ReconfigurationKind.ELASTIC)
        result = ClusterSimulator(small_topology, scheduler, _single_job_trace()).run()
        counts = {r.num_gpus for r in result.jobs["solo"].epoch_records}
        assert counts == {1, 2}


class TestPreemptionSemantics:
    def test_preempted_job_accumulates_queuing_time(self, small_topology):
        scheduler = PreemptOnceScheduler()
        result = ClusterSimulator(
            small_topology,
            scheduler,
            _single_job_trace(),
            config=SimulationConfig(start_overhead=0.0),
        ).run()
        assert result.incomplete == []
        metrics = result.completed["solo"]
        # The pause between preemption and the next timer shows up as queuing.
        assert metrics["queuing_time"] > 0
        assert metrics["jct"] == pytest.approx(
            metrics["execution_time"] + metrics["queuing_time"], rel=1e-6
        )

    def test_preempted_job_keeps_progress(self, small_topology):
        scheduler = PreemptOnceScheduler()
        result = ClusterSimulator(
            small_topology, scheduler, _single_job_trace(),
            config=SimulationConfig(start_overhead=0.0),
        ).run()
        job = result.jobs["solo"]
        # Epochs from before the preemption still count.
        assert job.epochs_completed >= 3
        assert len(job.run_intervals) >= 2


class TestProposalValidation:
    def _state(self, simulator):
        return ClusterState(
            now=simulator.now,
            topology=simulator.topology,
            throughput_model=simulator.throughput_model,
            allocation=simulator.allocation,
            jobs=simulator.jobs,
        )

    def test_rejects_unknown_job(self, small_topology):
        simulator = ClusterSimulator(
            small_topology, GrowOnceScheduler(ReconfigurationKind.ELASTIC), _single_job_trace()
        )
        bad = Allocation.from_job_map({"ghost": [(0, 8)]})
        with pytest.raises(ValueError, match="unknown job"):
            simulator._apply_allocation(bad)

    def test_rejects_oversized_local_batch(self, small_topology):
        trace = _single_job_trace()
        simulator = ClusterSimulator(
            small_topology, GrowOnceScheduler(ReconfigurationKind.ELASTIC), trace
        )
        simulator._handle_arrival_for_test = None  # no-op marker
        # Register the job by processing its arrival event manually.
        simulator.run()  # completes; now build a fresh simulator for the check
        simulator = ClusterSimulator(
            small_topology, GrowOnceScheduler(ReconfigurationKind.ELASTIC), trace
        )
        from repro.cluster.events import Event, EventKind

        simulator._handle_arrival(Event(time=0.0, kind=EventKind.JOB_ARRIVAL, job_id="solo"))
        too_big = Allocation.from_job_map(
            {"solo": [(0, trace[0].max_local_batch * 10)]}
        )
        with pytest.raises(ValueError, match="exceeds its device limit"):
            simulator._apply_allocation(too_big)
