"""Observability integration: tracing is invisible to simulation outputs.

The determinism contract has two halves, both pinned here:

* a traced run is **bit-identical** in its simulation outputs to an
  untraced run (the recorder never consumes RNG state or touches the
  virtual clock), and
* two identical traced runs export **byte-identical** trace files
  (record ordering is deterministic in virtual time).

Plus the content checks from the acceptance list — a hierarchical run
emits reconfig decisions, per-shard generations, and reconciler
assignments — and the ``SimProfile`` stable-key round-trip.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.core.partitioned import HierarchicalConfig, HierarchicalONESScheduler
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.obs.trace import TraceRecorder, install_tracer, uninstall_tracer
from repro.sim.profiling import SimProfile
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator

warnings.filterwarnings("ignore", message="Covariance of the parameters")

SEED = 2021


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


def _trace(num_jobs=6, seed=17):
    config = TraceConfig(
        num_jobs=num_jobs, arrival_rate=1.0 / 20.0, convergence_patience=3
    )
    return TraceGenerator(config, seed=seed).generate()


def _faults():
    return FaultConfig(
        injections=(
            FaultInjection(60.0, FaultKind.NODE_DOWN, 1),
            FaultInjection(150.0, FaultKind.NODE_UP, 1),
        )
    )


def _ones():
    return ONESScheduler(
        ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=SEED
    )


def _hier(partitions=2):
    return HierarchicalONESScheduler(
        HierarchicalConfig(
            partitions=partitions,
            ones=ONESConfig(evolution=EvolutionConfig(population_size=4)),
        ),
        seed=SEED,
    )


def _run(scheduler, faults=None, collect_profile=False, num_gpus=16):
    simulator = ClusterSimulator(
        make_longhorn_cluster(num_gpus),
        scheduler,
        _trace(),
        config=SimulationConfig(faults=faults, collect_profile=collect_profile),
    )
    return simulator.run()


def _payload(result):
    payload = result.to_dict()
    payload.pop("profile", None)  # wall-clock, host-specific by design
    return json.dumps(payload, sort_keys=True)


class TestBitIdentity:
    def test_traced_run_matches_untraced_run(self):
        baseline = _payload(_run(_ones(), faults=_faults()))
        install_tracer(TraceRecorder())
        traced = _payload(_run(_ones(), faults=_faults()))
        assert traced == baseline

    def test_dormant_recorder_also_invisible(self):
        baseline = _payload(_run(_ones()))
        install_tracer(TraceRecorder(enabled=False))
        assert _payload(_run(_ones())) == baseline

    def test_two_traced_runs_export_identical_bytes(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            tracer = install_tracer(TraceRecorder())
            _run(_hier(), faults=_faults())
            path = tmp_path / f"{name}.jsonl"
            tracer.export_jsonl(str(path))
            uninstall_tracer()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].stat().st_size > 0


class TestTraceContent:
    @pytest.fixture(scope="class")
    def hier_records(self):
        uninstall_tracer()
        tracer = install_tracer(TraceRecorder())
        _run(_hier(), faults=_faults())
        uninstall_tracer()
        return tracer.records()

    def test_reconfig_decisions_recorded_with_scores(self, hier_records):
        decisions = [r for r in hier_records if r["name"] == "reconfig_decision"]
        assert decisions
        for record in decisions:
            attrs = record["attrs"]
            assert isinstance(attrs["score"], float)
            # The search adapts its population to the active-job count,
            # so the trace records whatever size that evolution used.
            assert attrs["population_size"] >= 1
            assert attrs["generations"] >= 1
            assert isinstance(attrs["deployed"], bool)

    def test_per_shard_generations_recorded(self, hier_records):
        generations = [r for r in hier_records if r["name"] == "generation"]
        shards = {r["attrs"]["shard"] for r in generations}
        assert shards >= {"p0", "p1"}
        # Generation numbers count up within each shard.
        for shard in sorted(shards):
            numbers = [
                r["attrs"]["generation"] for r in generations
                if r["attrs"]["shard"] == shard
            ]
            assert numbers == sorted(numbers)

    def test_reconciler_assignments_recorded(self, hier_records):
        assigns = [r for r in hier_records if r["name"] == "assign"]
        assert assigns
        assert all(r["cat"] == "reconciler" for r in assigns)
        assert all("job" in r["attrs"] and "partition" in r["attrs"] for r in assigns)

    def test_fault_events_recorded(self, hier_records):
        names = {r["name"] for r in hier_records if r["cat"] == "fault"}
        assert "node_down" in names
        assert "node_up" in names

    def test_kernel_spans_wrap_scheduler_records(self, hier_records):
        spans = [
            r for r in hier_records
            if r["cat"] == "kernel" and r["name"].startswith("event:")
        ]
        assert spans
        span_seqs = {r["seq"] for r in spans}
        evolves = [r for r in hier_records if r["name"] == "evolve"]
        assert evolves
        assert all(r["parent"] in span_seqs for r in evolves)

    def test_timestamps_are_virtual_and_monotonic(self, hier_records):
        times = [r["t"] for r in hier_records]
        assert times == sorted(times)
        assert times[-1] < 1e9  # virtual seconds, not a wall-clock epoch


class TestSimProfileRoundTrip:
    """Satellite: stable string keys for handler_seconds, and from_dict."""

    def test_profile_keys_are_stable_strings(self):
        profile = _run(_ones(), faults=_faults(), collect_profile=True).profile
        assert profile
        for key in profile:
            assert "EventKind." not in key
            assert key == key.lower()
        assert "handler_job_arrival_seconds" in profile
        assert "events_node_down" in profile

    def test_round_trip_through_as_dict(self):
        profile = _run(_ones(), collect_profile=True).profile
        restored = SimProfile.from_dict(profile)
        assert restored.as_dict() == profile

    def test_round_trip_preserves_scheduler_phases(self):
        profile = SimProfile()
        profile.record("gpr_refit", 1.5)
        profile.record("evo_mutation", 0.25)
        profile._total_seconds = 10.0
        payload = profile.as_dict()
        assert payload["gpr_refit_seconds"] == 1.5
        assert SimProfile.from_dict(payload).as_dict() == payload

    def test_round_trip_survives_reserved_phase_names(self):
        profile = SimProfile()
        profile.record("advance", 0.5)  # would clobber advance_seconds
        profile._total_seconds = 1.0
        payload = profile.as_dict()
        assert payload["scheduler_advance_seconds"] == 0.5
        assert SimProfile.from_dict(payload).as_dict() == payload
