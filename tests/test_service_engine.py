"""SchedulerService engine: admission, decisions, telemetry, determinism."""

import pytest

from repro.service.engine import LatencyHistogram, SchedulerService
from repro.service.schemas import JobSubmission, ServiceConfig, TenantQuota


def make_service(**overrides) -> SchedulerService:
    defaults = dict(
        num_gpus=16,
        scheduler="ONES",
        seed=7,
        mode="virtual",
        tenants=(
            TenantQuota(tenant="alice", max_gpus=12),
            TenantQuota(tenant="bob", max_gpus=4, max_active=2),
        ),
    )
    defaults.update(overrides)
    return SchedulerService(ServiceConfig(**defaults))


class TestLatencyHistogram:
    def test_percentiles_and_mean(self):
        hist = LatencyHistogram()
        for ms in (1.0, 2.0, 4.0, 8.0, 100.0):
            hist.record(ms / 1e3)
        assert hist.count == 5
        assert hist.percentile(50.0) <= hist.percentile(99.0)
        assert hist.percentile(99.0) <= hist.max_value
        assert hist.mean == pytest.approx(0.023, abs=1e-3)

    def test_empty_histogram_is_zero(self):
        hist = LatencyHistogram()
        assert hist.percentile(50.0) == 0.0
        assert hist.as_dict()["count"] == 0.0

    def test_bucket_error_is_bounded(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.record(0.010)
        p50 = hist.percentile(50.0)
        # Log2 buckets: the answer lies within one bucket (2x) of truth.
        assert 0.010 <= p50 <= 0.020


class TestSubmissionPath:
    def test_first_submission_is_placed(self):
        service = make_service()
        decision = service.submit(JobSubmission(tenant="alice", replicas=2))
        assert decision.status == "placed"
        assert decision.num_gpus >= 1
        assert decision.decision_latency_ms > 0.0
        assert decision.job_id

    def test_unknown_tenant_is_rejected(self):
        service = make_service()
        decision = service.submit(JobSubmission(tenant="mallory"))
        assert decision.status == "rejected"
        assert "unknown tenant" in decision.reason

    def test_schema_violation_is_rejected_not_raised(self):
        service = make_service()
        decision = service.submit(JobSubmission(tenant="alice", replicas=99))
        assert decision.status == "rejected"
        assert "exceeds the cluster size" in decision.reason

    def test_gpu_quota_oversubscription_is_rejected(self):
        service = make_service()
        first = service.submit(JobSubmission(tenant="bob", replicas=3))
        assert first.status != "rejected"
        second = service.submit(JobSubmission(tenant="bob", replicas=2))
        assert second.status == "rejected"
        assert "oversubscribed" in second.reason

    def test_max_active_cap_is_enforced(self):
        service = make_service()
        assert service.submit(JobSubmission(tenant="bob")).status != "rejected"
        assert service.submit(JobSubmission(tenant="bob")).status != "rejected"
        third = service.submit(JobSubmission(tenant="bob"))
        assert third.status == "rejected"
        assert "active jobs" in third.reason

    def test_quota_frees_up_after_completion(self):
        service = make_service()
        service.submit(JobSubmission(tenant="bob", replicas=3))
        service.drain()  # completes the job, releasing its demand
        state = service.tenants["bob"]
        assert state.outstanding_gpus == 0
        assert state.completed == 1

    def test_open_admission_when_no_tenants_configured(self):
        service = make_service(tenants=())
        decision = service.submit(JobSubmission(tenant="walk-in"))
        assert decision.status != "rejected"
        assert "walk-in" in service.tenants

    def test_arrival_beyond_horizon_is_rejected(self):
        service = make_service(max_time=3600.0)
        decision = service.submit(
            JobSubmission(tenant="alice", arrival_time=7200.0)
        )
        assert decision.status == "rejected"
        assert "horizon" in decision.reason

    def test_workload_template_is_honoured(self):
        service = make_service()
        template = service.catalog[0]
        decision = service.submit(
            JobSubmission(tenant="alice", workload=template.name)
        )
        assert decision.status != "rejected"
        spec = service.sim._spec_index[decision.job_id]
        assert spec.dataset == template.dataset
        assert spec.dataset_size == template.dataset_size

    def test_decisions_are_published_to_streams(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        records, _ = service.streams.read("alice", 0)
        assert len(records) == 1
        assert records[0]["status"] in ("placed", "queued")


class TestDeterminism:
    def _run(self):
        service = make_service()
        decisions = [
            service.submit(JobSubmission(tenant="alice", job_type="cv",
                                         replicas=1 + (i % 3),
                                         arrival_time=60.0 * i))
            for i in range(8)
        ]
        result = service.drain()
        return decisions, result

    def test_same_submissions_same_jobs_and_metrics(self):
        first_decisions, first_result = self._run()
        second_decisions, second_result = self._run()
        for a, b in zip(first_decisions, second_decisions):
            assert a.job_id == b.job_id
            assert a.status == b.status
            assert a.gpu_ids == b.gpu_ids
            assert a.local_batches == b.local_batches
        assert first_result.completed == second_result.completed
        assert first_result.events_processed == second_result.events_processed


class TestTelemetry:
    def test_status_snapshot_shape(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        status = service.status()
        assert status["submissions"] == 1
        assert status["jobs_total"] == 1
        assert "alice" in status["tenants"]
        assert status["tenants"]["alice"]["placed"] == 1

    def test_metrics_snapshot_shape(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        service.submit(JobSubmission(tenant="bob", arrival_time=120.0))
        metrics = service.metrics()
        assert metrics["decision_latency"]["count"] == 2.0
        assert set(metrics["decision_latency_by_tenant"]) == {"alice", "bob"}
        assert metrics["submissions_per_second"] > 0.0
        assert "JOB_ARRIVAL" in metrics["step_latency_by_kind"]

    def test_completion_stream_after_drain(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        service.drain()
        records, _ = service.streams.read("alice", 0)
        kinds = [r.get("type", "decision") for r in records]
        assert "completion" in kinds

    def test_queue_depth_counts_unplaced_jobs(self):
        service = make_service()
        assert service.queue_depth() == 0
        service.submit(JobSubmission(tenant="alice"))
        # One running job holding GPUs: depth stays 0.
        assert service.queue_depth() == 0


class TestHistogramBucketEdges:
    """Pin the power-of-two edge convention of LatencyHistogram buckets."""

    def test_floor_and_below_land_in_bucket_zero(self):
        assert LatencyHistogram._bucket_index(0.0) == 0
        assert LatencyHistogram._bucket_index(5e-7) == 0
        assert LatencyHistogram._bucket_index(1e-6) == 0

    def test_exact_power_of_two_edge_is_the_upper_bound_of_its_bucket(self):
        # 2 µs is the upper edge of bucket 1 = (1 µs, 2 µs]; it must not
        # spill into bucket 2 (the bug this pins: float noise in log2
        # used to push exact edges one bucket up).
        assert LatencyHistogram._bucket_index(2e-6) == 1
        assert LatencyHistogram._bucket_index(4e-6) == 2
        assert LatencyHistogram._bucket_index(1e-6 * 2**10) == 10
        assert LatencyHistogram._bucket_index(1e-6 * 2**20) == 20

    def test_near_edge_float_noise_snaps_onto_the_edge(self):
        edge = 1e-6 * 2**20
        assert LatencyHistogram._bucket_index(edge * (1.0 + 1e-12)) == 20
        assert LatencyHistogram._bucket_index(edge * (1.0 - 1e-12)) == 20
        # A value clearly past the edge belongs to the next bucket.
        assert LatencyHistogram._bucket_index(edge * 1.01) == 21

    def test_interior_values_round_up(self):
        # 3 µs lies inside (2 µs, 4 µs] -> bucket 2.
        assert LatencyHistogram._bucket_index(3e-6) == 2

    def test_edge_valued_load_keeps_percentile_at_the_edge(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.record(2e-6)
        # All mass sits in bucket 1, whose upper bound is the value
        # itself: the percentile is exact, not one bucket high.
        assert hist.percentile(50.0) == pytest.approx(2e-6)
        assert hist.percentile(99.0) == pytest.approx(2e-6)

    def test_overflow_bucket_percentile_is_bounded(self):
        hist = LatencyHistogram()
        huge = 2.0e6  # beyond floor * 2^40 ~ 1.1e6 s
        hist.record(huge)
        assert LatencyHistogram._bucket_index(huge) == LatencyHistogram._BUCKETS
        p99 = hist.percentile(99.0)
        assert p99 <= hist.max_value
        assert p99 == pytest.approx(1e-6 * 2.0**40)

    def test_percentile_capped_at_observed_max(self):
        hist = LatencyHistogram()
        for _ in range(10):
            hist.record(0.010)
        # Bucket upper bound is ~16.4 ms but nothing above 10 ms was
        # ever observed; the cap keeps the answer honest.
        assert hist.percentile(99.0) == pytest.approx(0.010)


class TestWeightedShareAdmission:
    def _service(self, alice_weight, bob_weight, num_gpus=4):
        return make_service(
            num_gpus=num_gpus,
            scheduler="FIFO",
            tenants=(
                TenantQuota(tenant="alice", weight=alice_weight),
                TenantQuota(tenant="bob", weight=bob_weight),
            ),
        )

    def test_default_weights_leave_admission_untouched(self):
        service = make_service(
            num_gpus=4,
            scheduler="FIFO",
            tenants=(TenantQuota(tenant="alice"), TenantQuota(tenant="bob")),
        )
        assert service._weighted_admission is False
        # Under contention a default-weight tenant can queue without
        # limit (the pre-weighted behaviour, preserved bit-for-bit).
        assert service.submit(JobSubmission(tenant="alice", replicas=4)).status == "placed"
        for _ in range(3):
            decision = service.submit(JobSubmission(tenant="alice", replicas=4))
            assert decision.status == "queued"

    def test_low_weight_tenant_rejected_over_its_share(self):
        service = self._service(alice_weight=3.0, bob_weight=1.0)
        assert service._weighted_admission is True
        assert service.submit(JobSubmission(tenant="alice", replicas=4)).status == "placed"
        # Cluster full but queue empty: weights do not bind yet.
        assert service.submit(JobSubmission(tenant="bob", replicas=4)).status == "queued"
        # Now contended: bob (weight 1 of 4) has share ceil(3/4) -> 1
        # and already holds one job.
        rejected = service.submit(JobSubmission(tenant="bob", replicas=4))
        assert rejected.status == "rejected"
        assert "weighted share" in rejected.reason
        # alice (weight 3 of 4) has share ceil(9/4) -> 3 and holds one.
        assert service.submit(JobSubmission(tenant="alice", replicas=4)).status == "queued"

    def test_tiny_weight_still_gets_one_job(self):
        service = self._service(alice_weight=10.0, bob_weight=0.01)
        assert service.submit(JobSubmission(tenant="alice", replicas=4)).status == "placed"
        assert service.submit(JobSubmission(tenant="alice", replicas=4)).status == "queued"
        # Contended and bob's proportional share rounds to zero, but the
        # floor guarantees a first job.
        assert service.submit(JobSubmission(tenant="bob", replicas=4)).status == "queued"
        second = service.submit(JobSubmission(tenant="bob", replicas=4))
        assert second.status == "rejected"
        assert "weighted share" in second.reason

    def test_uncontended_cluster_ignores_weights(self):
        service = self._service(alice_weight=10.0, bob_weight=0.01, num_gpus=16)
        for _ in range(3):
            decision = service.submit(JobSubmission(tenant="bob", replicas=1))
            assert decision.status == "placed"

    def test_weighted_rejection_is_counted(self):
        service = self._service(alice_weight=3.0, bob_weight=1.0)
        service.submit(JobSubmission(tenant="alice", replicas=4))
        service.submit(JobSubmission(tenant="bob", replicas=4))
        service.submit(JobSubmission(tenant="bob", replicas=4))
        state = service.tenants["bob"]
        assert state.rejected == 1
        assert len(state.active_jobs) == 1


class TestMetricsRegistry:
    """The service's live telemetry rendered through the obs registry."""

    def test_registry_snapshot_covers_service_and_scheduler(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        values = service.metrics_registry().values()
        assert values["service_decision_latency_seconds_count"] == 1
        assert values["service_queue_depth"] == 0
        assert values['service_completed_jobs{tenant="alice"}'] == 0
        # The scheduler's scoring-cache counters surface with a prefix.
        assert "scheduler_iterations_run" in values
        assert "scheduler_scoring_delta_generations" in values

    def test_registry_histograms_are_live_not_copies(self):
        service = make_service()
        registry = service.metrics_registry()
        before = registry.values()["service_decision_latency_seconds_count"]
        service.submit(JobSubmission(tenant="alice"))
        after = registry.values()["service_decision_latency_seconds_count"]
        assert (before, after) == (0, 1)

    def test_prometheus_rendering(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        text = service.metrics_registry().render_text()
        assert "# TYPE service_decision_latency_seconds histogram" in text
        assert 'service_tenant_decision_latency_seconds_bucket{tenant="alice"' in text
        assert "service_decision_latency_seconds_sum" in text
        assert "scheduler_full_updates" in text

    def test_metrics_snapshot_includes_scheduler_section(self):
        service = make_service()
        service.submit(JobSubmission(tenant="alice"))
        metrics = service.metrics()
        scheduler = metrics["scheduler"]
        assert scheduler["full_updates"] >= 1
        assert "throughput_table_reuses" in scheduler


class TestAdmissionTraceEvents:
    def test_admit_and_reject_events_recorded(self):
        from repro.obs.trace import TraceRecorder, install_tracer, uninstall_tracer

        tracer = install_tracer(TraceRecorder())
        try:
            service = make_service()
            service.submit(JobSubmission(tenant="alice"))
            service.submit(JobSubmission(tenant="nobody"))
        finally:
            uninstall_tracer()
        names = [r["name"] for r in tracer.records() if r["cat"] == "service"]
        assert "admit" in names
        assert "reject" in names
        admit = next(r for r in tracer.records() if r["name"] == "admit")
        assert admit["attrs"]["tenant"] == "alice"
        assert admit["attrs"]["status"] in ("placed", "queued")
