"""Tests for repro.workload.trace."""

import numpy as np
import pytest

from repro.workload.trace import TraceConfig, TraceGenerator


class TestTraceConfig:
    def test_defaults_match_paper(self):
        config = TraceConfig()
        assert config.num_jobs == 50
        assert config.convergence_patience == 10

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(num_jobs=0)
        with pytest.raises(ValueError):
            TraceConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            TraceConfig(gpu_request_choices=(1, 2), gpu_request_weights=(1.0,))
        with pytest.raises(ValueError):
            TraceConfig(gpu_request_choices=(0, 2), gpu_request_weights=(0.5, 0.5))

    def test_normalized_weights(self):
        config = TraceConfig(gpu_request_choices=(1, 2), gpu_request_weights=(3.0, 1.0))
        assert np.allclose(config.normalized_weights, [0.75, 0.25])


class TestTraceGenerator:
    def test_generates_requested_number_of_jobs(self):
        trace = TraceGenerator(TraceConfig(num_jobs=20), seed=1).generate()
        assert len(trace) == 20

    def test_unique_ids_and_sorted_arrivals(self):
        trace = TraceGenerator(TraceConfig(num_jobs=30), seed=2).generate()
        ids = [j.job_id for j in trace]
        arrivals = [j.arrival_time for j in trace]
        assert len(set(ids)) == 30
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_deterministic_for_seed(self):
        a = TraceGenerator(TraceConfig(num_jobs=15), seed=7).generate()
        b = TraceGenerator(TraceConfig(num_jobs=15), seed=7).generate()
        assert [j.task for j in a] == [j.task for j in b]
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_different_seeds_differ(self):
        a = TraceGenerator(TraceConfig(num_jobs=15), seed=7).generate()
        b = TraceGenerator(TraceConfig(num_jobs=15), seed=8).generate()
        assert [j.task for j in a] != [j.task for j in b]

    def test_gpu_requests_from_choices(self):
        config = TraceConfig(num_jobs=40, gpu_request_choices=(2, 4), gpu_request_weights=(0.5, 0.5))
        trace = TraceGenerator(config, seed=3).generate()
        assert set(j.requested_gpus for j in trace) <= {2, 4}

    def test_arrival_rate_controls_spacing(self):
        fast = TraceGenerator(TraceConfig(num_jobs=50, arrival_rate=1.0), seed=4).generate()
        slow = TraceGenerator(TraceConfig(num_jobs=50, arrival_rate=0.01), seed=4).generate()
        assert fast[-1].arrival_time < slow[-1].arrival_time

    def test_batch_arrival_variant(self):
        generator = TraceGenerator(TraceConfig(num_jobs=10), seed=5)
        trace = generator.generate_batch_arrival(at_time=3.0)
        assert all(j.arrival_time == 3.0 for j in trace)

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator(TraceConfig(num_jobs=5), catalog=[], seed=1)
