"""Tests for the structured trace recorder (repro.obs.trace)."""

import json

import pytest

from repro.obs.trace import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TraceRecorder,
    active_tracer,
    current_tracer,
    export_chrome_trace,
    filter_records,
    format_tree,
    install_tracer,
    load_jsonl,
    summarize,
    uninstall_tracer,
    validate_record,
    validate_trace_file,
)


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


class TestRecorder:
    def test_events_carry_seq_and_attrs(self):
        tracer = TraceRecorder()
        tracer.event("decision", "ones", 12.5, score=3.25, job="job-001")
        (record,) = tracer.records()
        assert record["kind"] == "event"
        assert record["seq"] == 0
        assert record["t"] == 12.5
        assert record["parent"] is None
        assert record["attrs"] == {"score": 3.25, "job": "job-001"}

    def test_spans_nest_via_parent_links(self):
        tracer = TraceRecorder()
        outer = tracer.begin_span("event:EPOCH_END", "kernel", 10.0)
        tracer.event("generation", "ones", 10.0, generation=0)
        inner = tracer.begin_span("evolve", "ones", 10.0)
        tracer.event("reconfig_decision", "ones", 10.0)
        tracer.end_span(inner, t=10.0)
        tracer.end_span(outer, t=11.0)
        records = tracer.records()
        assert [r["parent"] for r in records] == [None, 0, 0, 2]
        assert records[0]["dur"] == 1.0
        assert records[2]["dur"] == 0.0

    def test_span_context_manager_sets_end_time(self):
        tracer = TraceRecorder()
        with tracer.span("cell", "experiment", 0.0, label="x") as span:
            span["end_t"] = 42.0
        (record,) = tracer.records()
        assert record["dur"] == 42.0
        assert "end_t" not in record

    def test_end_span_pops_out_of_order_safely(self):
        tracer = TraceRecorder()
        outer = tracer.begin_span("a", "c", 0.0)
        tracer.begin_span("b", "c", 0.0)
        # Ending the outer span drops the dangling inner frame too.
        tracer.end_span(outer, t=1.0)
        tracer.event("after", "c", 2.0)
        assert tracer.records()[-1]["parent"] is None

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tracer = TraceRecorder(capacity=4)
        for index in range(10):
            tracer.event("e", "c", float(index))
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [r["t"] for r in tracer.records()] == [6.0, 7.0, 8.0, 9.0]
        # seq keeps increasing across evictions.
        assert [r["seq"] for r in tracer.records()] == [6, 7, 8, 9]

    def test_disabled_recorder_records_nothing(self):
        tracer = TraceRecorder(enabled=False)
        tracer.event("e", "c", 0.0)
        assert len(tracer) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_explicit_root_parent(self):
        tracer = TraceRecorder()
        tracer.begin_span("outer", "c", 0.0)
        tracer.event("beat", "queue", 1.0, parent=None)
        assert tracer.records()[-1]["parent"] is None


class TestGlobalInstallation:
    def test_install_current_uninstall_cycle(self):
        assert current_tracer() is None
        assert active_tracer() is None
        tracer = install_tracer(TraceRecorder())
        assert current_tracer() is tracer
        assert active_tracer() is tracer
        assert uninstall_tracer() is tracer
        assert current_tracer() is None

    def test_active_tracer_hides_disabled_recorder(self):
        install_tracer(TraceRecorder(enabled=False))
        assert current_tracer() is not None
        assert active_tracer() is None


class TestExportAndSchema:
    def _sample(self):
        tracer = TraceRecorder()
        with tracer.span("event:JOB_ARRIVAL", "kernel", 0.0) as span:
            tracer.event("reconfig_decision", "ones", 0.0, score=1.5)
            span["end_t"] = 0.0
        tracer.event("node_down", "fault", 5.0, node=3)
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._sample()
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(str(path))
        assert written == 3
        meta, records = load_jsonl(str(path))
        assert meta["schema"] == SCHEMA_NAME
        assert meta["version"] == SCHEMA_VERSION
        assert meta["dropped"] == 0
        assert records == tracer.records()

    def test_exported_file_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._sample().export_jsonl(str(path))
        assert validate_trace_file(str(path)) == []

    def test_validator_flags_bad_records(self):
        assert validate_record([]) != []
        assert validate_record({"kind": "nope"}) != []
        errors = validate_record(
            {"kind": "span", "seq": 0, "name": "", "cat": "c", "t": 0.0,
             "dur": -1.0, "parent": None, "attrs": {}}
        )
        assert any("name" in e for e in errors)
        assert any("dur" in e for e in errors)
        good = {"kind": "event", "seq": 1, "name": "n", "cat": "c", "t": 1.0,
                "parent": None, "attrs": {"k": 1}}
        assert validate_record(good) == []

    def test_validator_flags_missing_header_and_bad_seq(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        record = {"kind": "event", "seq": 5, "name": "n", "cat": "c",
                  "t": 0.0, "parent": None, "attrs": {}}
        path.write_text(
            json.dumps(record) + "\n" + json.dumps(dict(record, seq=5)) + "\n"
        )
        errors = validate_trace_file(str(path))
        assert any("meta header" in e for e in errors)
        assert any("not increasing" in e for e in errors)

    def test_numpy_scalars_export_cleanly(self, tmp_path):
        np = pytest.importorskip("numpy")
        tracer = TraceRecorder()
        tracer.event("e", "c", 0.0, score=np.float64(1.5), count=np.int64(3))
        path = tmp_path / "np.jsonl"
        tracer.export_jsonl(str(path))
        _, records = load_jsonl(str(path))
        assert records[0]["attrs"] == {"score": 1.5, "count": 3}

    def test_chrome_export_structure(self, tmp_path):
        tracer = self._sample()
        path = tmp_path / "chrome.json"
        export_chrome_trace(tracer.records(), str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        names = [e for e in events if e.get("ph") == "M"]
        assert len(spans) == 1 and len(instants) == 2
        # Zero-duration virtual spans get the 1 µs visibility floor.
        assert spans[0]["dur"] == 1.0
        assert {m["args"]["name"] for m in names} == {"kernel", "ones", "fault"}

    def test_export_is_deterministic(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._sample().export_jsonl(str(first))
        self._sample().export_jsonl(str(second))
        assert first.read_bytes() == second.read_bytes()


class TestInspectionHelpers:
    def _records(self):
        tracer = TraceRecorder()
        outer = tracer.begin_span("event:EPOCH_END", "kernel", 1.0)
        tracer.event("assign", "reconciler", 1.0, job="j")
        tracer.end_span(outer, t=2.0)
        tracer.event("node_down", "fault", 3.0)
        return tracer.records()

    def test_summarize(self):
        summary = summarize(self._records())
        assert summary["records"] == 3
        assert summary["spans"] == 1
        assert summary["events"] == 2
        assert summary["t_min"] == 1.0
        assert summary["t_max"] == 3.0
        assert summary["by_cat"] == {"fault": 1, "kernel": 1, "reconciler": 1}

    def test_filter_records(self):
        records = self._records()
        assert len(filter_records(records, cat="recon")) == 1
        assert len(filter_records(records, name="node")) == 1
        assert len(filter_records(records, cat="kernel", name="assign")) == 0

    def test_format_tree_indents_children(self):
        lines = format_tree(self._records())
        assert len(lines) == 3
        assert lines[0].startswith("▸ kernel/event:EPOCH_END")
        assert lines[1].startswith("  · reconciler/assign")
        assert lines[2].startswith("· fault/node_down")

    def test_format_tree_caps_output(self):
        tracer = TraceRecorder()
        for index in range(10):
            tracer.event("e", "c", float(index))
        lines = format_tree(tracer.records(), max_records=4)
        assert len(lines) == 5
        assert "6 more records" in lines[-1]
