"""Tests for repro.core.batch_limit (the R_j policies of §3.3.2)."""

import pytest

from repro.core.batch_limit import BatchLimitConfig, BatchSizeLimiter
from tests.conftest import make_job, make_running_job


class TestConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            BatchLimitConfig(min_batch=0)
        with pytest.raises(ValueError):
            BatchLimitConfig(sigma=0.0)
        with pytest.raises(ValueError):
            BatchLimitConfig(max_batch_multiplier=0.0)


class TestStartPolicy:
    def test_limit_fits_single_gpu(self):
        limiter = BatchSizeLimiter()
        job = make_job(base_batch=512, requested_gpus=4, dataset_size=20_000)
        limit = limiter.on_job_arrival(job)
        assert limit <= job.spec.max_local_batch
        assert limiter.limit(job.job_id) == limit

    def test_unknown_job_raises(self):
        with pytest.raises(KeyError):
            BatchSizeLimiter().limit("nope")


class TestScaleUpPolicy:
    def test_doubles_each_epoch_when_short(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=1e-9))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        start = limiter.limit(job.job_id)
        job.epochs_completed = 1
        first = limiter.on_epoch_end(job, executed_time=10.0)
        job.epochs_completed = 2
        second = limiter.on_epoch_end(job, executed_time=20.0)
        assert first == 2 * start
        assert second == 4 * start

    def test_warmup_blocks_growth(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(warmup_epochs=3, sigma=1e-9))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        job.epochs_completed = 1
        assert limiter.on_epoch_end(job, 5.0) == limiter.limit(job.job_id)

    def test_cap_at_max_multiplier(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=1e-9, max_batch_multiplier=4.0))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        job.epochs_completed = 1
        for _ in range(10):
            limit = limiter.on_epoch_end(job, 1.0)
        assert limit == 4 * 128


class TestScaleDownPolicy:
    def test_long_jobs_are_clawed_back_under_contention(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=0.01))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        job.epochs_completed = 1
        grown = limiter.on_epoch_end(job, executed_time=10.0)      # short: doubles
        shrunk = limiter.on_epoch_end(job, executed_time=1000.0)   # long: penalised
        assert grown > 128
        assert shrunk < grown

    def test_never_below_submitted_batch(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=1.0))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        job.epochs_completed = 1
        for _ in range(20):
            limit = limiter.on_epoch_end(job, executed_time=10_000.0)
        assert limit >= 128

    def test_uncontended_cluster_skips_penalty(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=0.01))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        job.epochs_completed = 1
        limit = limiter.on_epoch_end(job, executed_time=10_000.0, contended=False)
        assert limit == 2 * 128


class TestResumePolicy:
    def test_rejection_halves_limit(self):
        limiter = BatchSizeLimiter(BatchLimitConfig(sigma=1e-9))
        job = make_running_job(base_batch=128, dataset_size=20_000)
        limiter.on_job_arrival(job)
        job.epochs_completed = 1
        for _ in range(4):
            limiter.on_epoch_end(job, 1.0)
        grown = limiter.limit(job.job_id)
        halved = limiter.on_schedule_rejection(job)
        assert halved == pytest.approx(grown / 2, abs=1)

    def test_rejection_floor(self):
        limiter = BatchSizeLimiter()
        job = make_job(base_batch=128)
        limiter.on_job_arrival(job)
        for _ in range(10):
            limit = limiter.on_schedule_rejection(job)
        assert limit >= min(128, job.spec.max_local_batch)

    def test_preemption_keeps_limit(self):
        limiter = BatchSizeLimiter()
        job = make_job(base_batch=128)
        limiter.on_job_arrival(job)
        assert limiter.on_preemption(job) == limiter.limit(job.job_id)


class TestArrivalRate:
    def test_rate_estimated_from_arrivals(self):
        limiter = BatchSizeLimiter()
        for i, t in enumerate([0.0, 10.0, 20.0, 30.0]):
            job = make_job(job_id=f"j{i}", arrival_time=t)
            limiter.on_job_arrival(job)
        assert limiter.arrival_rate == pytest.approx(0.1)

    def test_rate_zero_with_single_arrival(self):
        limiter = BatchSizeLimiter()
        limiter.on_job_arrival(make_job())
        assert limiter.arrival_rate == 0.0

    def test_forget(self):
        limiter = BatchSizeLimiter()
        job = make_job()
        limiter.on_job_arrival(job)
        limiter.forget(job.job_id)
        with pytest.raises(KeyError):
            limiter.limit(job.job_id)
