"""Tests for repro.utils.units."""

import pytest

from repro.utils.units import (
    GB,
    HOUR,
    KB,
    MB,
    MINUTE,
    format_bytes,
    format_duration,
    format_rate,
)


class TestConstants:
    def test_byte_multiples(self):
        assert KB == 1e3
        assert MB == 1e6
        assert GB == 1e9

    def test_time_multiples(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(512) == "512.00 B"

    def test_kib(self):
        assert "KiB" in format_bytes(2048)

    def test_gib(self):
        assert "GiB" in format_bytes(3 * 1024**3)

    def test_huge_uses_tib(self):
        assert "TiB" in format_bytes(5 * 1024**4)


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(5e-6).endswith("us")

    def test_milliseconds(self):
        assert format_duration(0.25).endswith("ms")

    def test_seconds(self):
        assert format_duration(12.5) == "12.50s"

    def test_minutes(self):
        assert format_duration(125) == "2m05.0s"

    def test_hours(self):
        assert format_duration(3 * 3600 + 90) == "3h01.5m"

    def test_negative(self):
        assert format_duration(-12.5).startswith("-")


class TestFormatRate:
    def test_plain(self):
        assert format_rate(12.3) == "12.30 samples/s"

    def test_kilo(self):
        assert "k" in format_rate(12_300)

    def test_mega(self):
        assert "M" in format_rate(12_300_000)

    def test_giga(self):
        assert "G" in format_rate(2.5e9)
