"""Tests for repro.scaling.overhead (the Fig. 16 overhead model)."""

import pytest

from repro.jobs.model_zoo import MODEL_ZOO, get_model
from repro.scaling.overhead import OverheadModel, ReconfigurationKind

FIG16_MODELS = ("alexnet", "resnet18", "resnet50", "vgg16", "googlenet", "inceptionv3", "lstm")


@pytest.fixture
def overheads():
    return OverheadModel()


class TestElasticOverhead:
    def test_elastic_is_order_of_a_second(self, overheads):
        for name in FIG16_MODELS:
            value = overheads.elastic_overhead(get_model(name))
            assert 0.05 < value < 3.0, name

    def test_breakdown_sums_to_total(self, overheads):
        breakdown = overheads.elastic_breakdown(get_model("resnet50"))
        assert breakdown.total == pytest.approx(overheads.elastic_overhead(get_model("resnet50")))

    def test_no_broadcast_without_new_workers(self, overheads):
        model = get_model("vgg16")
        with_new = overheads.elastic_breakdown(model, workers_added=True)
        without = overheads.elastic_breakdown(model, workers_added=False)
        assert with_new.parameter_broadcast > 0
        assert without.parameter_broadcast == 0

    def test_invalid_workers(self, overheads):
        with pytest.raises(ValueError):
            overheads.elastic_overhead(get_model("resnet50"), num_workers=0)


class TestCheckpointOverhead:
    def test_checkpoint_is_tens_of_seconds(self, overheads):
        for name in FIG16_MODELS:
            value = overheads.checkpoint_overhead(get_model(name))
            assert 5.0 < value < 60.0, name

    def test_checkpoint_dwarfs_elastic_for_every_model(self, overheads):
        """The headline of Fig. 16: checkpointing costs an order of magnitude more."""
        for name in FIG16_MODELS:
            model = get_model(name)
            assert overheads.checkpoint_overhead(model) > 5.0 * overheads.elastic_overhead(model), name

    def test_bigger_models_checkpoint_slower(self, overheads):
        assert overheads.checkpoint_overhead(get_model("vgg16")) > overheads.checkpoint_overhead(
            get_model("resnet18")
        )

    def test_sequence_models_pay_data_preparation(self, overheads):
        """The LSTM bar of Fig. 16 is tall despite the model being tiny."""
        lstm = overheads.checkpoint_breakdown(get_model("lstm"))
        resnet = overheads.checkpoint_breakdown(get_model("resnet18"))
        assert lstm.data_preparation > resnet.data_preparation


class TestGenericEntryPoint:
    def test_dispatch_by_kind(self, overheads):
        model = get_model("resnet50")
        elastic = overheads.reconfiguration_overhead(model, ReconfigurationKind.ELASTIC)
        checkpoint = overheads.reconfiguration_overhead(model, ReconfigurationKind.CHECKPOINT)
        assert elastic == pytest.approx(overheads.elastic_overhead(model))
        assert checkpoint == pytest.approx(overheads.checkpoint_overhead(model))

    def test_comparison_table_covers_all_models(self, overheads):
        table = overheads.comparison_table({name: get_model(name) for name in FIG16_MODELS})
        assert set(table) == set(FIG16_MODELS)
        for row in table.values():
            assert row["checkpoint"] > row["elastic"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            OverheadModel(storage_bandwidth=0.0)
