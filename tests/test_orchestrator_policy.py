"""Per-cell execution policy: timeouts, retries and RunnerStats counts."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.experiments.backends import (
    AttemptCounter,
    CellTimeoutError,
    ExecutionPolicy,
    SerialBackend,
    execute_run_with_policy,
)
from repro.experiments.orchestrator import Runner, RunnerStats
from repro.experiments.registry import register_scheduler, unregister_scheduler
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.baselines.fifo import FIFOScheduler
from repro.workload.trace import TraceConfig

_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"


def _spec(**overrides) -> RunSpec:
    base = dict(
        scheduler="FIFO",
        num_gpus=8,
        seed=7,
        trace=TraceConfig(num_jobs=2, arrival_rate=0.1, convergence_patience=4),
    )
    base.update(overrides)
    return RunSpec(**base)


def _grid(**overrides) -> ExperimentSpec:
    return ExperimentSpec(
        schedulers=(overrides.pop("scheduler", "FIFO"),),
        capacities=(8,),
        seeds=(7,),
        traces=(TraceConfig(num_jobs=2, arrival_rate=0.1, convergence_patience=4),),
        **overrides,
    )


class _SlowScheduler(FIFOScheduler):
    """FIFO that sleeps long enough to blow any sub-second timeout."""

    name = "SlowFIFO"

    def on_job_arrival(self, job, state):
        time.sleep(30.0)
        return super().on_job_arrival(job, state)


class _FlakyScheduler(FIFOScheduler):
    """Fails on the first instantiation (marked on disk), then behaves."""

    name = "FlakyFIFO"

    def __init__(self, marker: str) -> None:
        super().__init__()
        import pathlib

        path = pathlib.Path(marker)
        if not path.exists():
            path.write_text("attempt 1\n")
            raise RuntimeError("transient failure on the first attempt")


@pytest.fixture
def slow_registered():
    register_scheduler(
        "SlowFIFO", capabilities=FIFOScheduler.capabilities, description="test-only"
    )(lambda seed, **options: _SlowScheduler())
    yield "SlowFIFO"
    unregister_scheduler("SlowFIFO")


@pytest.fixture
def flaky_registered():
    register_scheduler(
        "FlakyFIFO", capabilities=FIFOScheduler.capabilities, description="test-only"
    )(lambda seed, **options: _FlakyScheduler(options["marker"]))
    yield "FlakyFIFO"
    unregister_scheduler("FlakyFIFO")


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_retries=-1)
        assert ExecutionPolicy().is_default
        assert not ExecutionPolicy(timeout_s=5.0).is_default
        assert not ExecutionPolicy(max_retries=1).is_default

    def test_backoff_validation_and_schedule(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(retry_backoff_s=-1.0)
        policy = ExecutionPolicy(max_retries=3, retry_backoff_s=2.0)
        assert not policy.is_default
        assert [policy.backoff_delay(i) for i in range(3)] == [2.0, 4.0, 8.0]
        assert ExecutionPolicy().backoff_delay(5) == 0.0  # no base -> no waiting

    def test_policy_round_trips_through_dict(self):
        # The queue backend persists the policy in queue.json; every field
        # must survive the round trip so workers see the same guard-rails.
        policy = ExecutionPolicy(timeout_s=7.5, max_retries=2, retry_backoff_s=1.25)
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy
        assert ExecutionPolicy.from_dict(ExecutionPolicy().to_dict()) == ExecutionPolicy()

    def test_default_policy_is_plain_execution(self):
        artifact = execute_run_with_policy(_spec(), None)
        assert artifact.spec == _spec()

    def test_timeout_with_resolver_rejected(self):
        backend = SerialBackend(resolver=lambda name, seed, **o: FIFOScheduler())
        with pytest.raises(ValueError, match="registry"):
            backend.run([_spec()], policy=ExecutionPolicy(timeout_s=5.0))


class TestRunnerStatsShape:
    def test_new_fields_default_zero_and_serialise(self):
        stats = RunnerStats(total_cells=3, executed_cells=3)
        payload = stats.as_dict()
        assert payload["retried_cells"] == 0
        assert payload["timed_out_cells"] == 0
        # The historical one-liner (grepped by CI) is unchanged when the
        # policy never fired.
        assert "retried" not in stats.describe()
        busy = RunnerStats(total_cells=3, retried_cells=2, timed_out_cells=1)
        assert "(2 retried, 1 timed out)" in busy.describe()


@pytest.mark.skipif(not _FORK, reason="watchdog subprocess tests require fork start method")
class TestTimeouts:
    def test_generous_timeout_produces_identical_artifact(self):
        spec = _spec()
        direct = execute_run_with_policy(spec, None)
        guarded = execute_run_with_policy(spec, ExecutionPolicy(timeout_s=120.0))
        assert guarded.to_json() == direct.to_json()

    def test_slow_cell_times_out_and_counts(self, slow_registered):
        runner = Runner(timeout_s=1.0)
        with pytest.raises(CellTimeoutError):
            runner.run(_grid(scheduler=slow_registered))
        assert runner.stats.timed_out_cells == 1
        assert runner.stats.retried_cells == 0
        assert "1 timed out" in runner.stats.describe()

    def test_timeout_retries_are_counted(self, slow_registered):
        counter = AttemptCounter()
        with pytest.raises(CellTimeoutError):
            execute_run_with_policy(
                _spec(scheduler=slow_registered),
                ExecutionPolicy(timeout_s=0.5, max_retries=2),
                counter=counter,
            )
        assert counter.timeouts == 3
        assert counter.retries == 2


class TestRetries:
    def test_flaky_cell_recovers_with_retry(self, flaky_registered, tmp_path):
        marker = str(tmp_path / "flaky-marker")
        spec = _grid(
            scheduler=flaky_registered,
            scheduler_options={flaky_registered: {"marker": marker}},
        )
        runner = Runner(max_retries=1)
        sweep = runner.run(spec)
        assert len(sweep.runs) == 1
        assert runner.stats.retried_cells == 1
        assert runner.stats.timed_out_cells == 0
        assert "(1 retried, 0 timed out)" in runner.stats.describe()

    def test_retry_backoff_sleeps_between_attempts(self, flaky_registered, tmp_path,
                                                   monkeypatch):
        import repro.experiments.backends as backends_module

        slept = []
        monkeypatch.setattr(backends_module.time, "sleep", slept.append)
        marker = str(tmp_path / "flaky-marker")
        spec = _grid(
            scheduler=flaky_registered,
            scheduler_options={flaky_registered: {"marker": marker}},
        )
        runner = Runner(max_retries=2, retry_backoff_s=3.0)
        sweep = runner.run(spec)
        assert len(sweep.runs) == 1
        # One failed attempt -> one backoff sleep of the base delay; the
        # second attempt succeeds so the doubled delay is never paid.
        assert slept == [3.0]

    def test_no_backoff_means_no_sleep(self, flaky_registered, tmp_path, monkeypatch):
        import repro.experiments.backends as backends_module

        slept = []
        monkeypatch.setattr(backends_module.time, "sleep", slept.append)
        marker = str(tmp_path / "flaky-marker")
        spec = _grid(
            scheduler=flaky_registered,
            scheduler_options={flaky_registered: {"marker": marker}},
        )
        Runner(max_retries=1).run(spec)
        assert slept == []

    def test_exhausted_retries_reraise(self, flaky_registered, tmp_path):
        # Without a retry budget the first (failing) attempt is final.
        marker = str(tmp_path / "flaky-marker")
        spec = _grid(
            scheduler=flaky_registered,
            scheduler_options={flaky_registered: {"marker": marker}},
        )
        runner = Runner()
        with pytest.raises(RuntimeError, match="transient"):
            runner.run(spec)
        assert runner.stats.retried_cells == 0
