"""Tests for repro.cluster.events."""

import pytest

from repro.cluster.events import Event, EventKind, EventQueue


class TestEvent:
    def test_negative_time_rejected_on_push(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(Event(time=-1.0, kind=EventKind.TIMER))


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(time=5.0, kind=EventKind.TIMER))
        queue.push(Event(time=1.0, kind=EventKind.TIMER))
        queue.push(Event(time=3.0, kind=EventKind.TIMER))
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_tie_break_by_kind(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, kind=EventKind.EPOCH_END, job_id="a"))
        queue.push(Event(time=1.0, kind=EventKind.JOB_COMPLETION, job_id="b"))
        queue.push(Event(time=1.0, kind=EventKind.JOB_ARRIVAL, job_id="c"))
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.JOB_COMPLETION,
            EventKind.JOB_ARRIVAL,
            EventKind.EPOCH_END,
        ]

    def test_tie_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, kind=EventKind.TIMER, job_id="first"))
        queue.push(Event(time=1.0, kind=EventKind.TIMER, job_id="second"))
        assert queue.pop().job_id == "first"
        assert queue.pop().job_id == "second"

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(Event(time=0.0, kind=EventKind.TIMER))
        assert queue
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(Event(time=2.0, kind=EventKind.TIMER))
        assert queue.peek().time == 2.0
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_iteration_is_sorted_and_non_destructive(self):
        queue = EventQueue()
        for t in (4.0, 2.0, 9.0):
            queue.push(Event(time=t, kind=EventKind.TIMER))
        assert [e.time for e in queue] == [2.0, 4.0, 9.0]
        assert len(queue) == 3

    def test_clear(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, kind=EventKind.TIMER))
        queue.clear()
        assert len(queue) == 0
