"""Tests for repro.prediction.predictor."""

import numpy as np
import pytest

from repro.prediction.beta import BetaDistribution
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from tests.conftest import make_running_job


def _completed_job(job_id="hist", epochs=6, dataset_size=1000):
    job = make_running_job(job_id=job_id, dataset_size=dataset_size, base_epochs=3.0, patience=2)
    for e in range(epochs):
        job.advance(dataset_size, 2.0)
        job.complete_epoch(2.0 * (e + 1))
    job.mark_completed(2.0 * epochs)
    return job


class TestConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(backend="forest")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(history_size=0)
        with pytest.raises(ValueError):
            PredictorConfig(prior_epochs_remaining=0.0)


class TestColdStart:
    def test_prior_used_before_any_completion(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job()
        mean, std = predictor.predict_epochs_remaining(job)
        assert mean == pytest.approx(predictor.config.prior_epochs_remaining)
        assert not predictor.is_fitted

    def test_progress_distribution_is_valid_beta(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(2500, 5.0)
        dist = predictor.progress_distribution(job)
        assert isinstance(dist, BetaDistribution)
        assert dist.alpha == pytest.approx(2.5)
        assert dist.beta >= 1.0

    def test_remaining_workload_of_fresh_job_uses_prior(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        remaining = predictor.remaining_workload(job)
        assert remaining == pytest.approx(
            predictor.config.prior_epochs_remaining * 1000
        )


class TestOnlineFitting:
    @pytest.mark.parametrize("backend", ["gpr", "blr"])
    def test_fits_after_enough_completions(self, backend):
        predictor = ProgressPredictor(PredictorConfig(backend=backend), seed=0)
        for i in range(3):
            predictor.observe_completion(_completed_job(job_id=f"j{i}", epochs=5 + i))
        assert predictor.is_fitted
        assert predictor.fit_count >= 1

    def test_prediction_decreases_with_progress(self):
        predictor = ProgressPredictor(PredictorConfig(backend="blr"), seed=0)
        for i in range(4):
            predictor.observe_completion(_completed_job(job_id=f"j{i}", epochs=6))
        early = make_running_job(job_id="early", dataset_size=1000)
        early.advance(1000, 2.0)
        early.complete_epoch(2.0)
        late = make_running_job(job_id="late", dataset_size=1000)
        for e in range(5):
            late.advance(1000, 2.0)
            late.complete_epoch(2.0 * (e + 1))
        remaining_early, _ = predictor.predict_epochs_remaining(early)
        remaining_late, _ = predictor.predict_epochs_remaining(late)
        assert remaining_late < remaining_early

    def test_remaining_workload_formula(self):
        """Eq. 7: Y = Y_processed (1/ρ − 1)."""
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(3000, 6.0)
        remaining = predictor.remaining_workload(job, progress=0.25)
        assert remaining == pytest.approx(3000 * 3.0)

    def test_remaining_time_divides_by_throughput(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(2000, 4.0)
        t = predictor.remaining_time(job, throughput=100.0, progress=0.5)
        assert t == pytest.approx(2000 / 100.0)

    def test_remaining_time_requires_positive_throughput(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job()
        with pytest.raises(ValueError):
            predictor.remaining_time(job, throughput=0.0)

    def test_sample_progress_in_unit_interval(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(500, 1.0)
        for _ in range(20):
            assert 0.0 < predictor.sample_progress(job) < 1.0


class TestPredictionCurve:
    def test_prediction_curve_structure(self):
        predictor = ProgressPredictor(PredictorConfig(backend="blr"), seed=0)
        for i in range(3):
            predictor.observe_completion(_completed_job(job_id=f"j{i}"))
        job = make_running_job(dataset_size=1000)
        job.advance(2000, 4.0)
        curve = predictor.prediction_curve(job, sample_points=20)
        assert set(curve) >= {"samples_processed", "mean", "ci_low", "ci_high"}
        assert len(curve["mean"]) == 20
        assert np.all(curve["ci_low"] <= curve["mean"] + 1e-9)
        assert np.all(curve["mean"] <= curve["ci_high"] + 1e-9)

    def test_mean_progress_increases_with_processed_samples(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(3000, 4.0)
        curve = predictor.prediction_curve(job, sample_points=15)
        assert curve["mean"][-1] > curve["mean"][0]
