"""Tests for repro.prediction.predictor."""

import numpy as np
import pytest

from repro.prediction.beta import BetaDistribution
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from tests.conftest import make_running_job


def _completed_job(job_id="hist", epochs=6, dataset_size=1000):
    job = make_running_job(job_id=job_id, dataset_size=dataset_size, base_epochs=3.0, patience=2)
    for e in range(epochs):
        job.advance(dataset_size, 2.0)
        job.complete_epoch(2.0 * (e + 1))
    job.mark_completed(2.0 * epochs)
    return job


class TestConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(backend="forest")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(history_size=0)
        with pytest.raises(ValueError):
            PredictorConfig(prior_epochs_remaining=0.0)


class TestColdStart:
    def test_prior_used_before_any_completion(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job()
        mean, std = predictor.predict_epochs_remaining(job)
        assert mean == pytest.approx(predictor.config.prior_epochs_remaining)
        assert not predictor.is_fitted

    def test_progress_distribution_is_valid_beta(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(2500, 5.0)
        dist = predictor.progress_distribution(job)
        assert isinstance(dist, BetaDistribution)
        assert dist.alpha == pytest.approx(2.5)
        assert dist.beta >= 1.0

    def test_remaining_workload_of_fresh_job_uses_prior(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        remaining = predictor.remaining_workload(job)
        assert remaining == pytest.approx(
            predictor.config.prior_epochs_remaining * 1000
        )


class TestOnlineFitting:
    @pytest.mark.parametrize("backend", ["gpr", "blr"])
    def test_fits_after_enough_completions(self, backend):
        predictor = ProgressPredictor(PredictorConfig(backend=backend), seed=0)
        for i in range(3):
            predictor.observe_completion(_completed_job(job_id=f"j{i}", epochs=5 + i))
        assert predictor.is_fitted
        assert predictor.fit_count >= 1

    def test_prediction_decreases_with_progress(self):
        predictor = ProgressPredictor(PredictorConfig(backend="blr"), seed=0)
        for i in range(4):
            predictor.observe_completion(_completed_job(job_id=f"j{i}", epochs=6))
        early = make_running_job(job_id="early", dataset_size=1000)
        early.advance(1000, 2.0)
        early.complete_epoch(2.0)
        late = make_running_job(job_id="late", dataset_size=1000)
        for e in range(5):
            late.advance(1000, 2.0)
            late.complete_epoch(2.0 * (e + 1))
        remaining_early, _ = predictor.predict_epochs_remaining(early)
        remaining_late, _ = predictor.predict_epochs_remaining(late)
        assert remaining_late < remaining_early

    def test_remaining_workload_formula(self):
        """Eq. 7: Y = Y_processed (1/ρ − 1)."""
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(3000, 6.0)
        remaining = predictor.remaining_workload(job, progress=0.25)
        assert remaining == pytest.approx(3000 * 3.0)

    def test_remaining_time_divides_by_throughput(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(2000, 4.0)
        t = predictor.remaining_time(job, throughput=100.0, progress=0.5)
        assert t == pytest.approx(2000 / 100.0)

    def test_remaining_time_requires_positive_throughput(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job()
        with pytest.raises(ValueError):
            predictor.remaining_time(job, throughput=0.0)

    def test_sample_progress_in_unit_interval(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(500, 1.0)
        for _ in range(20):
            assert 0.0 < predictor.sample_progress(job) < 1.0


class TestIncrementalRefitPolicy:
    def _job_stream(self, count, epochs=6):
        return [
            _completed_job(job_id=f"j{i}", epochs=epochs + (i % 3)) for i in range(count)
        ]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(refit_policy="sometimes")
        with pytest.raises(ValueError):
            PredictorConfig(refit_interval=0)
        with pytest.raises(ValueError):
            PredictorConfig(refit_lml_drop=0.0)

    def test_partial_updates_replace_most_full_refits(self):
        config = PredictorConfig(refit_policy="incremental", refit_interval=4)
        predictor = ProgressPredictor(config, seed=0)
        for job in self._job_stream(9):
            predictor.observe_completion(job)
        # Full refits only at the cadence (first fit + every 4th update);
        # the rest are rank-1 appends.
        always = ProgressPredictor(PredictorConfig(), seed=0)
        for job in self._job_stream(9):
            always.observe_completion(job)
        assert predictor.fit_count < always.fit_count
        assert predictor.partial_fit_count > 0
        assert predictor.is_fitted

    def test_matches_full_refit_at_refit_points(self):
        """At its full-refit points the incremental policy is exactly
        the refit-every-time predictor (same history => same model)."""
        interval = 3
        incremental = ProgressPredictor(
            PredictorConfig(refit_policy="incremental", refit_interval=interval),
            seed=0,
        )
        always = ProgressPredictor(PredictorConfig(), seed=0)
        probe = make_running_job(job_id="probe", dataset_size=1000)
        probe.advance(2000, 4.0)
        probe.complete_epoch(4.0)
        checked = 0
        for i, (job_a, job_b) in enumerate(
            zip(self._job_stream(10), self._job_stream(10))
        ):
            fits_before = incremental.fit_count
            incremental.observe_completion(job_a)
            always.observe_completion(job_b)
            if incremental.fit_count > fits_before and always.is_fitted:
                # this completion triggered a *full* refit on the same
                # history the always-policy predictor just refitted on
                assert incremental.mean_epochs_remaining(probe) == pytest.approx(
                    always.mean_epochs_remaining(probe), rel=1e-12
                )
                checked += 1
        assert checked >= 2

    def test_non_due_completions_are_not_dropped(self):
        """With refit_every > 1, examples from non-due completions must
        still reach the live model at the next rank-1 append."""
        config = PredictorConfig(
            refit_policy="incremental", refit_every=2, refit_interval=10
        )
        predictor = ProgressPredictor(config, seed=0)
        jobs = self._job_stream(4)
        expected = sum(len(job.epoch_records) for job in jobs)
        for job in jobs:
            predictor.observe_completion(job)
        # completion 2 full-fitted jobs 1-2; completion 4's partial
        # append must carry BOTH job 3 (non-due) and job 4.
        assert predictor.partial_fit_count == 1
        assert predictor._model.num_training_points == expected

    def test_predictions_stay_sane_between_refits(self):
        predictor = ProgressPredictor(
            PredictorConfig(refit_policy="incremental", refit_interval=8), seed=0
        )
        for job in self._job_stream(6):
            predictor.observe_completion(job)
        job = make_running_job(job_id="live", dataset_size=1000)
        job.advance(3000, 6.0)
        mean = predictor.mean_epochs_remaining(job)
        assert np.isfinite(mean) and mean >= 0.0

    def test_blr_backend_falls_back_to_full_refits(self):
        config = PredictorConfig(
            backend="blr", refit_policy="incremental", refit_interval=4
        )
        predictor = ProgressPredictor(config, seed=0)
        for job in self._job_stream(6):
            predictor.observe_completion(job)
        assert predictor.partial_fit_count == 0  # BLR has no rank-1 path
        assert predictor.is_fitted

    def test_saturated_model_coasts_until_cadence(self):
        config = PredictorConfig(refit_policy="incremental", refit_interval=5)
        predictor = ProgressPredictor(config, seed=0)
        for job in self._job_stream(3):
            predictor.observe_completion(job)
        assert predictor.is_fitted
        # Saturate the model: no room to append => completions coast.
        predictor._model.max_training_points = predictor._model.num_training_points
        fits_before = predictor.fit_count
        partial_before = predictor.partial_fit_count
        predictor.observe_completion(_completed_job(job_id="sat-0"))
        assert predictor.fit_count == fits_before
        assert predictor.partial_fit_count == partial_before
        # ... but the cadence still forces a full refit eventually.
        for i in range(1, 6):
            predictor.observe_completion(_completed_job(job_id=f"sat-{i}"))
        assert predictor.fit_count > fits_before

    def test_mean_epochs_remaining_matches_predict_mean(self):
        predictor = ProgressPredictor(seed=0)
        for job in self._job_stream(4):
            predictor.observe_completion(job)
        job = make_running_job(job_id="live", dataset_size=1000)
        job.advance(1500, 3.0)
        mean, _ = predictor.predict_epochs_remaining(job)
        assert predictor.mean_epochs_remaining(job) == mean

    def test_refit_timers_accumulate(self):
        predictor = ProgressPredictor(
            PredictorConfig(refit_policy="incremental", refit_interval=4), seed=0
        )
        for job in self._job_stream(6):
            predictor.observe_completion(job)
        assert predictor.refit_seconds > 0.0
        assert predictor.partial_fit_seconds > 0.0


class TestPredictionCurve:
    def test_prediction_curve_structure(self):
        predictor = ProgressPredictor(PredictorConfig(backend="blr"), seed=0)
        for i in range(3):
            predictor.observe_completion(_completed_job(job_id=f"j{i}"))
        job = make_running_job(dataset_size=1000)
        job.advance(2000, 4.0)
        curve = predictor.prediction_curve(job, sample_points=20)
        assert set(curve) >= {"samples_processed", "mean", "ci_low", "ci_high"}
        assert len(curve["mean"]) == 20
        assert np.all(curve["ci_low"] <= curve["mean"] + 1e-9)
        assert np.all(curve["mean"] <= curve["ci_high"] + 1e-9)

    def test_mean_progress_increases_with_processed_samples(self):
        predictor = ProgressPredictor(seed=0)
        job = make_running_job(dataset_size=1000)
        job.advance(3000, 4.0)
        curve = predictor.prediction_curve(job, sample_points=15)
        assert curve["mean"][-1] > curve["mean"][0]
