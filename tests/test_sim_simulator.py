"""Tests for repro.sim.simulator."""

import json

import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.cluster.topology import make_longhorn_cluster
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from tests.conftest import make_spec


class TestSimulationConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_time=0)
        with pytest.raises(ValueError):
            SimulationConfig(start_overhead=-1)
        with pytest.raises(ValueError):
            SimulationConfig(max_events=10)


class TestConstruction:
    def test_empty_trace_rejected(self, small_topology):
        with pytest.raises(ValueError):
            ClusterSimulator(small_topology, FIFOScheduler(), [])

    def test_duplicate_job_ids_rejected(self, small_topology):
        trace = [make_spec(job_id="dup"), make_spec(job_id="dup")]
        with pytest.raises(ValueError):
            ClusterSimulator(small_topology, FIFOScheduler(), trace)


class TestSingleJob:
    def test_job_completes_with_expected_metrics(self, small_topology):
        spec = make_spec(job_id="solo", dataset_size=2000, base_epochs=3.0, patience=2)
        config = SimulationConfig(start_overhead=5.0)
        result = ClusterSimulator(small_topology, FIFOScheduler(), [spec], config=config).run()
        assert result.incomplete == []
        metrics = result.completed["solo"]
        assert metrics["jct"] > 0
        assert metrics["execution_time"] > 0
        # A single job on an empty cluster never queues.
        assert metrics["queuing_time"] == pytest.approx(0.0, abs=1e-6)
        # The epoch count is at least target epochs + patience.
        assert metrics["epochs"] >= 2 + 2

    def test_execution_time_includes_start_overhead(self, small_topology):
        spec = make_spec(job_id="solo", dataset_size=2000, base_epochs=2.0, patience=2)
        fast = ClusterSimulator(
            small_topology, FIFOScheduler(), [spec], config=SimulationConfig(start_overhead=0.0)
        ).run()
        slow = ClusterSimulator(
            small_topology, FIFOScheduler(), [spec], config=SimulationConfig(start_overhead=50.0)
        ).run()
        assert slow.completed["solo"]["jct"] > fast.completed["solo"]["jct"] + 40

    def test_job_epochs_match_dataset_passes(self, small_topology):
        spec = make_spec(job_id="solo", dataset_size=1000, base_epochs=2.0, patience=2)
        result = ClusterSimulator(small_topology, FIFOScheduler(), [spec]).run()
        job = result.jobs["solo"]
        assert job.samples_processed == pytest.approx(
            job.epochs_completed * spec.dataset_size, rel=1e-6
        )


class TestMultiJob:
    def test_queuing_occurs_when_cluster_contended(self, small_topology):
        # Four 8-GPU jobs on an 8-GPU cluster: they must serialise.
        trace = [
            make_spec(job_id=f"j{i}", requested_gpus=8, base_batch=512, dataset_size=4000,
                      base_epochs=2.0, patience=2, arrival_time=0.0)
            for i in range(4)
        ]
        result = ClusterSimulator(small_topology, FIFOScheduler(), trace).run()
        assert result.incomplete == []
        assert result.average_queuing_time > 0

    def test_gpu_utilization_bounded(self, small_topology, tiny_trace):
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        assert 0.0 < result.gpu_utilization <= 1.0

    def test_makespan_covers_all_jobs(self, small_topology, tiny_trace):
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        last_completion = max(m["jct"] + spec.arrival_time
                              for spec, m in zip(sorted(tiny_trace, key=lambda s: s.job_id),
                                                 [result.completed[s.job_id] for s in sorted(tiny_trace, key=lambda s: s.job_id)]))
        assert result.makespan == pytest.approx(last_completion, rel=1e-6)

    def test_max_time_leaves_jobs_incomplete(self, small_topology, tiny_trace):
        config = SimulationConfig(max_time=30.0)
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace, config=config).run()
        assert len(result.incomplete) > 0

    def test_preemptive_scheduler_charges_reconfigurations(self, small_topology, tiny_trace):
        result = ClusterSimulator(small_topology, TiresiasScheduler(), tiny_trace).run()
        assert result.num_reconfigurations >= len(tiny_trace)

    def test_deterministic_given_same_inputs(self, small_topology, tiny_trace):
        a = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        b = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        assert a.jct_values().tolist() == b.jct_values().tolist()


class TestResultViews:
    def test_summary_keys(self, small_topology, tiny_trace):
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        summary = result.summary()
        assert summary["scheduler"] == "FIFO"
        assert summary["completed_jobs"] == len(tiny_trace)
        assert summary["average_jct"] > 0

    def test_summary_round_trips_with_declared_types(self, small_topology, tiny_trace):
        """The summary keys feed `analysis.export` / `experiments.report`:
        heterogeneous by design (str scheduler, int counts, float metrics)
        and stable through both JSON and the result's dict round-trip."""
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        summary = result.summary()
        assert set(summary) == {
            "scheduler", "num_gpus", "completed_jobs", "incomplete_jobs",
            "average_jct", "average_execution_time", "average_queuing_time",
            "makespan", "gpu_utilization", "reconfigurations",
        }
        assert isinstance(summary["scheduler"], str)
        for key in ("num_gpus", "completed_jobs", "incomplete_jobs", "reconfigurations"):
            assert isinstance(summary[key], int), key
        for key in ("average_jct", "average_execution_time", "average_queuing_time",
                    "makespan", "gpu_utilization"):
            assert isinstance(summary[key], float), key
        # JSON round-trip preserves every value bit-for-bit.
        assert json.loads(json.dumps(summary)) == summary
        # A result rebuilt from its serialized form reports the same summary.
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.summary() == summary

    def test_metric_vectors_aligned(self, small_topology, tiny_trace):
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        n = len(result.completed)
        assert len(result.jct_values()) == n
        assert len(result.execution_values()) == n
        assert len(result.queuing_values()) == n
        # JCT = execution + queuing for every job.
        for jct, ex, q in zip(
            result.jct_values(), result.execution_values(), result.queuing_values()
        ):
            assert jct == pytest.approx(ex + q, rel=1e-6, abs=1e-6)
