"""Tests for repro.jobs.model_zoo."""

import pytest

from repro.jobs.model_zoo import MODEL_ZOO, ModelSpec, get_model


class TestModelZoo:
    def test_contains_table2_models(self):
        for name in ("alexnet", "resnet18", "resnet50", "vgg16", "googlenet", "inceptionv3", "bert"):
            assert name in MODEL_ZOO

    def test_contains_lstm_for_fig16(self):
        assert "lstm" in MODEL_ZOO

    def test_get_model_case_insensitive(self):
        assert get_model("ResNet50") is MODEL_ZOO["resnet50"]

    def test_get_model_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="available models"):
            get_model("transformer-xl")

    def test_vgg_is_heaviest_cnn_by_parameters(self):
        assert MODEL_ZOO["vgg16"].num_parameters > MODEL_ZOO["resnet50"].num_parameters

    def test_gradient_bytes(self):
        model = MODEL_ZOO["resnet50"]
        assert model.gradient_bytes == pytest.approx(model.num_parameters * 4.0)

    def test_checkpoint_bytes_default(self):
        model = MODEL_ZOO["resnet18"]
        assert model.checkpoint_bytes == pytest.approx(3 * model.gradient_bytes)


class TestModelSpec:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(name="x", num_parameters=0, flops_per_sample=1e9, max_local_batch=8)
        with pytest.raises(ValueError):
            ModelSpec(name="x", num_parameters=1e6, flops_per_sample=1e9, max_local_batch=0)

    def test_scaled_reduces_flops(self):
        base = get_model("resnet50")
        scaled = base.scaled(0.1, "@cifar10")
        assert scaled.flops_per_sample == pytest.approx(0.1 * base.flops_per_sample)
        assert scaled.name.endswith("@cifar10")
        assert scaled.num_parameters == base.num_parameters

    def test_scaled_grows_local_batch_but_bounded(self):
        base = get_model("resnet50")
        scaled = base.scaled(0.01)
        assert scaled.max_local_batch > base.max_local_batch
        assert scaled.max_local_batch <= base.max_local_batch * 8

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            get_model("resnet50").scaled(0.0)
