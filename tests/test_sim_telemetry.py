"""Tests for repro.sim.telemetry."""

import numpy as np
import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.cluster.topology import make_longhorn_cluster
from repro.sim.simulator import ClusterSimulator
from repro.sim.telemetry import (
    ascii_utilization_sparkline,
    batch_size_timeline,
    busy_gpu_timeline,
    gpu_count_timeline,
    job_gantt,
    summarize_run,
    utilization_timeline,
)


@pytest.fixture(scope="module")
def fifo_result():
    trace_module = pytest.importorskip("repro.workload.trace")
    trace = trace_module.TraceGenerator(
        trace_module.TraceConfig(num_jobs=5, arrival_rate=1.0 / 10.0, convergence_patience=3),
        seed=3,
    ).generate()
    return ClusterSimulator(make_longhorn_cluster(8), FIFOScheduler(), trace).run()


class TestGantt:
    def test_segments_cover_every_completed_job(self, fifo_result):
        segments = job_gantt(fifo_result.jobs)
        assert {s.job_id for s in segments} == set(fifo_result.completed)
        for segment in segments:
            assert segment.duration >= 0
            assert segment.num_gpus >= 1

    def test_segments_sorted_by_start(self, fifo_result):
        segments = job_gantt(fifo_result.jobs)
        starts = [s.start for s in segments]
        assert starts == sorted(starts)

    def test_gantt_durations_match_execution_times(self, fifo_result):
        segments = job_gantt(fifo_result.jobs)
        for job_id, metrics in fifo_result.completed.items():
            total = sum(s.duration for s in segments if s.job_id == job_id)
            assert total == pytest.approx(metrics["execution_time"], rel=1e-6)


class TestTimelines:
    def test_busy_gpus_bounded_by_cluster(self, fifo_result):
        _, busy = busy_gpu_timeline(fifo_result, num_points=100)
        assert busy.max() <= fifo_result.num_gpus
        assert busy.min() >= 0

    def test_utilization_in_unit_interval(self, fifo_result):
        _, util = utilization_timeline(fifo_result, num_points=100)
        assert np.all(util >= 0)
        assert np.all(util <= 1.0 + 1e-9)

    def test_batch_size_timeline(self, fifo_result):
        job = next(iter(fifo_result.jobs.values()))
        times, batches = batch_size_timeline(job)
        assert len(times) == len(batches)
        assert np.all(batches >= 1)

    def test_gpu_count_timeline(self, fifo_result):
        job = next(iter(fifo_result.jobs.values()))
        times, counts = gpu_count_timeline(job)
        assert len(times) == len(counts)
        assert counts.max() >= 1


class TestSummary:
    def test_summarize_run_fields(self, fifo_result):
        telemetry = summarize_run(fifo_result)
        data = telemetry.as_dict()
        assert data["scheduler"] == "FIFO"
        assert 0 < data["mean_utilization"] <= 1.0
        assert data["peak_utilization"] >= data["mean_utilization"]
        assert data["mean_gpus_per_job"] >= 1.0
        assert data["mean_peak_batch_ratio"] >= 1.0

    def test_sparkline_has_requested_width(self, fifo_result):
        line = ascii_utilization_sparkline(fifo_result, width=40)
        assert len(line) == 40

    def test_invalid_sparkline_width(self, fifo_result):
        with pytest.raises(ValueError):
            ascii_utilization_sparkline(fifo_result, width=0)


@pytest.fixture(scope="module")
def faulted_result():
    """FIFO run with one node down mid-run (NODE_DOWN @60s, NODE_UP @120s)."""
    from repro.faults import FaultConfig, FaultInjection, FaultKind
    from repro.sim.simulator import SimulationConfig
    from repro.workload.trace import TraceConfig, TraceGenerator

    trace = TraceGenerator(
        TraceConfig(num_jobs=5, arrival_rate=1.0 / 10.0, convergence_patience=3),
        seed=3,
    ).generate()
    faults = FaultConfig(
        injections=(
            FaultInjection(60.0, FaultKind.NODE_DOWN, 1),
            FaultInjection(120.0, FaultKind.NODE_UP, 1),
        )
    )
    return ClusterSimulator(
        make_longhorn_cluster(8), FIFOScheduler(), trace,
        config=SimulationConfig(faults=faults),
    ).run()


class TestZeroDurationSegments:
    def test_zero_duration_segment_is_kept_but_contributes_no_busy_time(self, fifo_result):
        import copy
        from dataclasses import replace

        job = copy.deepcopy(next(iter(fifo_result.jobs.values())))
        from repro.jobs.job import RunInterval

        job.run_intervals.append(RunInterval(start=5.0, end=5.0, num_gpus=4))
        segments = job_gantt({job.spec.job_id: job})
        zero = [s for s in segments if s.duration == 0.0]
        assert len(zero) == 1
        assert zero[0].start == zero[0].end == 5.0
        # A zero-width segment must not light up any timeline sample.
        doctored = replace(fifo_result, jobs={job.spec.job_id: job})
        baseline = replace(
            fifo_result,
            jobs={job.spec.job_id: next(iter(fifo_result.jobs.values()))},
        )
        _, busy_doctored = busy_gpu_timeline(doctored, num_points=100)
        _, busy_baseline = busy_gpu_timeline(baseline, num_points=100)
        assert np.array_equal(busy_doctored, busy_baseline)

    def test_open_interval_without_completion_closes_at_start(self, fifo_result):
        import copy
        from repro.jobs.job import RunInterval

        job = copy.deepcopy(next(iter(fifo_result.jobs.values())))
        job.completion_time = None
        job.run_intervals = [RunInterval(start=9.0, end=None, num_gpus=2)]
        (segment,) = job_gantt({job.spec.job_id: job})
        assert segment.end == 9.0
        assert segment.duration == 0.0


class TestFaultBoundaries:
    def test_evicted_jobs_close_their_intervals_at_the_fault(self, faulted_result):
        segments = job_gantt(faulted_result.jobs)
        evicted = [s for s in segments if s.end == 60.0]
        # NODE_DOWN at t=60 evicts the victims mid-interval: their open
        # run intervals must close exactly at the fault time.
        assert evicted
        for segment in evicted:
            assert segment.start < 60.0

    def test_all_jobs_still_complete_and_covered(self, faulted_result):
        assert faulted_result.incomplete == []
        segments = job_gantt(faulted_result.jobs)
        assert {s.job_id for s in segments} == set(faulted_result.completed)
        for segment in segments:
            assert segment.duration >= 0

    def test_busy_gpus_respect_the_outage_capacity(self, faulted_result):
        times, busy = busy_gpu_timeline(faulted_result, num_points=400)
        in_outage = (times > 62.0) & (times < 118.0)
        assert in_outage.any()
        # One 4-GPU node is down: at most the other node's GPUs are busy.
        assert busy[in_outage].max() <= 4
        assert busy.max() <= faulted_result.num_gpus

    def test_utilization_stays_in_unit_interval_across_faults(self, faulted_result):
        times, util = utilization_timeline(faulted_result, num_points=400)
        assert np.all(util >= 0)
        assert np.all(util <= 1.0 + 1e-9)
        # The run straddles both fault boundaries.
        assert times[0] < 60.0 < times[-1]
        assert times[-1] > 120.0

    def test_summary_counts_fault_era_reconfigurations(self, faulted_result):
        telemetry = summarize_run(faulted_result)
        assert telemetry.makespan == pytest.approx(faulted_result.makespan)
        assert 0 < telemetry.mean_utilization <= 1.0
