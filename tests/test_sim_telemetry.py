"""Tests for repro.sim.telemetry."""

import numpy as np
import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.cluster.topology import make_longhorn_cluster
from repro.sim.simulator import ClusterSimulator
from repro.sim.telemetry import (
    ascii_utilization_sparkline,
    batch_size_timeline,
    busy_gpu_timeline,
    gpu_count_timeline,
    job_gantt,
    summarize_run,
    utilization_timeline,
)


@pytest.fixture(scope="module")
def fifo_result():
    trace_module = pytest.importorskip("repro.workload.trace")
    trace = trace_module.TraceGenerator(
        trace_module.TraceConfig(num_jobs=5, arrival_rate=1.0 / 10.0, convergence_patience=3),
        seed=3,
    ).generate()
    return ClusterSimulator(make_longhorn_cluster(8), FIFOScheduler(), trace).run()


class TestGantt:
    def test_segments_cover_every_completed_job(self, fifo_result):
        segments = job_gantt(fifo_result.jobs)
        assert {s.job_id for s in segments} == set(fifo_result.completed)
        for segment in segments:
            assert segment.duration >= 0
            assert segment.num_gpus >= 1

    def test_segments_sorted_by_start(self, fifo_result):
        segments = job_gantt(fifo_result.jobs)
        starts = [s.start for s in segments]
        assert starts == sorted(starts)

    def test_gantt_durations_match_execution_times(self, fifo_result):
        segments = job_gantt(fifo_result.jobs)
        for job_id, metrics in fifo_result.completed.items():
            total = sum(s.duration for s in segments if s.job_id == job_id)
            assert total == pytest.approx(metrics["execution_time"], rel=1e-6)


class TestTimelines:
    def test_busy_gpus_bounded_by_cluster(self, fifo_result):
        _, busy = busy_gpu_timeline(fifo_result, num_points=100)
        assert busy.max() <= fifo_result.num_gpus
        assert busy.min() >= 0

    def test_utilization_in_unit_interval(self, fifo_result):
        _, util = utilization_timeline(fifo_result, num_points=100)
        assert np.all(util >= 0)
        assert np.all(util <= 1.0 + 1e-9)

    def test_batch_size_timeline(self, fifo_result):
        job = next(iter(fifo_result.jobs.values()))
        times, batches = batch_size_timeline(job)
        assert len(times) == len(batches)
        assert np.all(batches >= 1)

    def test_gpu_count_timeline(self, fifo_result):
        job = next(iter(fifo_result.jobs.values()))
        times, counts = gpu_count_timeline(job)
        assert len(times) == len(counts)
        assert counts.max() >= 1


class TestSummary:
    def test_summarize_run_fields(self, fifo_result):
        telemetry = summarize_run(fifo_result)
        data = telemetry.as_dict()
        assert data["scheduler"] == "FIFO"
        assert 0 < data["mean_utilization"] <= 1.0
        assert data["peak_utilization"] >= data["mean_utilization"]
        assert data["mean_gpus_per_job"] >= 1.0
        assert data["mean_peak_batch_ratio"] >= 1.0

    def test_sparkline_has_requested_width(self, fifo_result):
        line = ascii_utilization_sparkline(fifo_result, width=40)
        assert len(line) == 40

    def test_invalid_sparkline_width(self, fifo_result):
        with pytest.raises(ValueError):
            ascii_utilization_sparkline(fifo_result, width=0)
