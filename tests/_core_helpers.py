"""Helpers shared by the core (ONES) test modules."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.cluster.topology import make_longhorn_cluster
from repro.core.operators import EvolutionContext
from repro.core.schedule import Schedule
from repro.jobs.job import Job
from repro.jobs.throughput import ThroughputModel, split_batch
from repro.prediction.beta import BetaDistribution
from tests.conftest import make_job


def make_jobs(
    num_jobs: int = 3,
    dataset_size: int = 4000,
    base_batch: int = 128,
    requested_gpus: int = 1,
) -> Dict[str, Job]:
    """A dict of pending jobs named job-0, job-1, ..."""
    jobs = {}
    for i in range(num_jobs):
        job_id = f"job-{i}"
        jobs[job_id] = make_job(
            job_id=job_id,
            dataset_size=dataset_size,
            base_batch=base_batch,
            requested_gpus=requested_gpus,
            arrival_time=float(i),
        )
    return jobs


def make_context(
    jobs: Optional[Dict[str, Job]] = None,
    num_gpus: int = 8,
    limits: Optional[Dict[str, int]] = None,
    never_started: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> EvolutionContext:
    """Build a realistic EvolutionContext over a small Longhorn cluster."""
    jobs = jobs if jobs is not None else make_jobs()
    topology = make_longhorn_cluster(num_gpus)
    model = ThroughputModel(topology)
    roster = tuple(sorted(jobs))
    limits = dict(limits) if limits is not None else {
        job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()
    }

    def throughput_fn(job: Job, schedule: Schedule) -> float:
        count = schedule.gpu_count(job.job_id)
        if count == 0:
            return 0.0
        limit = limits.get(job.job_id, job.spec.base_batch)
        global_batch = schedule.global_batch(job, limit)
        gpus = schedule.gpus_of(job.job_id)
        return model.throughput(job.spec.model, split_batch(global_batch, count), gpus)

    distributions = {
        job_id: BetaDistribution(max(1.0, job.processed_epochs()), 5.0)
        for job_id, job in jobs.items()
    }
    remaining = {
        job_id: max(job.samples_processed, 1.0) * 4.0 for job_id, job in jobs.items()
    }
    executed = {job_id: float(i * 10) for i, job_id in enumerate(sorted(jobs))}
    if never_started is None:
        never_started = {j for j, job in jobs.items() if job.first_start_time is None}
    return EvolutionContext(
        jobs=jobs,
        roster=roster,
        limits=limits,
        distributions=distributions,
        throughput_fn=throughput_fn,
        remaining_workload=remaining,
        executed_time=executed,
        num_gpus=num_gpus,
        never_started=set(never_started),
        rng=np.random.default_rng(seed),
    )
