"""Tests for repro.jobs.job."""

import pytest

from repro.jobs.job import Job, JobStatus
from tests.conftest import make_job, make_running_job, make_spec


class TestJobSpec:
    def test_valid_spec(self):
        spec = make_spec()
        assert spec.max_local_batch == spec.model.max_local_batch
        assert spec.expected_total_epochs() > spec.convergence_patience

    def test_batch_larger_than_dataset_rejected(self):
        with pytest.raises(ValueError):
            make_spec(dataset_size=64, base_batch=128)

    def test_empty_job_id_rejected(self):
        with pytest.raises(ValueError):
            make_spec(job_id="")


class TestLifecycle:
    def test_initial_state(self):
        job = make_job()
        assert job.status is JobStatus.PENDING
        assert job.num_gpus == 0
        assert job.global_batch == 0
        assert not job.is_running and not job.is_completed

    def test_start_and_stop(self):
        job = make_job()
        job.start_running(10.0, [0, 1], [64, 64])
        assert job.is_running
        assert job.num_gpus == 2
        assert job.global_batch == 128
        assert job.first_start_time == 10.0
        job.stop_running(20.0)
        assert not job.is_running
        assert job.executed_time() == pytest.approx(10.0)
        assert job.attained_service == pytest.approx(20.0)

    def test_start_requires_workers(self):
        job = make_job()
        with pytest.raises(ValueError):
            job.start_running(0.0, [], [])

    def test_start_rejects_mismatched_lists(self):
        job = make_job()
        with pytest.raises(ValueError):
            job.start_running(0.0, [0, 1], [64])

    def test_cannot_start_completed_job(self):
        job = make_running_job()
        job.mark_completed(5.0)
        with pytest.raises(RuntimeError):
            job.start_running(6.0, [0], [64])

    def test_reconfiguration_while_running_tracks_service(self):
        job = make_running_job(gpu_ids=(0,), local_batches=(64,))
        job.start_running(10.0, [0, 1], [64, 64])
        assert job.num_gpus == 2
        # 10 s at 1 GPU so far.
        assert job.attained_service == pytest.approx(10.0)

    def test_generation_bumps_on_transitions(self):
        job = make_job()
        g0 = job.generation
        job.start_running(0.0, [0], [64])
        job.stop_running(1.0)
        assert job.generation >= g0 + 2


class TestProgress:
    def test_advance_accumulates_samples_and_epochs(self):
        job = make_running_job(dataset_size=1000, local_batches=(100,))
        job.advance(500, duration=5.0)
        assert job.samples_processed == 500
        assert 0 < job.effective_epochs <= 0.5
        assert job.measured_throughput == pytest.approx(100.0)

    def test_advance_requires_running(self):
        job = make_job()
        with pytest.raises(RuntimeError):
            job.advance(10, 1.0)

    def test_loss_and_accuracy_move_with_progress(self):
        job = make_running_job(dataset_size=1000)
        loss0, acc0 = job.current_loss, job.current_accuracy
        job.advance(5000, duration=10.0)
        assert job.current_loss < loss0
        assert job.current_accuracy > acc0
        assert 0 < job.loss_improvement_ratio < 1

    def test_batch_change_spike_applied(self):
        job = make_running_job(local_batches=(64,))
        job.advance(2000, 10.0)
        before = job.effective_epochs
        spike = job.apply_batch_change(64, 4096)
        assert spike > 0
        assert job.effective_epochs < before

    def test_complete_epoch_and_convergence(self):
        job = make_running_job(dataset_size=1000, base_epochs=1.0, patience=2)
        for epoch in range(1, 6):
            job.advance(1000, 2.0)
            record = job.complete_epoch(now=2.0 * epoch)
            assert record.epoch_index == epoch
            if job.is_converged:
                break
        assert job.is_converged
        assert job.consecutive_target_epochs >= 2

    def test_epoch_records_capture_configuration(self):
        job = make_running_job(gpu_ids=(0, 1), local_batches=(64, 64))
        job.advance(4000, 4.0)
        record = job.complete_epoch(4.0)
        assert record.num_gpus == 2
        assert record.global_batch == 128
        assert record.samples_processed == pytest.approx(4000)


class TestMetrics:
    def test_completion_metrics(self):
        job = make_running_job(now=5.0, arrival_time=0.0)
        job.advance(1000, 10.0)
        job.mark_completed(25.0)
        metrics = job.completion_metrics()
        assert metrics["jct"] == pytest.approx(25.0)
        assert metrics["execution_time"] == pytest.approx(20.0)
        assert metrics["queuing_time"] == pytest.approx(5.0)

    def test_metrics_before_completion_raise(self):
        with pytest.raises(RuntimeError):
            make_job().completion_metrics()

    def test_executed_time_open_interval_needs_now(self):
        job = make_running_job(now=0.0)
        with pytest.raises(ValueError):
            job.executed_time()
        assert job.executed_time(now=7.0) == pytest.approx(7.0)

    def test_record_reconfiguration(self):
        job = make_job()
        job.record_reconfiguration(1.5)
        job.record_reconfiguration(0.5)
        assert job.reconfig_count == 2
        assert job.reconfig_overhead_total == pytest.approx(2.0)
