"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generator


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerator:
    def test_same_name_same_stream(self):
        a = spawn_generator(5, "trace").integers(0, 10**6, size=4)
        b = spawn_generator(5, "trace").integers(0, 10**6, size=4)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = spawn_generator(5, "trace").integers(0, 10**6, size=8)
        b = spawn_generator(5, "evolution").integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn_generator(5, "trace").integers(0, 10**6, size=8)
        b = spawn_generator(6, "trace").integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_get_is_cached(self):
        factory = RngFactory(9)
        assert factory.get("x") is factory.get("x")

    def test_reproducible_across_factories(self):
        a = RngFactory(11).get("stream").integers(0, 10**6, size=6)
        b = RngFactory(11).get("stream").integers(0, 10**6, size=6)
        assert np.array_equal(a, b)

    def test_fresh_resets_stream(self):
        factory = RngFactory(3)
        first = factory.get("s").integers(0, 10**6, size=3)
        fresh = factory.fresh("s").integers(0, 10**6, size=3)
        assert np.array_equal(first, fresh)

    def test_child_factory_differs_from_parent(self):
        parent = RngFactory(3)
        child = parent.child("worker")
        assert parent.seed != child.seed
        a = parent.get("s").integers(0, 10**6, size=4)
        b = child.get("s").integers(0, 10**6, size=4)
        assert not np.array_equal(a, b)

    def test_none_seed_generates_entropy(self):
        factory = RngFactory(None)
        assert isinstance(factory.seed, int)
