"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type(5, int, "x") == 5

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be of type"):
            check_type("5", int, "x")

    def test_accepts_tuple_of_types(self):
        assert check_type(5.0, (int, float), "x") == 5.0


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-2, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_below_zero(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(5, "x", 5, 10) == 5.0
        assert check_in_range(10, "x", 5, 10) == 10.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(5, "x", 5, 10, inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range(11, "x", 5, 10)

    def test_open_ended(self):
        assert check_in_range(1e9, "x", low=0) == 1e9


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "n") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")
