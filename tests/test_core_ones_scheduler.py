"""Tests for repro.core.ones_scheduler."""

import pytest

from repro.baselines.base import ClusterState
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.jobs.throughput import ThroughputModel
from repro.scaling.overhead import ReconfigurationKind
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from tests.conftest import make_job, make_spec


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


@pytest.fixture
def scheduler():
    return ONESScheduler(
        ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=0
    )


@pytest.fixture
def topology():
    return make_longhorn_cluster(8)


class TestCapabilities:
    def test_table3_row(self, scheduler):
        row = scheduler.describe()
        assert row["Scheduler"] == "ONES"
        assert row["Greedy/Dynamic Strategy"] == "Dynamic"
        assert row["Allow Preemption"] == "Y"
        assert row["Elastic Job Size"] == "Y"
        assert row["Elastic Batch Size"] == "Y"

    def test_uses_elastic_reconfiguration(self, scheduler):
        assert scheduler.reconfiguration_kind is ReconfigurationKind.ELASTIC

    def test_scales_learning_rate(self, scheduler):
        assert scheduler.lr_is_scaled()


class TestArrival:
    def test_first_arrival_gets_gpus_immediately(self, scheduler, topology):
        job = make_job(job_id="job-0", arrival_time=0.0)
        jobs = {"job-0": job}
        proposal = scheduler.on_job_arrival(job, _state(jobs, topology))
        assert proposal is not None
        assert proposal.num_gpus("job-0") >= 1
        assert proposal.global_batch("job-0") >= 1

    def test_arrival_registers_batch_limit(self, scheduler, topology):
        job = make_job(job_id="job-0")
        scheduler.on_job_arrival(job, _state({"job-0": job}, topology))
        assert scheduler.limiter.limit("job-0") <= job.spec.max_local_batch

    def test_proposal_respects_device_limits(self, scheduler, topology):
        job = make_job(job_id="job-0", base_batch=256, requested_gpus=2)
        proposal = scheduler.on_job_arrival(job, _state({"job-0": job}, topology))
        config = proposal.config_of("job-0")
        assert all(b <= job.spec.max_local_batch for b in config.local_batches)

    def test_multiple_arrivals_all_served_with_capacity(self, scheduler, topology):
        jobs = {}
        allocation = Allocation.empty()
        for i in range(3):
            job = make_job(job_id=f"job-{i}", arrival_time=float(i))
            jobs[f"job-{i}"] = job
            state = _state(jobs, topology, allocation, now=float(i))
            proposal = scheduler.on_job_arrival(job, state)
            if proposal is not None:
                allocation = proposal
                for job_id in proposal.jobs():
                    config = proposal.config_of(job_id)
                    jobs[job_id].start_running(
                        float(i), config.gpu_ids, config.local_batches
                    )
        placed = {j for j in jobs if allocation.num_gpus(j) > 0}
        assert placed == set(jobs)


class TestEndToEnd:
    def test_ones_completes_small_trace(self, tiny_trace):
        topology = make_longhorn_cluster(8)
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=1
        )
        result = ClusterSimulator(
            topology, scheduler, tiny_trace, config=SimulationConfig(max_time=48 * 3600)
        ).run()
        assert not result.incomplete
        assert result.average_jct > 0
        assert scheduler.num_full_updates + scheduler.num_incremental_fills > 0

    def test_batch_sizes_grow_during_run(self, tiny_trace):
        """The defining behaviour: ONES raises batch sizes beyond submission."""
        topology = make_longhorn_cluster(8)
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=1
        )
        result = ClusterSimulator(topology, scheduler, tiny_trace).run()
        grew = 0
        for spec in tiny_trace:
            job = result.jobs[spec.job_id]
            max_batch = max((b for _, b in job.batch_history), default=0)
            if max_batch > spec.base_batch:
                grew += 1
        assert grew >= 1

    def test_predictor_learns_from_completions(self, tiny_trace):
        topology = make_longhorn_cluster(8)
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=1
        )
        ClusterSimulator(topology, scheduler, tiny_trace).run()
        assert scheduler.predictor.history.completed_jobs == len(tiny_trace)
        assert scheduler.predictor.is_fitted


class TestThroughputMemoisation:
    """The per-invocation table and cross-invocation memo stay bounded."""

    def test_memo_bounded_after_full_simulation(self, tiny_trace):
        topology = make_longhorn_cluster(8)
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=1
        )
        ClusterSimulator(topology, scheduler, tiny_trace).run()
        assert len(scheduler._throughput_memo) <= scheduler.config.throughput_memo_entries
        table = scheduler.last_throughput_table
        assert table is not None
        assert table.filled_entries <= table.capacity
        state = scheduler.describe_state()
        assert state["throughput_memo_entries"] == len(scheduler._throughput_memo)

    def test_tiny_memo_bound_is_respected(self, tiny_trace):
        scheduler = ONESScheduler(
            ONESConfig(
                evolution=EvolutionConfig(population_size=4),
                throughput_memo_entries=16,
            ),
            seed=1,
        )
        result = ClusterSimulator(
            make_longhorn_cluster(8), scheduler, tiny_trace
        ).run()
        assert not result.incomplete  # a tiny memo degrades speed, not behaviour
        assert len(scheduler._throughput_memo) <= 16
