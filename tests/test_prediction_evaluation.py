"""Tests for repro.prediction.evaluation."""

import numpy as np
import pytest

from repro.prediction.evaluation import cross_validate_backends, evaluate_predictor
from tests.conftest import make_running_job


def _completed_job(job_id, epochs, dataset_size=1000):
    job = make_running_job(job_id=job_id, dataset_size=dataset_size, base_epochs=3.0, patience=2)
    for e in range(epochs):
        job.advance(dataset_size, 2.0)
        job.complete_epoch(2.0 * (e + 1))
    job.mark_completed(2.0 * epochs)
    return job


@pytest.fixture(scope="module")
def job_pool():
    return [_completed_job(f"job-{i}", epochs=5 + (i % 4)) for i in range(8)]


class TestEvaluatePredictor:
    @pytest.mark.parametrize("backend", ["gpr", "blr"])
    def test_metrics_are_finite_and_sane(self, job_pool, backend):
        evaluation = evaluate_predictor(job_pool[:5], job_pool[5:], backend=backend, seed=0)
        data = evaluation.as_dict()
        assert data["backend"] == backend
        assert data["eval_points"] > 0
        assert np.isfinite(data["mae_epochs_remaining"])
        assert data["rmse_epochs_remaining"] >= data["mae_epochs_remaining"] - 1e-9
        assert 0.0 <= data["coverage_90ci"] <= 1.0
        assert data["mean_90ci_width"] > 0

    def test_reasonable_accuracy_on_homogeneous_jobs(self, job_pool):
        evaluation = evaluate_predictor(job_pool[:6], job_pool[6:], backend="blr", seed=0)
        # Jobs run 5-8 epochs, so a usable predictor should be well inside
        # a 10-epoch error band.
        assert evaluation.mae_epochs_remaining < 10.0

    def test_requires_jobs(self, job_pool):
        with pytest.raises(ValueError):
            evaluate_predictor([], job_pool, backend="blr")
        with pytest.raises(ValueError):
            evaluate_predictor(job_pool, [], backend="blr")

    def test_invalid_confidence(self, job_pool):
        with pytest.raises(ValueError):
            evaluate_predictor(job_pool[:4], job_pool[4:], confidence=1.5)


class TestCrossValidation:
    def test_covers_both_backends(self, job_pool):
        results = cross_validate_backends(job_pool, folds=2, seed=0)
        assert set(results) == {"gpr", "blr"}
        for evaluation in results.values():
            assert evaluation.num_eval_points > 0
            assert np.isfinite(evaluation.mae_epochs_remaining)

    def test_requires_enough_jobs(self):
        with pytest.raises(ValueError):
            cross_validate_backends([_completed_job("only", 5)], folds=3)
