"""Tests for repro.jobs.lr_scaling."""

import pytest

from repro.jobs.lr_scaling import (
    linear_scaled_lr,
    scaled_lr_with_warmup,
    sqrt_scaled_lr,
    warmup_factor,
)


class TestLinearScaling:
    def test_doubling_batch_doubles_lr(self):
        assert linear_scaled_lr(0.1, 256, 512) == pytest.approx(0.2)

    def test_identity(self):
        assert linear_scaled_lr(0.1, 256, 256) == pytest.approx(0.1)

    def test_downscale(self):
        assert linear_scaled_lr(0.1, 256, 128) == pytest.approx(0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            linear_scaled_lr(0.0, 256, 512)
        with pytest.raises(ValueError):
            linear_scaled_lr(0.1, 0, 512)


class TestSqrtScaling:
    def test_quadrupling_batch_doubles_lr(self):
        assert sqrt_scaled_lr(0.1, 256, 1024) == pytest.approx(0.2)


class TestWarmup:
    def test_no_warmup(self):
        assert warmup_factor(0, 0) == 1.0

    def test_ramp(self):
        assert warmup_factor(0, 10) == pytest.approx(0.1)
        assert warmup_factor(4, 10) == pytest.approx(0.5)
        assert warmup_factor(9, 10) == pytest.approx(1.0)

    def test_capped_at_one(self):
        assert warmup_factor(100, 10) == 1.0

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            warmup_factor(-1, 10)


class TestCombined:
    def test_linear_with_warmup(self):
        lr = scaled_lr_with_warmup(0.1, 256, 1024, step=1, warmup_steps=4)
        assert lr == pytest.approx(0.4 * 0.5)

    def test_sqrt_rule_selection(self):
        lr = scaled_lr_with_warmup(0.1, 256, 1024, step=100, warmup_steps=0, rule="sqrt")
        assert lr == pytest.approx(0.2)

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            scaled_lr_with_warmup(0.1, 256, 512, step=0, rule="cubic")
