"""JSONL transport: server ops, client round-trips, protocol errors."""

import json
import socket
import threading

import pytest

from repro.service.http import ServiceClient, run_server
from repro.service.schemas import JobSubmission, ServiceConfig, TenantQuota
from repro.service.load import generate_submissions
from repro.workload.arrivals import ArrivalConfig


@pytest.fixture()
def live_service():
    """A real server on an ephemeral port, torn down via the shutdown op."""
    config = ServiceConfig(
        num_gpus=16,
        scheduler="ONES",
        seed=3,
        mode="virtual",
        tenants=(TenantQuota(tenant="t1"), TenantQuota(tenant="t2", max_gpus=4)),
    )
    ready = threading.Event()
    port_holder = {}

    def announce(message, flush=True):
        address = message.split(" on ")[1].split()[0]
        port_holder["port"] = int(address.rsplit(":", 1)[1])
        ready.set()

    thread = threading.Thread(
        target=run_server,
        kwargs=dict(config=config, port=0, announce=announce),
        daemon=True,
    )
    thread.start()
    assert ready.wait(15), "server did not come up"
    yield port_holder["port"]
    try:
        with ServiceClient(port=port_holder["port"], timeout=5.0) as client:
            client.shutdown()
    except (ConnectionError, OSError, RuntimeError):
        pass  # already stopped by the test body
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestServerOps:
    def test_submit_round_trip(self, live_service):
        with ServiceClient(port=live_service) as client:
            decision = client.submit(JobSubmission(tenant="t1", replicas=2))
        assert decision["status"] == "placed"
        assert len(decision["gpu_ids"]) >= 1

    def test_submit_batch_and_stream(self, live_service):
        submissions = [
            JobSubmission(tenant="t2", replicas=1, arrival_time=30.0 * i)
            for i in range(3)
        ]
        with ServiceClient(port=live_service) as client:
            decisions = client.submit_batch(submissions)
            stream = client.stream("t2")
        assert len(decisions) == 3
        assert len(stream["records"]) == 3
        assert stream["cursor"] == 3

    def test_status_and_metrics(self, live_service):
        with ServiceClient(port=live_service) as client:
            client.submit(JobSubmission(tenant="t1"))
            status = client.status()
            metrics = client.metrics()
        assert status["submissions"] == 1
        assert metrics["decision_latency"]["count"] == 1.0

    def test_rejection_comes_back_as_decision(self, live_service):
        with ServiceClient(port=live_service) as client:
            decision = client.submit(JobSubmission(tenant="nobody"))
        assert decision["status"] == "rejected"
        assert "unknown tenant" in decision["reason"]

    def test_advance_moves_virtual_clock(self, live_service):
        with ServiceClient(port=live_service) as client:
            client.submit(JobSubmission(tenant="t1", arrival_time=0.0))
            response = client.advance(600.0)
        assert response["virtual_time"] <= 600.0

    def test_drain_returns_summary(self, live_service):
        with ServiceClient(port=live_service) as client:
            client.submit(JobSubmission(tenant="t1"))
            summary = client.drain()
        assert summary["completed_jobs"] == 1

    def test_generated_load_flows_through(self, live_service):
        submissions = generate_submissions(
            ["t1", "t2"], 5, arrivals=ArrivalConfig(rate=1 / 30.0, seed=9)
        )
        with ServiceClient(port=live_service) as client:
            decisions = client.submit_batch(submissions)
        assert len(decisions) == 10
        # t2 is GPU-capped at 4, so some of its submissions may bounce,
        # but every decision must be structured.
        assert all(d["status"] in ("placed", "queued", "rejected") for d in decisions)


class TestProtocolErrors:
    def _raw(self, port, line: bytes) -> dict:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(line + b"\n")
            handle.flush()
            return json.loads(handle.readline())

    def test_malformed_json_is_reported(self, live_service):
        response = self._raw(live_service, b"{not json")
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_unknown_op_is_reported(self, live_service):
        response = self._raw(live_service, b'{"op": "teleport"}')
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_missing_op_is_reported(self, live_service):
        response = self._raw(live_service, b'{"hello": 1}')
        assert response["ok"] is False

    def test_client_raises_on_protocol_error(self, live_service):
        with ServiceClient(port=live_service) as client:
            with pytest.raises(RuntimeError, match="unknown op"):
                client.request("teleport")

    def test_shutdown_op_stops_the_server(self, live_service):
        with ServiceClient(port=live_service) as client:
            client.shutdown()
        with pytest.raises((ConnectionError, OSError)):
            probe = ServiceClient(port=live_service, timeout=2.0)
            probe.request("ping")
            probe.close()


class TestMetricsTextOp:
    def test_metrics_text_returns_prometheus_exposition(self, live_service):
        with ServiceClient(port=live_service) as client:
            client.submit(JobSubmission(tenant="t1"))
            text = client.metrics_text()
        assert "# TYPE service_decision_latency_seconds histogram" in text
        assert "service_queue_depth" in text
        assert "scheduler_iterations_run" in text
