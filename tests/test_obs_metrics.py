"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
)


class TestPrimitives:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.get() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_callback(self):
        gauge = Gauge()
        gauge.set(7)
        assert gauge.get() == 7
        box = {"value": 1}
        gauge.set_function(lambda: box["value"])
        box["value"] = 9
        assert gauge.get() == 9
        # A plain set() clears the callback again.
        gauge.set(2)
        assert gauge.get() == 2


class TestFamiliesAndRegistry:
    def test_label_less_family_proxies_to_single_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(3)
        registry.gauge("queue_depth").set(11)
        assert registry.values() == {"jobs_total": 3, "queue_depth": 11}

    def test_labeled_series_created_on_demand(self):
        registry = MetricsRegistry()
        family = registry.counter("completed", labels=("tenant",))
        family.labels(tenant="a").inc()
        family.labels(tenant="a").inc()
        family.labels(tenant="b").inc()
        assert registry.values() == {
            'completed{tenant="a"}': 2,
            'completed{tenant="b"}': 1,
        }

    def test_label_names_validated(self):
        registry = MetricsRegistry()
        family = registry.counter("c", labels=("tenant",))
        with pytest.raises(ValueError):
            family.labels(nope="x")

    def test_registration_idempotent_but_kind_pinned(self):
        registry = MetricsRegistry()
        first = registry.counter("n")
        assert registry.counter("n") is first
        with pytest.raises(ValueError):
            registry.gauge("n")
        with pytest.raises(ValueError):
            registry.counter("n", labels=("tenant",))

    def test_attach_adopts_live_objects(self):
        registry = MetricsRegistry()
        hist = LatencyHistogram()
        hist.record(0.002)
        family = registry.histogram("latency_seconds", labels=("kind",))
        family.attach(hist, kind="submit")
        # Live object: later observations show up without re-attaching.
        hist.record(0.004)
        assert registry.values() == {'latency_seconds_count{kind="submit"}': 2}

    def test_values_preserves_ints(self):
        registry = MetricsRegistry()
        registry.counter("exact").inc(1)
        registry.gauge("ratio").set(0.5)
        values = registry.values()
        assert values["exact"] == 1 and isinstance(values["exact"], int)
        assert values["ratio"] == 0.5

    def test_set_gauges_bulk(self):
        registry = MetricsRegistry()
        registry.set_gauges({"a": 1, "b": 2.5})
        assert registry.values() == {"a": 1, "b": 2.5}

    def test_as_dict_nested_shape(self):
        registry = MetricsRegistry()
        registry.counter("n", help="things").inc(2)
        hist = registry.histogram("h")
        hist.record(0.001)
        payload = registry.as_dict()
        assert payload["n"] == {"kind": "counter", "help": "things", "series": {"": 2}}
        assert payload["h"]["series"][""]["count"] == 1.0


class TestPrometheusRendering:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", help="settled jobs").inc(3)
        registry.gauge("depth", labels=("tenant",)).labels(tenant="a").set(2)
        text = render_prometheus(registry)
        assert "# HELP jobs_total settled jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert 'depth{tenant="a"} 2' in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.record(0.5e-6)   # bucket 0
        hist.record(3e-6)     # bucket 2 ((2µs, 4µs])
        text = render_prometheus(registry)
        lines = [l for l in text.splitlines() if l.startswith("lat_bucket")]
        assert lines[0] == 'lat_bucket{le="1e-06"} 1'
        assert lines[1] == 'lat_bucket{le="2e-06"} 1'
        assert lines[2] == 'lat_bucket{le="4e-06"} 2'
        assert lines[-1] == 'lat_bucket{le="+Inf"} 2'
        assert "lat_count 2" in text
        assert render_prometheus(registry) == text  # deterministic

    def test_render_text_matches_module_function(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry.render_text() == render_prometheus(registry)


class TestLatencyHistogramRelocation:
    def test_service_engine_reexports_latency_histogram(self):
        from repro.service.engine import LatencyHistogram as ServiceHistogram

        assert ServiceHistogram is LatencyHistogram

    def test_bucket_edges_match_counts_layout(self):
        hist = LatencyHistogram()
        edges = hist.bucket_edges()
        assert len(edges) == len(hist.counts) - 1  # overflow bucket has no edge
        assert edges[0] == 1e-6
        assert edges[1] == 2e-6

    def test_summary_statistics_survive_move(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            hist.record(value)
        summary = hist.as_dict()
        assert summary["count"] == 3.0
        assert summary["max_ms"] == pytest.approx(4.0)
        # percentile() returns the containing bucket's upper edge.
        assert hist.percentile(50.0) == pytest.approx(1e-6 * 2**11)
