"""Tests for declarative experiment specs (repro.experiments.spec)."""

import json

import pytest

from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig

TINY_TRACE = TraceConfig(num_jobs=3, arrival_rate=1.0 / 10.0, convergence_patience=3)


class TestRunSpec:
    def test_defaults_match_paper_setup(self):
        spec = RunSpec(scheduler="ONES")
        assert spec.num_gpus == 64
        assert spec.seed == 2021
        assert spec.trace.num_jobs == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec(scheduler="")
        with pytest.raises(ValueError):
            RunSpec(scheduler="ONES", num_gpus=0)
        with pytest.raises(ValueError):
            RunSpec(scheduler="ONES", seed=0)

    def test_json_round_trip(self):
        spec = RunSpec(
            scheduler="ONES",
            num_gpus=8,
            seed=7,
            trace=TINY_TRACE,
            simulation=SimulationConfig(max_time=24 * 3600.0),
            scheduler_options={"population_size": 4},
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        restored = RunSpec.from_dict(payload)
        assert restored == spec
        assert restored.cell_key() == spec.cell_key()

    def test_cell_key_sensitive_to_every_axis(self):
        base = RunSpec(scheduler="ONES", num_gpus=8, seed=7, trace=TINY_TRACE)
        variants = [
            RunSpec(scheduler="FIFO", num_gpus=8, seed=7, trace=TINY_TRACE),
            RunSpec(scheduler="ONES", num_gpus=16, seed=7, trace=TINY_TRACE),
            RunSpec(scheduler="ONES", num_gpus=8, seed=8, trace=TINY_TRACE),
            RunSpec(scheduler="ONES", num_gpus=8, seed=7,
                    trace=TraceConfig(num_jobs=4, arrival_rate=1.0 / 10.0)),
            RunSpec(scheduler="ONES", num_gpus=8, seed=7, trace=TINY_TRACE,
                    simulation=SimulationConfig(max_time=3600.0)),
            RunSpec(scheduler="ONES", num_gpus=8, seed=7, trace=TINY_TRACE,
                    scheduler_options={"population_size": 4}),
        ]
        keys = {base.cell_key()} | {v.cell_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_cell_key_independent_of_option_order(self):
        a = RunSpec(scheduler="ONES", scheduler_options={"a": 1, "b": 2})
        b = RunSpec(scheduler="ONES", scheduler_options={"b": 2, "a": 1})
        assert a.cell_key() == b.cell_key()

    def test_label(self):
        assert RunSpec(scheduler="ONES", num_gpus=8, seed=7).label() == "ONES@8g/seed7"


class TestExperimentSpec:
    def make(self, **overrides):
        defaults = dict(
            schedulers=("ONES", "FIFO"),
            capacities=(8, 16),
            seeds=(7, 9),
            traces=(TINY_TRACE,),
            simulation=SimulationConfig(max_time=24 * 3600.0),
            scheduler_options={"ONES": {"population_size": 4}},
        )
        defaults.update(overrides)
        return ExperimentSpec(**defaults)

    def test_expand_full_grid_in_order(self):
        spec = self.make()
        cells = spec.expand()
        assert len(cells) == spec.num_cells == 2 * 2 * 2
        # Inner-to-outer order: schedulers, seeds, capacities, traces.
        assert [c.label() for c in cells[:4]] == [
            "ONES@8g/seed7", "FIFO@8g/seed7", "ONES@8g/seed9", "FIFO@8g/seed9",
        ]
        assert all(c.num_gpus == 16 for c in cells[4:])

    def test_expand_applies_per_scheduler_options(self):
        cells = self.make().expand()
        for cell in cells:
            if cell.scheduler == "ONES":
                assert cell.scheduler_options == {"population_size": 4}
            else:
                assert cell.scheduler_options == {}

    def test_cell_keys_unique(self):
        cells = self.make().expand()
        assert len({c.cell_key() for c in cells}) == len(cells)

    def test_lists_coerced_to_tuples(self):
        spec = ExperimentSpec(schedulers=["ONES"], capacities=[8], seeds=[1],
                              traces=[TINY_TRACE])
        assert spec.schedulers == ("ONES",)
        assert spec.capacities == (8,)

    def test_validation(self):
        with pytest.raises(ValueError, match="schedulers"):
            self.make(schedulers=())
        with pytest.raises(ValueError, match="duplicates"):
            self.make(schedulers=("ONES", "ONES"))
        with pytest.raises(ValueError, match="not in the grid"):
            self.make(scheduler_options={"Tiresias": {}})

    def test_json_round_trip(self):
        spec = self.make()
        payload = json.loads(json.dumps(spec.to_dict()))
        restored = ExperimentSpec.from_dict(payload)
        assert restored == spec
        assert restored.sweep_key() == spec.sweep_key()
        assert [c.cell_key() for c in restored.expand()] == [
            c.cell_key() for c in spec.expand()
        ]

    def test_convenience_constructors(self):
        comparison = ExperimentSpec.comparison(num_gpus=32, seed=5)
        assert comparison.schedulers == ("ONES", "DRL", "Tiresias", "Optimus")
        assert comparison.capacities == (32,)
        assert comparison.seeds == (5,)
        scalability = ExperimentSpec.scalability(capacities=(16, 32))
        assert scalability.capacities == (16, 32)
        assert scalability.num_cells == 4 * 2
