"""Tests for repro.prediction.gpr."""

import numpy as np
import pytest

from repro.prediction.gpr import (
    GaussianProcessRegression,
    rbf_kernel,
    squared_distances,
)


class TestRBFKernel:
    def test_diagonal_is_signal_variance(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = rbf_kernel(X, X, signal_variance=2.0, length_scale=1.0)
        assert np.allclose(np.diag(K), 2.0)

    def test_symmetry_and_psd(self):
        X = np.random.default_rng(1).normal(size=(20, 4))
        K = rbf_kernel(X, X, 1.0, 1.5)
        assert np.allclose(K, K.T)
        eigvals = np.linalg.eigvalsh(K)
        assert eigvals.min() > -1e-8

    def test_decay_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert rbf_kernel(a, near, 1.0, 1.0)[0, 0] > rbf_kernel(a, far, 1.0, 1.0)[0, 0]


@pytest.fixture
def smooth_data(rng):
    X = np.sort(rng.uniform(-3, 3, size=(80, 1)), axis=0)
    y = np.sin(X[:, 0]) * 3.0 + rng.normal(scale=0.05, size=80)
    return X, y


class TestFitPredict:
    def test_interpolates_smooth_function(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        pred = model.predict(X)
        assert np.mean(np.abs(pred - y)) < 0.2

    def test_predictive_uncertainty_grows_off_data(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        _, std_in = model.predict(np.array([[0.0]]), return_std=True)
        _, std_out = model.predict(np.array([[30.0]]), return_std=True)
        assert std_out[0] > std_in[0]

    def test_log_marginal_likelihood_improves_with_optimization(self, smooth_data):
        X, y = smooth_data
        fixed = GaussianProcessRegression(
            optimize_hyperparameters=False, length_scale=0.01, random_state=0
        ).fit(X, y)
        tuned = GaussianProcessRegression(random_state=0).fit(X, y)
        assert tuned.log_marginal_likelihood_ >= fixed.log_marginal_likelihood_

    def test_subsamples_large_training_sets(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(scale=0.1, size=300)
        model = GaussianProcessRegression(max_training_points=50, random_state=0).fit(X, y)
        assert model.X_train_.shape[0] == 50

    def test_predict_one(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        mean, std = model.predict_one(X[0])
        assert isinstance(mean, float) and std > 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegression().predict(np.zeros((1, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegression().fit(np.empty((0, 2)), np.empty(0))

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianProcessRegression().fit(rng.normal(size=(5, 2)), rng.normal(size=3))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GaussianProcessRegression(noise_variance=0.0)

    def test_predict_mean_one_matches_predict_one_mean(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        for x in X[:5]:
            assert model.predict_mean_one(x) == model.predict_one(x)[0]


class TestNLLGradient:
    def test_gradient_matches_finite_differences_with_underflowed_pairs(self):
        # Two clusters far enough apart that the RBF kernel underflows to
        # exactly 0.0 between them at a small length scale: the old
        # log-recovered squared distances clamped those pairs and zeroed
        # their (real) contribution to the length-scale gradient.
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(0.0, 0.3, size=(6, 2)),
                       rng.normal(90.0, 0.3, size=(6, 2))])
        y = np.concatenate([np.zeros(6), np.ones(6)])
        model = GaussianProcessRegression()
        log_params = np.log([1.5, 1.2, 0.3])
        assert (rbf_kernel(X[:6], X[6:], 1.5, 1.2) == 0.0).all()  # underflow
        _, grad = model._nll_and_grad(log_params, X, y)
        eps = 1e-6
        for i in range(3):
            bump = np.zeros(3)
            bump[i] = eps
            hi = model._nll_value(log_params + bump, X, y)
            lo = model._nll_value(log_params - bump, X, y)
            numeric = (hi - lo) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_nll_value_matches_nll_and_grad_value(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression()
        log_params = np.log([1.0, 1.0, 0.1])
        assert model._nll_value(log_params, X, y) == model._nll_and_grad(
            log_params, X, y
        )[0]

    def test_squared_distances_are_exact(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert np.allclose(squared_distances(a, a), [[0.0, 25.0], [25.0, 0.0]])


class TestSubsampleSeeding:
    def test_successive_refits_see_different_subsamples(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(scale=0.1, size=300)
        model = GaussianProcessRegression(
            max_training_points=50, optimize_hyperparameters=False, random_state=0
        )
        model.fit(X, y)
        first = model.X_train_.copy()
        model.fit(X, y)
        second = model.X_train_.copy()
        assert not np.array_equal(first, second)

    def test_first_fit_reproduces_the_historical_subsample(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(scale=0.1, size=300)
        model = GaussianProcessRegression(
            max_training_points=50, optimize_hyperparameters=False, random_state=7
        ).fit(X, y)
        keep = np.random.default_rng(7).choice(300, size=50, replace=False)
        assert np.array_equal(model.X_train_, X[keep])

    def test_fresh_instances_stay_deterministic(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(scale=0.1, size=300)
        a = GaussianProcessRegression(
            max_training_points=50, optimize_hyperparameters=False, random_state=3
        ).fit(X, y)
        b = GaussianProcessRegression(
            max_training_points=50, optimize_hyperparameters=False, random_state=3
        ).fit(X, y)
        assert np.array_equal(a.X_train_, b.X_train_)


class TestPartialFit:
    def _data(self, rng, n):
        X = np.sort(rng.uniform(-3, 3, size=(n, 1)), axis=0)
        y = np.sin(X[:, 0]) * 3.0 + rng.normal(scale=0.05, size=n)
        return X, y

    def test_rank_one_append_matches_full_refit(self, rng):
        X, y = self._data(rng, 40)
        incremental = GaussianProcessRegression(
            optimize_hyperparameters=False, normalize_y=False, random_state=0
        ).fit(X[:30], y[:30])
        assert incremental.partial_fit(X[30:], y[30:])
        full = GaussianProcessRegression(
            optimize_hyperparameters=False, normalize_y=False, random_state=0
        ).fit(X, y)
        assert np.allclose(incremental._chol, full._chol, atol=1e-8)
        assert np.allclose(incremental._alpha, full._alpha, atol=1e-8)
        assert incremental.log_marginal_likelihood_ == pytest.approx(
            full.log_marginal_likelihood_, rel=1e-9
        )
        probe = np.linspace(-3, 3, 17)[:, None]
        a_mean, a_std = incremental.predict(probe, return_std=True)
        b_mean, b_std = full.predict(probe, return_std=True)
        assert np.allclose(a_mean, b_mean, atol=1e-8)
        assert np.allclose(a_std, b_std, atol=1e-8)

    def test_unfitted_model_refuses(self, rng):
        X, y = self._data(rng, 5)
        assert not GaussianProcessRegression().partial_fit(X, y)

    def test_cap_refuses(self, rng):
        X, y = self._data(rng, 20)
        model = GaussianProcessRegression(
            max_training_points=22, optimize_hyperparameters=False
        ).fit(X, y)
        assert not model.partial_fit(X[:5], y[:5])  # 20 + 5 > 22
        assert model.num_training_points == 20  # untouched
        assert model.partial_fit(X[:2], y[:2])
        assert model.num_training_points == 22

    def test_empty_append_is_a_noop(self, rng):
        X, y = self._data(rng, 10)
        model = GaussianProcessRegression(optimize_hyperparameters=False).fit(X, y)
        assert model.partial_fit(np.empty((0, 1)), np.empty(0))
        assert model.num_training_points == 10

    def test_normalized_targets_round_trip(self, rng):
        # normalize_y freezes (mean, scale) at the last full fit; appended
        # targets reuse them, and predictions stay in the original units.
        X, y = self._data(rng, 40)
        y = y + 100.0
        model = GaussianProcessRegression(
            optimize_hyperparameters=False, random_state=0
        ).fit(X[:30], y[:30])
        assert model.partial_fit(X[30:], y[30:])
        pred = model.predict(X)
        assert np.mean(np.abs(pred - y)) < 1.0
