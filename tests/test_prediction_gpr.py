"""Tests for repro.prediction.gpr."""

import numpy as np
import pytest

from repro.prediction.gpr import GaussianProcessRegression, rbf_kernel


class TestRBFKernel:
    def test_diagonal_is_signal_variance(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = rbf_kernel(X, X, signal_variance=2.0, length_scale=1.0)
        assert np.allclose(np.diag(K), 2.0)

    def test_symmetry_and_psd(self):
        X = np.random.default_rng(1).normal(size=(20, 4))
        K = rbf_kernel(X, X, 1.0, 1.5)
        assert np.allclose(K, K.T)
        eigvals = np.linalg.eigvalsh(K)
        assert eigvals.min() > -1e-8

    def test_decay_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert rbf_kernel(a, near, 1.0, 1.0)[0, 0] > rbf_kernel(a, far, 1.0, 1.0)[0, 0]


@pytest.fixture
def smooth_data(rng):
    X = np.sort(rng.uniform(-3, 3, size=(80, 1)), axis=0)
    y = np.sin(X[:, 0]) * 3.0 + rng.normal(scale=0.05, size=80)
    return X, y


class TestFitPredict:
    def test_interpolates_smooth_function(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        pred = model.predict(X)
        assert np.mean(np.abs(pred - y)) < 0.2

    def test_predictive_uncertainty_grows_off_data(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        _, std_in = model.predict(np.array([[0.0]]), return_std=True)
        _, std_out = model.predict(np.array([[30.0]]), return_std=True)
        assert std_out[0] > std_in[0]

    def test_log_marginal_likelihood_improves_with_optimization(self, smooth_data):
        X, y = smooth_data
        fixed = GaussianProcessRegression(
            optimize_hyperparameters=False, length_scale=0.01, random_state=0
        ).fit(X, y)
        tuned = GaussianProcessRegression(random_state=0).fit(X, y)
        assert tuned.log_marginal_likelihood_ >= fixed.log_marginal_likelihood_

    def test_subsamples_large_training_sets(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(scale=0.1, size=300)
        model = GaussianProcessRegression(max_training_points=50, random_state=0).fit(X, y)
        assert model.X_train_.shape[0] == 50

    def test_predict_one(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegression(random_state=0).fit(X, y)
        mean, std = model.predict_one(X[0])
        assert isinstance(mean, float) and std > 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegression().predict(np.zeros((1, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegression().fit(np.empty((0, 2)), np.empty(0))

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianProcessRegression().fit(rng.normal(size=(5, 2)), rng.normal(size=3))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GaussianProcessRegression(noise_variance=0.0)
