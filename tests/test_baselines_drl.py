"""Tests for the DRL baseline."""

import numpy as np
import pytest

from repro.baselines.base import ClusterState
from repro.baselines.drl import (
    NUM_ACTION_FEATURES,
    DRLScheduler,
    PolicyNetwork,
    ReinforceTrainer,
    action_features,
)
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator
from tests.conftest import make_job, make_running_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


class TestPolicyNetwork:
    def test_probabilities_sum_to_one(self, rng):
        policy = PolicyNetwork()
        features = rng.normal(size=(5, NUM_ACTION_FEATURES))
        probs = policy.probabilities(features)
        assert probs.shape == (5,)
        assert probs.sum() == pytest.approx(1.0)

    def test_greedy_selects_argmax(self, rng):
        policy = PolicyNetwork(weights=np.zeros(NUM_ACTION_FEATURES))
        policy.weights[0] = 0.0
        features = np.zeros((3, NUM_ACTION_FEATURES))
        features[2, 1] = 10.0
        policy.weights[1] = 1.0
        index, _ = policy.select(features, rng, greedy=True)
        assert index == 2

    def test_grad_log_prob_shape_and_direction(self, rng):
        policy = PolicyNetwork()
        features = rng.normal(size=(4, NUM_ACTION_FEATURES))
        grad = policy.grad_log_prob(features, 1)
        assert grad.shape == (NUM_ACTION_FEATURES,)
        # Moving along the gradient increases the chosen action's probability.
        before = policy.probabilities(features)[1]
        policy.update(grad, learning_rate=0.5)
        after = policy.probabilities(features)[1]
        assert after > before

    def test_invalid_weight_shape(self):
        with pytest.raises(ValueError):
            PolicyNetwork(weights=np.zeros(3))


class TestActionFeatures:
    def test_shape_and_finiteness(self, small_topology):
        job = make_job()
        state = _state({job.job_id: job}, small_topology)
        feats = action_features(job, 2, state)
        assert feats.shape == (NUM_ACTION_FEATURES,)
        assert np.all(np.isfinite(feats))

    def test_waiting_time_feature_grows(self, small_topology):
        job = make_job(arrival_time=0.0)
        early = action_features(job, 1, _state({job.job_id: job}, small_topology, now=0.0))
        late = action_features(job, 1, _state({job.job_id: job}, small_topology, now=300.0))
        assert late[3] > early[3]


class TestDRLScheduler:
    def test_launches_a_pending_job(self, small_topology):
        scheduler = DRLScheduler(seed=0, greedy=True)
        job = make_job(job_id="a")
        proposal = scheduler.on_job_arrival(job, _state({"a": job}, small_topology))
        # The untrained policy is uniform; it may choose the no-op, but if it
        # proposes something it must be a valid launch of the pending job.
        if proposal is not None:
            assert proposal.num_gpus("a") in scheduler.size_choices

    def test_never_preempts_running_jobs(self, small_topology):
        scheduler = DRLScheduler(seed=0, greedy=True)
        running = make_running_job(job_id="run", gpu_ids=(0, 1), local_batches=(64, 64))
        pending = make_job(job_id="wait", arrival_time=1.0)
        allocation = Allocation.from_job_map({"run": [(0, 64), (1, 64)]})
        proposal = scheduler.on_job_arrival(
            pending, _state({"run": running, "wait": pending}, small_topology, allocation, now=1.0)
        )
        if proposal is not None:
            assert proposal.gpus_of("run") == [0, 1]

    def test_no_feasible_action_returns_none(self, small_topology):
        scheduler = DRLScheduler(seed=0)
        running = make_running_job(job_id="run", gpu_ids=tuple(range(8)), local_batches=(16,) * 8)
        allocation = Allocation.from_job_map({"run": [(i, 16) for i in range(8)]})
        pending = make_job(job_id="wait", arrival_time=1.0)
        proposal = scheduler.on_job_arrival(
            pending, _state({"run": running, "wait": pending}, small_topology, allocation, now=1.0)
        )
        assert proposal is None

    def test_trajectory_recording(self, small_topology):
        scheduler = DRLScheduler(seed=0, greedy=False, record_trajectory=True)
        job = make_job(job_id="a")
        scheduler.on_job_arrival(job, _state({"a": job}, small_topology))
        assert len(scheduler.trajectory) == 1
        scheduler.reset_trajectory()
        assert scheduler.trajectory == []

    def test_table3_capabilities(self):
        caps = DRLScheduler().capabilities
        assert caps.strategy == "dynamic"
        assert not caps.allows_preemption
        assert caps.elastic_job_size
        assert not caps.elastic_batch_size

    def test_end_to_end(self, tiny_trace):
        result = ClusterSimulator(make_longhorn_cluster(8), DRLScheduler(seed=1), tiny_trace).run()
        assert not result.incomplete


class TestReinforceTrainer:
    def test_training_updates_policy(self):
        trainer = ReinforceTrainer(episodes=2, jobs_per_episode=3, num_gpus=8, seed=0)
        policy = trainer.train()
        assert len(trainer.history) == 2
        assert isinstance(policy, PolicyNetwork)
        # At least one episode should have produced non-zero weights.
        assert np.any(policy.weights != 0.0)
