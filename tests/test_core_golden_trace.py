"""Golden-trace regression: a pinned-seed ONES simulation never drifts silently.

The evolution operators are bit-exact by design (the batched engine is
differentially tested against the scalar reference), so a small pinned
simulation is fully deterministic.  This test replays it and compares
per-job completion metrics and the makespan against a checked-in JSON
fixture — any future operator change that silently alters trajectories
(an off-by-one in a fill round, a reordered RNG draw, a tie-break flip)
fails loudly here instead of surfacing as an unexplained benchmark
shift three PRs later.

If a change *intentionally* alters trajectories, regenerate the fixture
and call the change out in the PR:

    PYTHONPATH=src python -m tests.test_core_golden_trace --regen

Both operator engines (``batched_operators`` on and off) must match the
same fixture — the golden trace doubles as an end-to-end parity pin.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import generate_trace, run_single
from repro.workload.trace import TraceConfig

FIXTURE = Path(__file__).resolve().parent / "fixtures" / "golden_ones_trace.json"

#: Pinned scenario: small enough to replay in ~a second, busy enough to
#: exercise arrivals, preemption, elastic resizing and completions.
GOLDEN_NUM_GPUS = 8
GOLDEN_NUM_JOBS = 6
GOLDEN_SEED = 2021


def _simulate(batched: bool):
    config = ExperimentConfig(
        num_gpus=GOLDEN_NUM_GPUS,
        trace=TraceConfig(num_jobs=GOLDEN_NUM_JOBS, arrival_rate=1.0 / 30.0),
        seed=GOLDEN_SEED,
    )
    trace = generate_trace(config)
    scheduler = ONESScheduler(
        ONESConfig(evolution=EvolutionConfig(batched_operators=batched)),
        seed=GOLDEN_SEED,
    )
    return run_single(scheduler, trace, config)


def _snapshot(result) -> dict:
    """The JSON-serialisable trajectory summary the fixture pins.

    Floats round-trip exactly through JSON (shortest-repr), so equality
    below is bit-equality of the simulated trajectory.
    """
    return {
        "scenario": {
            "num_gpus": GOLDEN_NUM_GPUS,
            "num_jobs": GOLDEN_NUM_JOBS,
            "seed": GOLDEN_SEED,
        },
        "makespan": result.makespan,
        "events_processed": result.events_processed,
        "num_reconfigurations": result.num_reconfigurations,
        "incomplete": sorted(result.incomplete),
        "completed": {
            job_id: dict(sorted(metrics.items()))
            for job_id, metrics in sorted(result.completed.items())
        },
    }


@pytest.mark.parametrize("batched", [True, False], ids=["batched", "scalar"])
def test_golden_ones_trajectory(batched):
    if not FIXTURE.exists():  # pragma: no cover - only before first regen
        pytest.fail(
            f"golden fixture missing; generate it with "
            f"`PYTHONPATH=src python -m tests.test_core_golden_trace --regen`"
        )
    golden = json.loads(FIXTURE.read_text())
    snapshot = _snapshot(_simulate(batched))
    assert snapshot == golden, (
        "the pinned-seed ONES trajectory changed; if intentional, regenerate "
        "with `PYTHONPATH=src python -m tests.test_core_golden_trace --regen` "
        "and document the behaviour change in the PR"
    )


def main(argv):  # pragma: no cover - manual regeneration entry point
    if "--regen" not in argv:
        print(__doc__)
        return 1
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    snapshot = _snapshot(_simulate(batched=True))
    scalar = _snapshot(_simulate(batched=False))
    if snapshot != scalar:
        raise SystemExit(
            "batched and scalar trajectories disagree; fix the parity "
            "regression before regenerating the golden fixture"
        )
    FIXTURE.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
