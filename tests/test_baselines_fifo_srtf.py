"""Tests for the FIFO and SRTF reference schedulers."""

import pytest

from repro.baselines.base import ClusterState
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.srtf import SRTFScheduler
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator
from tests.conftest import make_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


class TestFIFO:
    def test_serves_in_arrival_order(self, small_topology):
        scheduler = FIFOScheduler()
        jobs = {
            "late": make_job(job_id="late", arrival_time=5.0, requested_gpus=2),
            "early": make_job(job_id="early", arrival_time=1.0, requested_gpus=2),
        }
        proposal = scheduler.on_job_arrival(jobs["late"], _state(jobs, small_topology, now=5.0))
        assert proposal.num_gpus("early") == 2
        assert proposal.num_gpus("late") == 2

    def test_head_of_line_blocking(self, small_topology):
        """Strict FIFO: a big job at the head blocks smaller later jobs."""
        scheduler = FIFOScheduler()
        jobs = {
            "big": make_job(job_id="big", arrival_time=0.0, requested_gpus=8),
            "small": make_job(job_id="small", arrival_time=1.0, requested_gpus=1),
        }
        # 4 GPUs already busy, so the 8-GPU head job cannot start.
        busy = Allocation.from_job_map({"running": [(i, 8) for i in range(4)]})
        jobs["running"] = make_job(job_id="running")
        jobs["running"].start_running(0.0, list(range(4)), [8] * 4)
        state = _state(jobs, small_topology, busy, now=2.0)
        proposal = scheduler.on_job_arrival(jobs["small"], state)
        assert proposal is None

    def test_fixed_job_size_capability(self):
        caps = FIFOScheduler().capabilities
        assert not caps.elastic_job_size
        assert not caps.elastic_batch_size
        assert not caps.allows_preemption

    def test_epoch_end_is_ignored(self, small_topology):
        scheduler = FIFOScheduler()
        job = make_job(job_id="a")
        assert scheduler.on_epoch_end(job, None, _state({"a": job}, small_topology)) is None

    def test_end_to_end(self, tiny_trace):
        result = ClusterSimulator(make_longhorn_cluster(8), FIFOScheduler(), tiny_trace).run()
        assert not result.incomplete


class TestSRTF:
    def test_prefers_shorter_jobs(self, small_topology):
        scheduler = SRTFScheduler()
        short = make_job(job_id="short", dataset_size=1000, base_epochs=2.0, requested_gpus=8)
        long = make_job(job_id="long", dataset_size=20000, base_epochs=20.0, requested_gpus=8)
        jobs = {"short": short, "long": long}
        proposal = scheduler.on_job_arrival(short, _state(jobs, small_topology))
        # Only one of them fits; it must be the short one.
        assert proposal.num_gpus("short") == 8
        assert proposal.num_gpus("long") == 0

    def test_preempts_long_job_for_short_arrival(self, small_topology):
        scheduler = SRTFScheduler()
        long = make_job(job_id="long", dataset_size=20000, base_epochs=20.0, requested_gpus=8)
        long.start_running(0.0, list(range(8)), [16] * 8)
        short = make_job(job_id="short", dataset_size=1000, base_epochs=2.0, requested_gpus=8, arrival_time=1.0)
        allocation = Allocation.from_job_map({"long": [(i, 16) for i in range(8)]})
        jobs = {"long": long, "short": short}
        proposal = scheduler.on_job_arrival(short, _state(jobs, small_topology, allocation, now=1.0))
        assert proposal is not None
        assert proposal.num_gpus("short") == 8
        assert proposal.num_gpus("long") == 0

    def test_allows_preemption_capability(self):
        assert SRTFScheduler().capabilities.allows_preemption

    def test_end_to_end(self, tiny_trace):
        result = ClusterSimulator(make_longhorn_cluster(8), SRTFScheduler(), tiny_trace).run()
        assert not result.incomplete
