"""Tests for the layered simulation engine: kernel guards, ledger, handlers.

Covers the guard paths the old monolithic simulator never had dedicated
tests for: the ``max_events`` cap, the time-goes-backwards
``RuntimeError``, stale ``EPOCH_END`` generation filtering, and
preemption through ``_apply_allocation`` with a ``None`` config.
"""

import numpy as np
import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.cluster.allocation import Allocation
from repro.cluster.events import Event, EventKind
from repro.jobs.job import Job
from repro.sim.kernel import EventHandler, SimulationKernel
from repro.sim.ledger import ProgressLedger
from repro.sim.profiling import SimProfile
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from tests.conftest import make_spec


class _CountingHandler(EventHandler):
    kind = EventKind.TIMER

    def __init__(self) -> None:
        self.handled = 0

    def handle(self, event: Event) -> None:
        self.handled += 1


def _kernel(max_time=1e9, max_events=1000, handlers=None, profile=None):
    return SimulationKernel(
        max_time=max_time,
        max_events=max_events,
        advance_hook=lambda t: None,
        done=lambda: False,
        handlers=handlers or {},
        profile=profile,
    )


class TestKernelGuards:
    def test_max_events_cap_stops_the_loop(self):
        handler = _CountingHandler()
        kernel = _kernel(max_events=5, handlers={EventKind.TIMER: handler})
        for i in range(20):
            kernel.push(Event(time=float(i), kind=EventKind.TIMER))
        assert kernel.run() == 5
        assert handler.handled == 5
        assert len(kernel.events) == 15  # the rest stay queued, unprocessed

    def test_max_time_guard_stops_before_handling(self):
        handler = _CountingHandler()
        kernel = _kernel(max_time=10.0, handlers={EventKind.TIMER: handler})
        kernel.push(Event(time=5.0, kind=EventKind.TIMER))
        kernel.push(Event(time=50.0, kind=EventKind.TIMER))
        assert kernel.run() == 1
        assert handler.handled == 1
        assert kernel.now == 5.0  # never advanced past the guard

    def test_time_goes_backwards_raises(self):
        kernel = _kernel()
        kernel.advance(100.0)
        with pytest.raises(RuntimeError, match="time went backwards"):
            kernel.advance(50.0)

    def test_tiny_backwards_drift_is_clamped(self):
        kernel = _kernel()
        kernel.advance(100.0)
        kernel.advance(100.0 - 1e-12)  # within tolerance: clamped, not fatal
        assert kernel.now == 100.0

    def test_simulator_advance_time_keeps_the_guard(self, small_topology):
        simulator = ClusterSimulator(
            small_topology, FIFOScheduler(), [make_spec(job_id="solo")]
        )
        simulator._advance_time(10.0)
        with pytest.raises(RuntimeError, match="time went backwards"):
            simulator._advance_time(5.0)

    def test_unknown_event_kind_is_ignored(self):
        kernel = _kernel()
        kernel.push(Event(time=1.0, kind=EventKind.RECONFIG_DONE))
        assert kernel.run() == 1  # processed (clock advanced), no handler

    def test_profile_records_phases(self):
        profile = SimProfile()
        handler = _CountingHandler()
        kernel = _kernel(handlers={EventKind.TIMER: handler}, profile=profile)
        kernel.push(Event(time=1.0, kind=EventKind.TIMER))
        kernel.run()
        payload = profile.as_dict()
        assert payload["events_timer"] == 1.0
        assert payload["handler_timer_seconds"] >= 0.0
        assert payload["advance_seconds"] >= 0.0


class TestStaleEpochEnds:
    def _armed_simulator(self, small_topology):
        spec = make_spec(job_id="solo", dataset_size=2000)
        simulator = ClusterSimulator(small_topology, FIFOScheduler(), [spec])
        simulator._handle_arrival(
            Event(time=0.0, kind=EventKind.JOB_ARRIVAL, job_id="solo")
        )
        return simulator, simulator.jobs["solo"]

    def test_stale_generation_is_dropped(self, small_topology):
        simulator, job = self._armed_simulator(small_topology)
        assert job.is_running
        stale = Event(
            time=0.0, kind=EventKind.EPOCH_END, job_id="solo",
            generation=job.generation - 1,
        )
        simulator._handle_epoch_end(stale)
        assert job.epochs_completed == 0  # dropped before any bookkeeping

    def test_current_generation_is_processed(self, small_topology):
        simulator, job = self._armed_simulator(small_topology)
        live = Event(
            time=0.0, kind=EventKind.EPOCH_END, job_id="solo",
            generation=job.generation,
        )
        simulator._handle_epoch_end(live)
        assert job.epochs_completed == 1

    def test_unknown_or_idle_job_is_ignored(self, small_topology):
        simulator, job = self._armed_simulator(small_topology)
        simulator._handle_epoch_end(
            Event(time=0.0, kind=EventKind.EPOCH_END, job_id="ghost", generation=0)
        )
        job.stop_running(simulator.now)
        simulator.ledger.pull(job)
        simulator._handle_epoch_end(
            Event(time=0.0, kind=EventKind.EPOCH_END, job_id="solo",
                  generation=job.generation)
        )
        assert job.epochs_completed == 0


class TestPreemptionViaApplyAllocation:
    def test_none_config_releases_the_job(self, small_topology):
        spec = make_spec(job_id="solo", dataset_size=2000)
        simulator = ClusterSimulator(small_topology, FIFOScheduler(), [spec])
        simulator._handle_arrival(
            Event(time=0.0, kind=EventKind.JOB_ARRIVAL, job_id="solo")
        )
        job = simulator.jobs["solo"]
        assert job.is_running
        assert simulator.ledger.rate_of("solo") > 0
        # An allocation without the job preempts it (config_of -> None).
        simulator._apply_allocation(Allocation.empty())
        assert not job.is_running
        assert job.gpu_ids == ()
        assert simulator.ledger.rate_of("solo") == 0.0
        assert simulator.ledger.resume_of("solo") == 0.0
        assert simulator.allocation == Allocation.empty()


class TestProgressLedger:
    def _running_job(self, job_id="j0", rate=100.0, now=0.0):
        job = Job(make_spec(job_id=job_id, dataset_size=2000))
        job.start_running(now, gpu_ids=[0], local_batches=[64])
        return job

    def test_advance_matches_scalar_job_advance(self):
        ledger = ProgressLedger()
        mirror = Job(make_spec(job_id="j0", dataset_size=2000))
        job = self._running_job()
        mirror.start_running(0.0, gpu_ids=[0], local_batches=[64])
        ledger.register(job, 0.0)
        ledger.pull(job)
        ledger.set_rate("j0", 123.456)
        ledger.set_resume("j0", 2.5, 0.0)
        last_progress = 0.0
        for t in (1.0, 2.5, 7.75, 7.75, 30.0):
            ledger.advance_to(t)
            # scalar reference: the historical _advance_time body
            start = max(last_progress, 2.5)
            duration = max(0.0, t - start)
            if duration > 0:
                mirror.advance(123.456 * duration, duration)
            last_progress = t
        ledger.materialize("j0")
        assert job.samples_processed == mirror.samples_processed
        assert job.effective_epochs == mirror.effective_epochs
        assert job.throughput_profile.count == mirror.throughput_profile.count
        assert job.throughput_profile.mean == mirror.throughput_profile.mean

    def test_materialize_is_lazy(self):
        ledger = ProgressLedger()
        job = self._running_job()
        ledger.register(job, 0.0)
        ledger.set_rate("j0", 10.0)
        ledger.advance_to(5.0)
        assert job.samples_processed == 0.0  # not yet materialized
        ledger.materialize("j0")
        assert job.samples_processed == 50.0

    def test_pull_after_external_mutation(self):
        ledger = ProgressLedger()
        job = self._running_job()
        ledger.register(job, 0.0)
        ledger.set_rate("j0", 10.0)
        ledger.advance_to(5.0)
        ledger.materialize("j0")
        job.samples_processed = 2000.0  # e.g. epoch-boundary snap
        ledger.pull(job)
        ledger.advance_to(6.0)
        ledger.materialize("j0")
        assert job.samples_processed == 2010.0

    def test_non_running_jobs_do_not_advance(self):
        ledger = ProgressLedger()
        job = Job(make_spec(job_id="idle", dataset_size=2000))
        ledger.register(job, 0.0)
        ledger.advance_to(100.0)
        ledger.materialize_all()
        assert job.samples_processed == 0.0

    def test_grows_past_initial_capacity(self):
        ledger = ProgressLedger(capacity=2)
        jobs = []
        for i in range(7):
            job = Job(make_spec(job_id=f"j{i}", dataset_size=2000))
            ledger.register(job, 0.0)
            jobs.append(job)
        assert len(ledger) == 7
        job = jobs[3]
        job.start_running(0.0, gpu_ids=[0], local_batches=[64])
        ledger.pull(job)
        ledger.set_rate("j3", 10.0)
        ledger.advance_to(2.0)
        ledger.materialize_all()
        assert job.samples_processed == 20.0
        assert all(j.samples_processed == 0.0 for j in jobs if j is not job)

    def test_duplicate_registration_rejected(self):
        ledger = ProgressLedger()
        job = Job(make_spec(job_id="dup"))
        ledger.register(job, 0.0)
        with pytest.raises(ValueError, match="already registered"):
            ledger.register(job, 0.0)


class TestProfiledSimulation:
    def test_collect_profile_lands_in_result(self, small_topology, tiny_trace):
        config = SimulationConfig(collect_profile=True)
        result = ClusterSimulator(
            small_topology, FIFOScheduler(), tiny_trace, config=config
        ).run()
        assert result.profile  # non-empty phase table
        assert result.profile["advance_seconds"] >= 0.0
        assert result.profile["events_job_arrival"] == len(tiny_trace)
        # round-trips through the serializable result
        from repro.sim.simulator import SimulationResult

        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.profile == result.profile

    def test_profile_off_by_default(self, small_topology, tiny_trace):
        result = ClusterSimulator(small_topology, FIFOScheduler(), tiny_trace).run()
        assert result.profile == {}


class TestOnlineStepping:
    def test_step_processes_one_event_at_a_time(self):
        handler = _CountingHandler()
        kernel = _kernel(handlers={EventKind.TIMER: handler})
        for t in (1.0, 2.0, 3.0):
            kernel.push(Event(time=t, kind=EventKind.TIMER))
        event = kernel.step()
        assert event is not None and event.time == 1.0
        assert handler.handled == 1
        assert kernel.now == 1.0
        assert len(kernel.events) == 2

    def test_step_returns_none_when_drained(self):
        kernel = _kernel()
        assert kernel.step() is None

    def test_step_respects_max_time_without_discarding(self):
        kernel = _kernel(max_time=5.0)
        kernel.push(Event(time=10.0, kind=EventKind.TIMER))
        assert kernel.step() is None
        # Unlike run(), the over-horizon event stays queued.
        assert len(kernel.events) == 1

    def test_step_respects_max_events(self):
        kernel = _kernel(max_events=1)
        kernel.push(Event(time=1.0, kind=EventKind.TIMER))
        kernel.push(Event(time=2.0, kind=EventKind.TIMER))
        assert kernel.step() is not None
        assert kernel.step() is None

    def test_run_until_is_strict(self):
        handler = _CountingHandler()
        kernel = _kernel(handlers={EventKind.TIMER: handler})
        for t in (1.0, 2.0, 3.0):
            kernel.push(Event(time=t, kind=EventKind.TIMER))
        processed = kernel.run_until(3.0)
        # Events at exactly the boundary stay queued: that strictness is
        # what lets an arrival injected at t sort against same-time
        # events by the deterministic (time, kind, counter) order.
        assert processed == 2
        assert handler.handled == 2
        assert len(kernel.events) == 1

    def test_inject_rejects_events_in_the_past(self):
        kernel = _kernel(handlers={EventKind.TIMER: _CountingHandler()})
        kernel.push(Event(time=10.0, kind=EventKind.TIMER))
        assert kernel.step() is not None
        with pytest.raises(RuntimeError, match="inject"):
            kernel.inject(Event(time=9.0, kind=EventKind.TIMER))

    def test_inject_accepts_present_and_future(self):
        kernel = _kernel(handlers={EventKind.TIMER: _CountingHandler()})
        kernel.push(Event(time=10.0, kind=EventKind.TIMER))
        kernel.step()
        kernel.inject(Event(time=10.0, kind=EventKind.TIMER))
        kernel.inject(Event(time=11.0, kind=EventKind.TIMER))
        assert len(kernel.events) == 2

    def test_interleaved_injection_matches_batch_schedule(self):
        """Stepping with mid-run injection == pushing everything upfront."""
        batch_handler = _CountingHandler()
        batch = _kernel(handlers={EventKind.TIMER: batch_handler})
        for t in (1.0, 2.0, 3.0, 4.0):
            batch.push(Event(time=t, kind=EventKind.TIMER))
        batch.run()

        live_handler = _CountingHandler()
        live = _kernel(handlers={EventKind.TIMER: live_handler})
        live.push(Event(time=1.0, kind=EventKind.TIMER))
        live.push(Event(time=2.0, kind=EventKind.TIMER))
        live.run_until(2.0)
        live.inject(Event(time=3.0, kind=EventKind.TIMER))
        live.inject(Event(time=4.0, kind=EventKind.TIMER))
        while live.step() is not None:
            pass
        assert live_handler.handled == batch_handler.handled
        assert live.events_processed == batch.events_processed
        assert live.now == batch.now
