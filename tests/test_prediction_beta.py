"""Tests for repro.prediction.beta."""

import numpy as np
import pytest

from repro.prediction.beta import BetaDistribution


class TestConstruction:
    def test_parameters_clamped_to_one(self):
        dist = BetaDistribution(0.2, 0.5)
        assert dist.alpha == 1.0
        assert dist.beta == 1.0

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            BetaDistribution(float("nan"), 2.0)
        with pytest.raises(ValueError):
            BetaDistribution(2.0, float("inf"))


class TestMoments:
    def test_mean(self):
        assert BetaDistribution(2, 8).mean == pytest.approx(0.2)

    def test_variance_positive(self):
        assert BetaDistribution(3, 5).variance > 0

    def test_std_is_sqrt_of_variance(self):
        dist = BetaDistribution(3, 5)
        assert dist.std == pytest.approx(np.sqrt(dist.variance))

    def test_mode_unimodal(self):
        dist = BetaDistribution(4, 6)
        assert dist.mode == pytest.approx(3 / 8)

    def test_mode_uniform_is_none(self):
        assert BetaDistribution(1, 1).mode is None


class TestQuantiles:
    def test_quantile_monotone(self):
        dist = BetaDistribution(3, 7)
        assert dist.quantile(0.1) < dist.quantile(0.5) < dist.quantile(0.9)

    def test_confidence_interval_contains_mean(self):
        dist = BetaDistribution(5, 5)
        low, high = dist.confidence_interval(0.9)
        assert low < dist.mean < high

    def test_wider_interval_for_higher_level(self):
        dist = BetaDistribution(5, 5)
        low90, high90 = dist.confidence_interval(0.9)
        low50, high50 = dist.confidence_interval(0.5)
        assert high90 - low90 > high50 - low50

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            BetaDistribution(2, 2).confidence_interval(1.5)


class TestSampling:
    def test_samples_in_open_interval(self, rng):
        dist = BetaDistribution(2, 5)
        samples = dist.sample(rng, size=500)
        assert np.all(samples > 0)
        assert np.all(samples < 1)

    def test_sample_mean_close_to_mean(self, rng):
        dist = BetaDistribution(4, 6)
        samples = dist.sample(rng, size=20_000)
        assert float(np.mean(samples)) == pytest.approx(dist.mean, abs=0.01)

    def test_scalar_sample(self, rng):
        value = BetaDistribution(2, 2).sample(rng)
        assert isinstance(value, float)

    def test_pdf_and_logpdf_consistent(self):
        dist = BetaDistribution(3, 4)
        x = 0.3
        assert np.log(dist.pdf(x)) == pytest.approx(dist.logpdf(x))
