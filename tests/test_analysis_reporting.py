"""Tests for repro.analysis.reporting."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    ascii_bar_chart,
    ascii_cdf,
    ascii_series,
    format_table,
    render_comparison,
)


class TestFormatTable:
    def test_renders_columns_and_rows(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "y"}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert text.count("\n") >= 3

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_explicit_columns_and_missing_cells(self):
        rows = [{"a": 1.0}]
        text = format_table(rows, columns=["a", "missing"])
        assert "missing" in text

    def test_scientific_notation_for_tiny_values(self):
        text = format_table([{"p": 5.2e-8}])
        assert "e-08" in text


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart({"ONES": 100.0, "Tiresias": 400.0})
        lines = chart.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_zero_values_do_not_crash(self):
        assert "0.00" in ascii_bar_chart({"a": 0.0})


class TestAsciiCdf:
    def test_tabulates_thresholds(self):
        x = np.array([1.0, 10.0, 100.0])
        cf = np.array([0.2, 0.6, 1.0])
        text = ascii_cdf({"ONES": (x, cf)}, thresholds=[5.0, 50.0, 500.0], label="jct")
        assert "jct" in text
        assert "ONES" in text

    def test_empty(self):
        assert ascii_cdf({}, thresholds=[1.0]) == "(no data)"


class TestAsciiSeries:
    def test_rows_per_x_value(self):
        text = ascii_series([16, 32], {"ONES": [100, 50], "DRL": [150, 80]}, x_label="gpus")
        assert "16" in text and "32" in text
        assert "ONES" in text and "DRL" in text


class TestRenderComparison:
    def test_includes_title_bars_and_improvements(self):
        text = render_comparison(
            "Average JCT",
            {"ONES": 245.0, "DRL": 335.0},
            unit="s",
            improvements={"DRL": 0.269},
        )
        assert "Average JCT" in text
        assert "ONES" in text
        assert "26.9%" in text
