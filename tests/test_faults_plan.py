"""Fault plans, profiles and configs: validation, round-trips, determinism.

The fault subsystem's reproducibility contract is the load-bearing part:
the same :class:`FaultConfig` must yield a bit-identical
:class:`FaultPlan` in any process, under any ``PYTHONHASHSEED`` — that
is what makes a faulted experiment cell a pure function of its spec.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster.events import Event, EventKind, EventQueue
from repro.faults import (
    FaultConfig,
    FaultInjection,
    FaultKind,
    FaultPlan,
    available_profiles,
    profile_table,
)
from repro.faults.plan import Outage, assemble_plan
from repro.faults.profiles import UnknownFaultProfileError

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestFaultInjection:
    def test_round_trip(self):
        injection = FaultInjection(12.5, FaultKind.GPU_DEGRADED, 3, factor=0.5)
        assert FaultInjection.from_dict(injection.to_dict()) == injection

    def test_kind_coercion_from_string(self):
        injection = FaultInjection(1.0, "node_down", 0)
        assert injection.kind is FaultKind.NODE_DOWN

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FaultInjection(-1.0, FaultKind.NODE_DOWN, 0)
        with pytest.raises(ValueError):
            FaultInjection(0.0, FaultKind.NODE_DOWN, -1)
        with pytest.raises(ValueError):
            FaultInjection(0.0, FaultKind.GPU_DEGRADED, 0, factor=0.0)
        with pytest.raises(ValueError):
            FaultInjection(0.0, FaultKind.GPU_DEGRADED, 0, factor=1.5)


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(
            (
                FaultInjection(100.0, FaultKind.NODE_DOWN, 1),
                FaultInjection(400.0, FaultKind.NODE_UP, 1),
                FaultInjection(50.0, FaultKind.GPU_DEGRADED, 0, factor=0.5),
            )
        )

    def test_canonical_time_ordering(self):
        plan = self._plan()
        assert [inj.time for inj in plan] == [50.0, 100.0, 400.0]

    def test_same_instant_down_before_up(self):
        plan = FaultPlan(
            (
                FaultInjection(10.0, FaultKind.NODE_UP, 0),
                FaultInjection(10.0, FaultKind.NODE_DOWN, 1),
            )
        )
        assert [inj.kind for inj in plan] == [FaultKind.NODE_DOWN, FaultKind.NODE_UP]

    def test_json_round_trip_and_key(self):
        plan = self._plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.plan_key() == plan.plan_key()
        assert FaultPlan().plan_key() != plan.plan_key()

    def test_save_load(self, tmp_path):
        path = self._plan().save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == self._plan()

    def test_counts(self):
        counts = self._plan().counts()
        assert counts == {"node_down": 1, "node_up": 1, "gpu_degraded": 1}

    def test_validate_rejects_out_of_range_node(self):
        with pytest.raises(ValueError, match="outside the cluster"):
            self._plan().validate(num_nodes=1)

    def test_validate_rejects_double_down(self):
        plan = FaultPlan(
            (
                FaultInjection(1.0, FaultKind.NODE_DOWN, 0),
                FaultInjection(2.0, FaultKind.NODE_DOWN, 0),
            )
        )
        with pytest.raises(ValueError, match="already down"):
            plan.validate(num_nodes=4)

    def test_validate_rejects_orphan_up(self):
        plan = FaultPlan((FaultInjection(1.0, FaultKind.NODE_UP, 0),))
        with pytest.raises(ValueError, match="without being down"):
            plan.validate(num_nodes=4)

    def test_validate_rejects_blackout(self):
        plan = FaultPlan(
            (
                FaultInjection(1.0, FaultKind.NODE_DOWN, 0),
                FaultInjection(2.0, FaultKind.NODE_DOWN, 1),
            )
        )
        with pytest.raises(ValueError, match="every node"):
            plan.validate(num_nodes=2)
        plan.validate(num_nodes=3)  # one survivor: fine


class TestAssemblePlan:
    def test_pairs_downs_with_ups(self):
        plan = assemble_plan(
            [Outage(0, 10.0, 20.0), Outage(1, 30.0, 45.0)], num_nodes=4
        )
        assert plan.counts() == {"node_down": 2, "node_up": 2, "gpu_degraded": 0}
        plan.validate(4)

    def test_capacity_floor_drops_excess_overlap(self):
        # Three overlapping outages on a 4-node cluster with a 50% cap:
        # only two may be down at once, the third outage is dropped.
        outages = [Outage(n, 10.0, 100.0) for n in range(3)]
        plan = assemble_plan(outages, num_nodes=4, max_down_fraction=0.5)
        assert plan.counts()["node_down"] == 2

    def test_always_leaves_one_node(self):
        outages = [Outage(n, 10.0, 100.0) for n in range(2)]
        plan = assemble_plan(outages, num_nodes=2, max_down_fraction=1.0)
        assert plan.counts()["node_down"] == 1

    def test_touching_handoff_counts_as_overlap(self):
        # NODE_DOWN sorts before NODE_UP at the same instant, so an
        # outage starting exactly when another ends transiently overlaps
        # it; admitting both on a 2-node cluster would be a blackout.
        outages = [Outage(0, 10.0, 100.0), Outage(1, 100.0, 200.0)]
        plan = assemble_plan(outages, num_nodes=2, max_down_fraction=0.5)
        assert plan.counts()["node_down"] == 1
        plan.validate(2)


class TestProfiles:
    HORIZON = 6 * 3600.0

    @pytest.mark.parametrize("profile", sorted(available_profiles()))
    def test_profiles_generate_valid_plans(self, profile):
        config = FaultConfig(profile=profile, seed=7, mtbf_hours=0.5, repair_minutes=10)
        plan = config.build_plan(num_nodes=4, horizon=self.HORIZON)
        plan.validate(4)
        assert len(plan) > 0

    @pytest.mark.parametrize("profile", sorted(available_profiles()))
    def test_same_seed_same_plan(self, profile):
        config = FaultConfig(profile=profile, seed=11, mtbf_hours=0.5, repair_minutes=10)
        first = config.build_plan(4, self.HORIZON)
        second = config.build_plan(4, self.HORIZON)
        assert first == second
        assert first.plan_key() == second.plan_key()

    def test_different_seeds_differ(self):
        base = FaultConfig(profile="mtbf", seed=1, mtbf_hours=0.5, repair_minutes=10)
        assert base.build_plan(4, self.HORIZON) != base.with_seed(2).build_plan(
            4, self.HORIZON
        )

    def test_stragglers_only_degrade(self):
        config = FaultConfig(profile="stragglers", seed=3, mtbf_hours=0.5)
        counts = config.build_plan(4, self.HORIZON).counts()
        assert counts["node_down"] == 0 and counts["node_up"] == 0
        assert counts["gpu_degraded"] > 0

    def test_maintenance_rolls_through_a_two_node_cluster(self):
        # Regression: a drain window as long as the interval used to
        # produce touching hand-offs, which the blackout validation
        # rejected on 2-node clusters.  The window is clamped below the
        # interval, so the rotation keeps rolling.
        config = FaultConfig(
            profile="maintenance",
            seed=7,
            maintenance_interval_hours=6.0,
            repair_minutes=360.0,
        )
        plan = config.build_plan(num_nodes=2, horizon=48 * 3600.0)
        plan.validate(2)
        assert plan.counts()["node_down"] >= 4

    def test_unknown_profile_raises(self):
        with pytest.raises(UnknownFaultProfileError):
            FaultConfig(profile="volcano").build_plan(4, self.HORIZON)

    def test_profile_table_lists_all(self):
        rows = profile_table()
        assert {row["profile"] for row in rows} == set(available_profiles())
        assert all(row["description"] for row in rows)


class TestFaultConfig:
    def test_disabled_detection(self):
        assert not FaultConfig().enabled
        assert not FaultConfig(profile="none").enabled
        assert FaultConfig(profile="mtbf").enabled
        assert FaultConfig(
            injections=(FaultInjection(1.0, FaultKind.NODE_DOWN, 0),)
        ).enabled

    def test_round_trip(self):
        config = FaultConfig(
            profile="rack",
            seed=9,
            rack_size=3,
            injections=(
                FaultInjection(5.0, FaultKind.NODE_DOWN, 1),
                FaultInjection(50.0, FaultKind.NODE_UP, 1),
            ),
        )
        assert FaultConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_explicit_injections_override_profile(self):
        config = FaultConfig(
            profile="mtbf",
            injections=(
                FaultInjection(5.0, FaultKind.NODE_DOWN, 1),
                FaultInjection(50.0, FaultKind.NODE_UP, 1),
            ),
        )
        plan = config.build_plan(4, 3600.0)
        assert len(plan) == 2

    def test_from_plan_file(self, tmp_path):
        plan = FaultPlan(
            (
                FaultInjection(5.0, FaultKind.NODE_DOWN, 0),
                FaultInjection(50.0, FaultKind.NODE_UP, 0),
            )
        )
        path = plan.save(tmp_path / "plan.json")
        config = FaultConfig.from_plan_file(path)
        assert config.enabled
        assert config.build_plan(2, 3600.0) == plan

    def test_config_key_changes_with_content(self):
        assert (
            FaultConfig(profile="mtbf", seed=1).config_key()
            != FaultConfig(profile="mtbf", seed=2).config_key()
        )

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(mtbf_hours=0.0)
        with pytest.raises(ValueError):
            FaultConfig(degrade_factor=0.0)
        with pytest.raises(ValueError):
            FaultConfig(max_down_fraction=1.5)
        with pytest.raises(ValueError):
            FaultConfig(lost_work_fraction=-0.1)


_PLAN_SNIPPET = """
import json
from repro.faults import FaultConfig
config = FaultConfig(profile={profile!r}, seed=13, mtbf_hours=0.5, repair_minutes=10)
plan = config.build_plan(8, 4 * 3600.0)
print(json.dumps(plan.to_dict(), sort_keys=True))
"""


class TestCrossProcessDeterminism:
    """Same config -> byte-identical plan regardless of PYTHONHASHSEED."""

    def _generate(self, profile: str, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        result = subprocess.run(
            [sys.executable, "-c", _PLAN_SNIPPET.format(profile=profile)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout

    @pytest.mark.parametrize("profile", ["mtbf", "rack"])
    def test_plan_identical_across_hash_seeds(self, profile):
        assert self._generate(profile, "0") == self._generate(profile, "31337")

    def test_in_process_matches_subprocess(self):
        config = FaultConfig(profile="mtbf", seed=13, mtbf_hours=0.5, repair_minutes=10)
        local = json.dumps(config.build_plan(8, 4 * 3600.0).to_dict(), sort_keys=True)
        assert self._generate("mtbf", "7").strip() == local


class TestEventQueueTieBreaks:
    """Deterministic ordering across the expanded EventKind enum."""

    def test_fault_kinds_appended_after_historical_kinds(self):
        # Appending (not renumbering) is what keeps every pre-fault
        # same-timestamp ordering — and hence every pinned trajectory —
        # bit-identical.
        assert [k.value for k in EventKind] == list(range(8))
        assert EventKind.TIMER < EventKind.NODE_DOWN
        assert EventKind.NODE_DOWN < EventKind.NODE_UP < EventKind.GPU_DEGRADED

    def test_same_timestamp_priority_order(self):
        queue = EventQueue()
        kinds = [
            EventKind.GPU_DEGRADED,
            EventKind.NODE_UP,
            EventKind.TIMER,
            EventKind.NODE_DOWN,
            EventKind.EPOCH_END,
            EventKind.JOB_ARRIVAL,
            EventKind.JOB_COMPLETION,
            EventKind.RECONFIG_DONE,
        ]
        for kind in kinds:
            queue.push(Event(time=42.0, kind=kind))
        popped = [queue.pop().kind for _ in range(len(kinds))]
        assert popped == sorted(kinds, key=int)

    def test_insertion_order_breaks_equal_kind_ties(self):
        queue = EventQueue()
        first = Event(time=1.0, kind=EventKind.NODE_DOWN, payload="first")
        second = Event(time=1.0, kind=EventKind.NODE_DOWN, payload="second")
        queue.push(first)
        queue.push(second)
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_fault_before_timer_ordering_is_stable(self):
        # A NODE_DOWN and a TIMER at the same instant: the timer fires
        # first (lower tie-break value), so interval schedulers observe
        # the pre-fault cluster one last time — pinned here so a future
        # renumbering cannot silently flip it.
        queue = EventQueue()
        queue.push(Event(time=5.0, kind=EventKind.NODE_DOWN))
        queue.push(Event(time=5.0, kind=EventKind.TIMER))
        assert queue.pop().kind is EventKind.TIMER
