"""Tests for repro.prediction.history."""

import pytest

from repro.prediction.features import NUM_FEATURES
from repro.prediction.history import HistoryStore, TrainingExample, examples_from_job
from tests.conftest import make_running_job


def _completed_job(job_id="done-1", epochs=5):
    job = make_running_job(job_id=job_id, dataset_size=1000, base_epochs=2.0, patience=2)
    for e in range(epochs):
        job.advance(1000, 2.0)
        job.complete_epoch(2.0 * (e + 1))
    job.mark_completed(2.0 * epochs)
    return job


class TestTrainingExample:
    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ValueError):
            TrainingExample(features=(1.0,), epochs_remaining=3.0)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            TrainingExample(features=tuple([0.0] * NUM_FEATURES), epochs_remaining=-1)


class TestExamplesFromJob:
    def test_one_example_per_epoch(self):
        job = _completed_job(epochs=6)
        examples = examples_from_job(job)
        assert len(examples) == 6

    def test_labels_count_down_to_zero(self):
        job = _completed_job(epochs=4)
        labels = [e.epochs_remaining for e in examples_from_job(job)]
        assert labels == [3.0, 2.0, 1.0, 0.0]

    def test_uncompleted_job_rejected(self):
        job = make_running_job()
        with pytest.raises(ValueError):
            examples_from_job(job)


class TestHistoryStore:
    def test_add_completed_job(self):
        store = HistoryStore(max_size=100, seed=0)
        added = store.add_completed_job(_completed_job())
        assert added == len(store)
        assert store.completed_jobs == 1

    def test_thinning_respects_max_size(self):
        store = HistoryStore(max_size=10, seed=0)
        for i in range(5):
            store.add_completed_job(_completed_job(job_id=f"j{i}", epochs=8))
        assert len(store) == 10
        assert store.completed_jobs == 5

    def test_as_arrays_shapes(self):
        store = HistoryStore(max_size=50, seed=0)
        store.add_completed_job(_completed_job(epochs=5))
        X, y = store.as_arrays()
        assert X.shape == (5, NUM_FEATURES)
        assert y.shape == (5,)

    def test_as_arrays_empty(self):
        X, y = HistoryStore().as_arrays()
        assert X.shape == (0, NUM_FEATURES)
        assert y.shape == (0,)

    def test_clear(self):
        store = HistoryStore(seed=0)
        store.add_completed_job(_completed_job())
        store.clear()
        assert len(store) == 0
        assert store.completed_jobs == 0

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            HistoryStore(max_size=0)
