"""Parity tests: the vectorised scoring engine vs the scalar reference.

The vectorised engine (``score_population``) must be *bit-compatible*
with the scalar path (``score_candidates``) on shared progress samples:
identical scores, identical argmin, identical top-K selection order —
across randomised rosters, genomes with idle GPUs, zero-progress jobs
and zero-throughput (infinite-score) candidates.
"""

import numpy as np
import pytest

from repro.cluster.topology import make_longhorn_cluster
from repro.core.operators import reorder
from repro.core.schedule import IDLE, Schedule, stack_genomes
from repro.core.scoring import (
    population_gpu_counts,
    probability_sample,
    sample_progress,
    score_candidates,
    score_population,
    select_top_k,
)
from repro.jobs.throughput import ThroughputModel, ThroughputTable
from repro.prediction.beta import BetaDistribution
from tests._core_helpers import make_jobs


def _workload(num_gpus, num_jobs, seed, idle_fraction=0.2, fresh_fraction=0.3):
    """Random jobs (some with zero progress), candidates (some idle GPUs)."""
    rng = np.random.default_rng(seed)
    jobs = make_jobs(num_jobs)
    for i, (job_id, job) in enumerate(jobs.items()):
        if rng.random() < fresh_fraction:
            continue  # never started: samples_processed == 0
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(int(rng.integers(500, 5000)), 10.0)
    topology = make_longhorn_cluster(num_gpus)
    model = ThroughputModel(topology)
    limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    candidates = []
    for _ in range(2 * num_gpus):
        genome = rng.integers(0, num_jobs, size=num_gpus).astype(np.int64)
        genome[rng.random(num_gpus) < idle_fraction] = IDLE
        candidates.append(reorder(Schedule(roster=roster, genome=genome)))
    table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
    progress = {
        job_id: float(rho)
        for job_id, rho in zip(roster, rng.uniform(0.01, 0.99, size=len(roster)))
    }
    return jobs, candidates, table, progress


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("num_gpus,num_jobs", [(8, 3), (16, 7), (16, 20)])
def test_scores_bit_identical(num_gpus, num_jobs, seed):
    jobs, candidates, table, progress = _workload(num_gpus, num_jobs, seed)
    scalar = score_candidates(candidates, jobs, progress, table.as_throughput_fn())
    vector = score_population(candidates, jobs, progress, table)
    assert np.array_equal(scalar, vector)
    assert int(np.argmin(scalar)) == int(np.argmin(vector))


@pytest.mark.parametrize("seed", range(3))
def test_top_k_order_identical(seed):
    jobs, candidates, table, progress = _workload(16, 6, seed)
    scalar_survivors = select_top_k(
        candidates, jobs, {}, table.as_throughput_fn(), k=8, rng=seed
    )
    vector_survivors = select_top_k(
        candidates, jobs, {}, None, k=8, rng=seed, table=table
    )
    assert [s.key() for s, _ in scalar_survivors] == [
        s.key() for s, _ in vector_survivors
    ]
    assert [score for _, score in scalar_survivors] == [
        score for _, score in vector_survivors
    ]


def test_probability_sample_identical():
    jobs, candidates, table, _ = _workload(8, 4, seed=11)
    distributions = {
        job_id: BetaDistribution(2.0, 5.0) for job_id in sorted(jobs)
    }
    best_scalar, score_scalar = probability_sample(
        candidates, jobs, distributions, table.as_throughput_fn(), rng=3
    )
    best_vector, score_vector = probability_sample(
        candidates, jobs, distributions, None, rng=3, table=table
    )
    assert best_scalar.key() == best_vector.key()
    assert score_scalar == score_vector


def test_zero_throughput_candidates_score_inf():
    """A placed job with history but zero throughput makes the score inf."""
    jobs = make_jobs(2)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i], [64])
        job.advance(1000, 5.0)
    roster = tuple(sorted(jobs))
    matrix = np.zeros((2, 5))
    matrix[0, :] = [0.0, 100.0, 150.0, 180.0, 200.0]  # job-0 is healthy
    table = ThroughputTable.from_matrix(roster, matrix)  # job-1 never runs
    progress = {job_id: 0.5 for job_id in roster}
    both = Schedule(roster=roster, genome=np.array([0, 0, 1, 1]))
    only_healthy = Schedule(roster=roster, genome=np.array([0, 0, 0, IDLE]))
    scalar = score_candidates(
        [both, only_healthy], jobs, progress, table.as_throughput_fn()
    )
    vector = score_population([both, only_healthy], jobs, progress, table)
    assert np.array_equal(scalar, vector)
    assert np.isinf(vector[0])
    assert np.isfinite(vector[1])
    # Selection must still rank the finite candidate first in both paths.
    survivors = select_top_k(
        [both, only_healthy], jobs, {}, None, k=2, rng=0, table=table
    )
    assert survivors[0][0].key() == only_healthy.key()


def test_zero_progress_jobs_cost_nothing():
    """Eq. 8: brand-new jobs contribute zero in both engines."""
    jobs = make_jobs(3)  # never started: samples_processed == 0
    num_gpus = 8
    topology = make_longhorn_cluster(num_gpus)
    model = ThroughputModel(topology)
    limits = {job_id: job.spec.base_batch for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
    candidate = Schedule(
        roster=roster, genome=np.array([0, 1, 2, IDLE, IDLE, IDLE, IDLE, IDLE])
    )
    progress = {job_id: 0.5 for job_id in roster}
    vector = score_population([candidate], jobs, progress, table)
    scalar = score_candidates([candidate], jobs, progress, table.as_throughput_fn())
    assert np.array_equal(scalar, vector)
    assert vector[0] == 0.0


def test_population_gpu_counts_matches_schedule_queries():
    rng = np.random.default_rng(7)
    jobs = make_jobs(5)
    roster = tuple(sorted(jobs))
    candidates = []
    for _ in range(10):
        genome = rng.integers(-1, 5, size=12).astype(np.int64)
        candidates.append(Schedule(roster=roster, genome=genome))
    counts = population_gpu_counts(stack_genomes(candidates), len(roster))
    for k, candidate in enumerate(candidates):
        for j, job_id in enumerate(roster):
            assert counts[k, j] == candidate.gpu_count(job_id)


def test_empty_roster_and_empty_population():
    counts = population_gpu_counts(np.full((3, 4), IDLE, dtype=np.int64), 0)
    assert counts.shape == (3, 0)
    table = ThroughputTable.from_matrix((), np.zeros((0, 5)))
    assert score_population([], {}, {}, table).shape == (0,)


def test_sample_progress_matches_sequential_scalar_draws():
    """One vectorised RNG call must reproduce the per-job scalar stream."""
    jobs = make_jobs(6)
    distributions = {
        job_id: BetaDistribution(1.0 + i, 2.0 + 3 * i)
        for i, job_id in enumerate(sorted(jobs))
    }
    # Drop some jobs from the distribution map to exercise the uniform prior.
    del distributions["job-2"], distributions["job-4"]
    batched = sample_progress(jobs, distributions, rng=123)
    reference_rng = np.random.default_rng(123)
    for job_id in jobs:
        dist = distributions.get(job_id, BetaDistribution(1.0, 1.0))
        assert batched[job_id] == dist.sample(reference_rng)


def test_fill_idle_gpus_table_path_matches_generic_path():
    """The count-based fill must pick exactly the moves of the generic path."""
    from dataclasses import replace

    from repro.core.operators import fill_idle_gpus
    from tests._core_helpers import make_context

    rng = np.random.default_rng(5)
    for num_gpus, num_jobs in [(8, 2), (8, 5), (16, 6)]:
        jobs = make_jobs(num_jobs)
        for i, job in enumerate(jobs.values()):
            if i % 3 == 0:
                continue
            job.start_running(0.0, [i % num_gpus], [64])
            job.advance(int(rng.integers(500, 4000)), 10.0)
        topology = make_longhorn_cluster(num_gpus)
        model = ThroughputModel(topology)
        limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
        roster = tuple(sorted(jobs))
        table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
        base_ctx = make_context(jobs, num_gpus=num_gpus, limits=limits)
        generic_ctx = replace(base_ctx, throughput_fn=table.as_throughput_fn())
        table_ctx = replace(base_ctx, throughput_fn=None, throughput_table=table)
        for _ in range(10):
            genome = rng.integers(0, num_jobs, size=num_gpus).astype(np.int64)
            genome[rng.random(num_gpus) < 0.5] = IDLE
            partial = Schedule(roster=roster, genome=genome)
            via_table = fill_idle_gpus(partial, table_ctx)
            via_generic = fill_idle_gpus(partial, generic_ctx)
            assert np.array_equal(via_table.genome, via_generic.genome)
