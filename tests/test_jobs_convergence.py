"""Tests for repro.jobs.convergence."""

import numpy as np
import pytest

from repro.jobs.convergence import ConvergenceProfile, LossCurveSimulator
from tests.conftest import make_profile


class TestProfileValidation:
    def test_target_above_max_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceProfile(
                base_epochs_to_target=5,
                target_accuracy=0.95,
                max_accuracy=0.9,
                initial_loss=2.0,
                final_loss=0.1,
                reference_batch=128,
                critical_batch=512,
            )

    def test_loss_ordering_enforced(self):
        with pytest.raises(ValueError):
            ConvergenceProfile(
                base_epochs_to_target=5,
                target_accuracy=0.8,
                max_accuracy=0.9,
                initial_loss=0.1,
                final_loss=0.2,
                reference_batch=128,
                critical_batch=512,
            )


class TestEpochPenalty:
    def test_no_penalty_below_critical(self):
        profile = make_profile(critical_batch=512)
        assert profile.epoch_penalty(256) == pytest.approx(1.0)
        assert profile.epoch_penalty(512) == pytest.approx(1.0)

    def test_penalty_grows_with_batch(self):
        profile = make_profile(critical_batch=512)
        assert profile.epoch_penalty(4096) > profile.epoch_penalty(1024) > 1.0

    def test_unscaled_lr_is_worse(self):
        profile = make_profile(critical_batch=512)
        assert profile.epoch_penalty(2048, lr_scaled=False) > profile.epoch_penalty(2048, lr_scaled=True)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            make_profile().epoch_penalty(0)

    def test_progress_is_inverse_of_penalty(self):
        profile = make_profile()
        batch = 2048
        assert profile.epoch_progress(batch) == pytest.approx(1.0 / profile.epoch_penalty(batch))


class TestAccuracyAndLoss:
    def test_accuracy_hits_target_at_base_epochs(self):
        profile = make_profile(base_epochs=8.0, target=0.8)
        assert profile.accuracy_at(8.0) == pytest.approx(0.8, rel=1e-6)

    def test_accuracy_monotone_and_bounded(self):
        profile = make_profile()
        values = [profile.accuracy_at(e) for e in np.linspace(0, 100, 30)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] <= profile.max_accuracy

    def test_loss_monotone_decreasing(self):
        profile = make_profile()
        values = [profile.loss_at(e) for e in np.linspace(0, 60, 20)]
        assert all(b <= a for a, b in zip(values, values[1:]))
        assert values[0] <= profile.initial_loss + 1e-9

    def test_epochs_to_target_grows_with_batch(self):
        profile = make_profile(critical_batch=512)
        assert profile.epochs_to_target(4096) > profile.epochs_to_target(256)

    def test_figure3_shape_more_gpus_slower_convergence(self):
        """Fig. 3: fixed local batch 256 with more GPUs converges slower."""
        profile = make_profile(critical_batch=512)
        epochs = 60
        curves = {
            c: profile.accuracy_curve(epochs, 256 * c, lr_scaled=False) for c in (1, 2, 4, 8)
        }
        at_epoch_30 = [curves[c][29] for c in (1, 2, 4, 8)]
        assert all(b <= a + 1e-12 for a, b in zip(at_epoch_30, at_epoch_30[1:]))
        assert curves[8][29] < curves[1][29]


class TestScalingSpikes:
    def test_no_spike_for_downscale_or_small_jump(self):
        profile = make_profile()
        assert profile.abrupt_scaling_spike(1024, 256) == 0.0
        assert profile.abrupt_scaling_spike(256, 512) == 0.0

    def test_spike_for_large_jump(self):
        profile = make_profile()
        assert profile.abrupt_scaling_spike(256, 4096) > 0.0

    def test_spike_grows_with_jump(self):
        profile = make_profile()
        assert profile.abrupt_scaling_spike(256, 8192) > profile.abrupt_scaling_spike(256, 2048)

    def test_setback_bounded_by_recovery(self):
        profile = make_profile()
        spike = profile.abrupt_scaling_spike(256, 8192)
        assert 0 < profile.spike_setback_epochs(spike) < profile.spike_recovery_epochs


class TestLossCurveSimulator:
    def test_figure13_abrupt_jump_causes_loss_spike(self):
        profile = make_profile(base_epochs=20)
        abrupt = LossCurveSimulator(profile)
        abrupt.run_schedule([(256, 30), (4096, 30)])
        fixed = LossCurveSimulator(profile)
        fixed.run_schedule([(256, 60)])
        # Right after the switch the abrupt curve is above the fixed curve.
        assert abrupt.losses[30] > fixed.losses[30]
        assert abrupt.losses[31] > abrupt.losses[29]

    def test_figure14_gradual_growth_stays_smooth(self):
        profile = make_profile(base_epochs=20)
        gradual = LossCurveSimulator(profile)
        gradual.run_schedule([(256, 30), (512, 1), (1024, 29), (2048, 1), (4096, 29)])
        diffs = np.diff(gradual.losses)
        # No epoch-to-epoch increase larger than a small tolerance.
        assert diffs.max() < 0.05

    def test_requires_set_batch_before_epoch(self):
        sim = LossCurveSimulator(make_profile())
        with pytest.raises(RuntimeError):
            sim.run_epoch()

    def test_accuracies_recorded(self):
        sim = LossCurveSimulator(make_profile())
        sim.run_schedule([(128, 5)])
        assert len(sim.accuracies) == 5
        assert sim.accuracies[-1] > sim.accuracies[0]
