"""Tests for repro.experiments.config and repro.experiments.runner."""

import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig, default_schedulers
from repro.experiments.runner import (
    generate_trace,
    run_comparison,
    run_scalability_sweep,
    run_single,
)
from repro.workload.trace import TraceConfig


def _fast_schedulers():
    """Cheap scheduler pair used to keep runner tests quick."""
    return {
        "ONES": lambda seed: ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=seed
        ),
        "Tiresias": lambda seed: TiresiasScheduler(),
    }


@pytest.fixture
def small_config():
    config = ExperimentConfig.small(num_gpus=8, num_jobs=4, seed=9)
    config.trace = TraceConfig(num_jobs=4, arrival_rate=1.0 / 10.0, convergence_patience=3)
    return config


class TestExperimentConfig:
    def test_defaults_match_paper_setup(self):
        config = ExperimentConfig()
        assert config.num_gpus == 64
        assert config.trace.num_jobs == 50
        assert set(config.scheduler_factories()) == {"ONES", "DRL", "Tiresias", "Optimus"}

    def test_default_schedulers_are_fresh_instances(self):
        factories = default_schedulers()
        a = factories["ONES"](1)
        b = factories["ONES"](1)
        assert a is not b

    def test_small_preset(self):
        config = ExperimentConfig.small(num_gpus=16, num_jobs=10)
        assert config.num_gpus == 16
        assert config.trace.num_jobs == 10

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_gpus=0)


class TestRunner:
    def test_generate_trace_is_deterministic(self, small_config):
        a = generate_trace(small_config)
        b = generate_trace(small_config)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.task for j in a] == [j.task for j in b]

    def test_run_single(self, small_config):
        trace = generate_trace(small_config)
        result = run_single(FIFOScheduler(), trace, small_config)
        assert result.scheduler_name == "FIFO"
        assert result.num_gpus == 8
        assert len(result.completed) == len(trace)

    def test_run_comparison_shares_trace(self, small_config):
        comparison = run_comparison(small_config, schedulers=_fast_schedulers())
        assert set(comparison.results) == {"ONES", "Tiresias"}
        for result in comparison.results.values():
            assert set(result.completed) == {j.job_id for j in comparison.trace}

    def test_comparison_averages_and_improvements(self, small_config):
        comparison = run_comparison(small_config, schedulers=_fast_schedulers())
        averages = comparison.averages("jct")
        assert set(averages) == {"ONES", "Tiresias"}
        improvements = comparison.improvements("ONES")
        assert set(improvements) == {"Tiresias"}
        relative = comparison.relative_jct("ONES")
        assert relative["ONES"] == pytest.approx(1.0)

    def test_improvements_unknown_reference(self, small_config):
        comparison = run_comparison(small_config, schedulers=_fast_schedulers())
        with pytest.raises(KeyError):
            comparison.improvements("SLAQ")

    def test_scalability_sweep(self, small_config):
        sweep = run_scalability_sweep(
            capacities=(8, 16), base_config=small_config, schedulers=_fast_schedulers()
        )
        assert set(sweep) == {8, 16}
        for capacity, comparison in sweep.items():
            assert comparison.config.num_gpus == capacity

    def test_scalability_sweep_preserves_every_config_field(self, small_config):
        """Sweeping capacity must carry ALL other config fields along.

        The sweep derives per-capacity configs with ``dataclasses.replace``
        so fields added to ExperimentConfig later are never silently
        dropped (the old code copied five fields by hand).
        """
        small_config.schedulers = _fast_schedulers()
        sweep = run_scalability_sweep(capacities=(8,), base_config=small_config)
        config = sweep[8].config
        assert config.trace == small_config.trace
        assert config.simulation is small_config.simulation
        assert config.seed == small_config.seed
        assert config.schedulers is small_config.schedulers
        assert set(sweep[8].results) == {"ONES", "Tiresias"}


class TestConfigSpecBridge:
    def test_to_spec_defaults_to_paper_schedulers(self, small_config):
        spec = small_config.to_spec()
        assert spec.schedulers == ("ONES", "DRL", "Tiresias", "Optimus")
        assert spec.capacities == (small_config.num_gpus,)
        assert spec.seeds == (small_config.seed,)
        assert spec.traces == (small_config.trace,)

    def test_to_spec_rejects_adhoc_factories(self, small_config):
        small_config.schedulers = _fast_schedulers()
        with pytest.raises(ValueError, match="ad-hoc"):
            small_config.to_spec()
        spec = small_config.to_spec(schedulers=("ONES", "Tiresias"))
        assert spec.schedulers == ("ONES", "Tiresias")
