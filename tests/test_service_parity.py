"""Golden parity: the online service reproduces offline runs bit-for-bit.

The service's determinism contract (see :mod:`repro.service`): a recorded
trace replayed through the live-submission path in virtual time yields
*exactly* the simulation an offline
:meth:`~repro.sim.simulator.ClusterSimulator.run` of the same trace
produces — same event count, same reconfigurations, float-identical
per-job metrics.  This is the regression net over the kernel's
``inject``/``step``/``run_until`` machinery and the simulator's online
mode: any drift in event ordering shows up here as a bit difference.
"""

import pytest

from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.registry import create_scheduler
from repro.service.engine import SchedulerService
from repro.service.schemas import ServiceConfig, TenantQuota
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator

HORIZON = 24 * 3600.0


def offline_run(trace, scheduler_name, num_gpus, seed):
    simulator = ClusterSimulator(
        make_longhorn_cluster(num_gpus),
        create_scheduler(scheduler_name, seed=seed),
        trace,
        SimulationConfig(max_time=HORIZON),
    )
    return simulator.run()


def online_run(trace, scheduler_name, num_gpus, seed):
    service = SchedulerService(
        ServiceConfig(
            num_gpus=num_gpus,
            scheduler=scheduler_name,
            seed=seed,
            mode="virtual",
            max_time=HORIZON,
            tenants=(TenantQuota(tenant="replay"),),
        )
    )
    decisions = service.replay_trace(trace, tenant="replay")
    return service, decisions, service.drain()


class TestGoldenParity:
    @pytest.mark.parametrize("scheduler_name", ["ONES", "Tiresias"])
    def test_service_replay_is_bit_identical(self, scheduler_name):
        trace = TraceGenerator(TraceConfig(num_jobs=20), seed=11).generate()
        offline = offline_run(trace, scheduler_name, 32, seed=5)
        _, decisions, online = online_run(trace, scheduler_name, 32, seed=5)

        assert all(d.status != "rejected" for d in decisions)
        # Bit-identical, not approximately equal: dict equality compares
        # every per-job float metric exactly.
        assert online.completed == offline.completed
        assert online.incomplete == offline.incomplete
        assert online.makespan == offline.makespan
        assert online.gpu_time_busy == offline.gpu_time_busy
        assert online.num_reconfigurations == offline.num_reconfigurations
        assert online.events_processed == offline.events_processed

    def test_parity_holds_with_queued_arrivals(self):
        # A burst of same-time arrivals exercises the (time, kind,
        # counter) tie-break: all five land at t=0 before any capacity
        # frees up.
        generator = TraceGenerator(TraceConfig(num_jobs=5), seed=3)
        trace = generator.generate_batch_arrival(at_time=0.0)
        offline = offline_run(trace, "ONES", 16, seed=2)
        _, _, online = online_run(trace, "ONES", 16, seed=2)
        assert online.completed == offline.completed
        assert online.events_processed == offline.events_processed


class TestOnlineSimulatorContract:
    def _online_sim(self):
        return ClusterSimulator(
            make_longhorn_cluster(16),
            create_scheduler("ONES", seed=1),
            trace=[],
            config=SimulationConfig(max_time=HORIZON),
            online=True,
        )

    def test_offline_requires_nonempty_trace(self):
        with pytest.raises(ValueError):
            ClusterSimulator(
                make_longhorn_cluster(16),
                create_scheduler("ONES", seed=1),
                trace=[],
            )

    def test_submit_requires_online_mode(self):
        trace = TraceGenerator(TraceConfig(num_jobs=2), seed=1).generate()
        simulator = ClusterSimulator(
            make_longhorn_cluster(16), create_scheduler("ONES", seed=1), trace
        )
        with pytest.raises(RuntimeError, match="online"):
            simulator.submit(trace[0])

    def test_submit_rejects_duplicate_ids(self):
        simulator = self._online_sim()
        trace = TraceGenerator(TraceConfig(num_jobs=1), seed=1).generate()
        simulator.submit(trace[0])
        with pytest.raises(ValueError, match="already submitted"):
            simulator.submit(trace[0])

    def test_submit_rejects_nonmonotone_arrivals(self):
        simulator = self._online_sim()
        trace = TraceGenerator(TraceConfig(num_jobs=2), seed=1).generate()
        late, early = trace[1], trace[0]
        simulator.submit(late)
        if early.arrival_time < late.arrival_time:
            with pytest.raises(ValueError, match="monotone"):
                simulator.submit(early)

    def test_closed_simulator_refuses_submissions(self):
        simulator = self._online_sim()
        simulator.close()
        trace = TraceGenerator(TraceConfig(num_jobs=1), seed=1).generate()
        with pytest.raises(RuntimeError, match="closed"):
            simulator.submit(trace[0])

    def test_open_online_run_is_never_done(self):
        simulator = self._online_sim()
        assert not simulator._all_done()
        simulator.close()
        assert simulator._all_done()  # no jobs, stream closed

    def test_start_requires_online_mode(self):
        trace = TraceGenerator(TraceConfig(num_jobs=1), seed=1).generate()
        simulator = ClusterSimulator(
            make_longhorn_cluster(16), create_scheduler("ONES", seed=1), trace
        )
        with pytest.raises(RuntimeError, match="online"):
            simulator.start()
