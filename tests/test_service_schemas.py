"""Boundary schemas of the scheduler service: round-trips and validation."""

import pytest

from repro.service.schemas import (
    JobSubmission,
    JobType,
    PlacementDecision,
    SchemaValidationError,
    ServiceConfig,
    TenantQuota,
)

CATALOG = ("cifar10-resnet18-20k", "sst2-bert-10k")


class TestJobSubmission:
    def test_gpu_demand_is_replicas_times_gpus(self):
        sub = JobSubmission(tenant="a", replicas=3, gpus_per_replica=2)
        assert sub.gpu_demand == 6

    def test_round_trips_through_json(self):
        sub = JobSubmission(tenant="a", job_type="cv", replicas=2,
                            gpus_per_replica=2, workload=CATALOG[0],
                            name="demo", arrival_time=12.5)
        clone = JobSubmission.from_dict(sub.to_dict())
        assert clone == sub

    def test_round_trip_without_optionals(self):
        sub = JobSubmission(tenant="a")
        clone = JobSubmission.from_dict(sub.to_dict())
        assert clone == sub
        assert clone.arrival_time is None and clone.spec is None

    def test_spec_payload_survives_round_trip(self):
        payload = {"job_id": "j-1", "model": "resnet18"}
        sub = JobSubmission(tenant="a", spec=payload)
        clone = JobSubmission.from_dict(sub.to_dict())
        assert clone.spec == payload

    def test_validate_accepts_good_submission(self):
        JobSubmission(tenant="a", job_type="nlp", replicas=2).validate(64, CATALOG)

    @pytest.mark.parametrize("kwargs,field", [
        (dict(tenant=""), "tenant"),
        (dict(tenant="   "), "tenant"),
        (dict(tenant="a", job_type="quantum"), "job_type"),
        (dict(tenant="a", replicas=0), "replicas"),
        (dict(tenant="a", replicas=-2), "replicas"),
        (dict(tenant="a", gpus_per_replica=0), "gpus_per_replica"),
        (dict(tenant="a", workload="no-such-template"), "workload"),
        (dict(tenant="a", arrival_time=-5.0), "arrival_time"),
    ])
    def test_validate_names_the_offending_field(self, kwargs, field):
        with pytest.raises(SchemaValidationError) as err:
            JobSubmission(**kwargs).validate(64, CATALOG)
        assert err.value.field == field

    def test_validate_rejects_demand_beyond_cluster(self):
        with pytest.raises(SchemaValidationError) as err:
            JobSubmission(tenant="a", replicas=9, gpus_per_replica=8).validate(64, CATALOG)
        assert "72" in str(err.value)

    def test_job_type_is_case_insensitive(self):
        sub = JobSubmission(tenant="a", job_type="CV")
        assert sub.job_type == JobType.CV.value
        sub.validate(64, CATALOG)


class TestPlacementDecision:
    def _decision(self, **overrides):
        base = dict(submission_id="sub-1", job_id="svc-1", tenant="a",
                    status="placed", virtual_time=10.0,
                    decision_latency_ms=1.5, gpu_ids=(0, 1),
                    local_batches=(128, 128), queue_depth=2)
        base.update(overrides)
        return PlacementDecision(**base)

    def test_round_trips_through_json(self):
        decision = self._decision()
        clone = PlacementDecision.from_dict(decision.to_dict())
        assert clone == decision

    def test_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            self._decision(status="maybe")

    def test_num_gpus_tracks_gpu_ids(self):
        assert self._decision().num_gpus == 2
        assert self._decision(status="queued", gpu_ids=()).num_gpus == 0


class TestTenantQuota:
    def test_round_trips_through_json(self):
        quota = TenantQuota(tenant="a", max_gpus=16, max_active=4, weight=2.0)
        assert TenantQuota.from_dict(quota.to_dict()) == quota

    def test_rejects_empty_tenant(self):
        with pytest.raises(ValueError):
            TenantQuota(tenant="")

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            TenantQuota(tenant="a", max_gpus=0)
        with pytest.raises(ValueError):
            TenantQuota(tenant="a", max_active=-1)


class TestServiceConfig:
    def test_round_trips_through_json(self):
        config = ServiceConfig(
            num_gpus=32, scheduler="ONES", seed=5, mode="wall",
            time_scale=120.0, max_time=3600.0,
            tenants=(TenantQuota(tenant="a", max_gpus=16),),
            scheduler_options={"population_size": 10},
        )
        clone = ServiceConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.config_key() == config.config_key()

    def test_config_key_is_content_addressed(self):
        assert ServiceConfig(seed=1).config_key() != ServiceConfig(seed=2).config_key()
        assert ServiceConfig(seed=1).config_key() == ServiceConfig(seed=1).config_key()

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ServiceConfig(mode="hybrid")

    def test_rejects_duplicate_tenants(self):
        with pytest.raises(ValueError):
            ServiceConfig(tenants=(TenantQuota(tenant="a"), TenantQuota(tenant="a")))

    def test_quota_of(self):
        quota = TenantQuota(tenant="a", max_gpus=8)
        config = ServiceConfig(tenants=(quota,))
        assert config.quota_of("a") == quota
        assert config.quota_of("b") is None
