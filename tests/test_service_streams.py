"""StreamHub: bounded per-tenant pub/sub with cursors and wakeups."""

from repro.service.streams import ALL_TENANTS, StreamHub


class TestStreamHub:
    def test_publish_and_read_with_cursor(self):
        hub = StreamHub()
        hub.publish("a", {"n": 1})
        hub.publish("a", {"n": 2})
        records, cursor = hub.read("a", 0)
        assert [r["n"] for r in records] == [1, 2]
        # Caught up: same cursor, no records.
        records, cursor2 = hub.read("a", cursor)
        assert records == [] and cursor2 == cursor
        hub.publish("a", {"n": 3})
        records, _ = hub.read("a", cursor)
        assert [r["n"] for r in records] == [3]

    def test_tenants_are_isolated(self):
        hub = StreamHub()
        hub.publish("a", {"n": 1})
        hub.publish("b", {"n": 2})
        a_records, _ = hub.read("a", 0)
        b_records, _ = hub.read("b", 0)
        assert [r["n"] for r in a_records] == [1]
        assert [r["n"] for r in b_records] == [2]

    def test_firehose_sees_all_tenants_in_order(self):
        hub = StreamHub()
        hub.publish("a", {"n": 1})
        hub.publish("b", {"n": 2})
        hub.publish("a", {"n": 3})
        records, _ = hub.read(ALL_TENANTS, 0)
        assert [r["n"] for r in records] == [1, 2, 3]

    def test_ring_drops_oldest_and_counts(self):
        hub = StreamHub(capacity=3)
        for n in range(5):
            hub.publish("a", {"n": n})
        records, _ = hub.read("a", 0)
        assert [r["n"] for r in records] == [2, 3, 4]
        assert hub.dropped("a") == 2

    def test_limit_bounds_one_read(self):
        hub = StreamHub()
        for n in range(10):
            hub.publish("a", {"n": n})
        records, cursor = hub.read("a", 0, limit=4)
        assert [r["n"] for r in records] == [0, 1, 2, 3]
        records, _ = hub.read("a", cursor, limit=4)
        assert [r["n"] for r in records] == [4, 5, 6, 7]

    def test_waiters_poked_on_publish(self):
        hub = StreamHub()
        pokes = []
        hub.add_waiter(lambda: pokes.append(1))
        hub.publish("a", {"n": 1})
        assert pokes == [1]
        hub.remove_waiter(next(iter(hub._waiters), None) or (lambda: None))
        # Removing an unknown waiter is a no-op.
        hub.remove_waiter(lambda: None)

    def test_unknown_tenant_reads_empty(self):
        hub = StreamHub()
        records, cursor = hub.read("ghost", 7)
        assert records == [] and cursor == 7
        assert hub.depth("ghost") == 0

    def test_stats_snapshot(self):
        hub = StreamHub(capacity=2)
        for n in range(3):
            hub.publish("a", {"n": n})
        stats = hub.stats()
        assert stats["a"] == {"published": 3, "retained": 2, "dropped": 1}
        assert stats[ALL_TENANTS]["published"] == 3
