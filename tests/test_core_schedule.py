"""Tests for repro.core.schedule (the genome of Fig. 1)."""

import numpy as np
import pytest

from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.core.schedule import IDLE, Schedule
from tests.conftest import make_job


@pytest.fixture
def roster():
    return ("job-a", "job-b", "job-c")


@pytest.fixture
def schedule(roster):
    # job-a on GPUs 0,1; job-b on GPU 2; GPU 3 idle.
    return Schedule(roster=roster, genome=np.array([0, 0, 1, IDLE]))


class TestConstruction:
    def test_empty(self, roster):
        sched = Schedule.empty(roster, 4)
        assert sched.idle_gpus() == [0, 1, 2, 3]
        assert sched.placed_jobs() == []
        assert sched.waiting_jobs() == list(roster)

    def test_duplicate_roster_rejected(self):
        with pytest.raises(ValueError):
            Schedule(roster=("a", "a"), genome=np.array([0]))

    def test_out_of_range_genome_rejected(self, roster):
        with pytest.raises(ValueError):
            Schedule(roster=roster, genome=np.array([5]))
        with pytest.raises(ValueError):
            Schedule(roster=roster, genome=np.array([-2]))

    def test_corrupt_genome_rejected_by_public_constructor(self, roster):
        """The validation gap the batched fast path must never open.

        ``Schedule.from_validated_genome`` deliberately skips
        ``__post_init__`` for engine-internal genomes; this test pins
        that every *public* construction of the same corrupt genomes is
        still rejected, so the fast path cannot leak into user-facing
        APIs unnoticed.
        """
        corrupt_out_of_roster = np.array([0, 1, len(roster), IDLE])
        corrupt_below_idle = np.array([0, 1, -7, IDLE])
        corrupt_shape = np.array([[0, 1], [2, IDLE]])
        for corrupt in (corrupt_out_of_roster, corrupt_below_idle, corrupt_shape):
            with pytest.raises(ValueError):
                Schedule(roster=roster, genome=corrupt)
        # The fast path itself performs no validation — that is its
        # contract — but its output for a *valid* genome is
        # indistinguishable from a publicly constructed schedule.
        valid = np.array([0, 1, 2, IDLE])
        fast = Schedule.from_validated_genome(roster, valid)
        assert fast == Schedule(roster=roster, genome=valid)
        assert hash(fast) == hash(Schedule(roster=roster, genome=valid))

    def test_from_validated_genome_copies_and_freezes(self, roster):
        source = np.array([0, 1, 2, IDLE])
        fast = Schedule.from_validated_genome(roster, source)
        source[0] = 2  # mutating the caller's array must not alias
        assert fast.job_id_at(0) == "job-a"
        with pytest.raises(ValueError):
            fast.genome[0] = 1  # frozen like the public constructor's

    def test_from_assignment(self, roster):
        sched = Schedule.from_assignment(roster, 4, {0: "job-b", 3: "job-a"})
        assert sched.job_id_at(0) == "job-b"
        assert sched.job_id_at(3) == "job-a"
        assert sched.job_id_at(1) is None

    def test_from_assignment_unknown_job(self, roster):
        with pytest.raises(KeyError):
            Schedule.from_assignment(roster, 4, {0: "mystery"})

    def test_from_allocation_drops_unknown_jobs(self, roster):
        alloc = Allocation(
            {0: WorkerAssignment("job-a", 8), 1: WorkerAssignment("finished", 8)}
        )
        sched = Schedule.from_allocation(roster, 4, alloc)
        assert sched.job_id_at(0) == "job-a"
        assert sched.job_id_at(1) is None


class TestQueries:
    def test_counts(self, schedule):
        assert schedule.gpu_count("job-a") == 2
        assert schedule.gpu_count("job-b") == 1
        assert schedule.gpu_count("job-c") == 0
        assert schedule.gpu_count("unknown") == 0
        assert schedule.gpu_counts() == {"job-a": 2, "job-b": 1}

    def test_gpus_of(self, schedule):
        assert schedule.gpus_of("job-a") == [0, 1]
        assert schedule.gpus_of("job-c") == []

    def test_placed_and_waiting(self, schedule):
        assert schedule.placed_jobs() == ["job-a", "job-b"]
        assert schedule.waiting_jobs() == ["job-c"]
        assert schedule.idle_gpus() == [3]


class TestBatchDerivation:
    def test_batch_capped_by_limit(self, schedule):
        job = make_job(job_id="job-a")
        batch = schedule.global_batch(job, limit=100)
        assert batch == 100

    def test_batch_capped_by_device_memory(self, schedule):
        job = make_job(job_id="job-a")
        huge_limit = 10**6
        batch = schedule.global_batch(job, limit=huge_limit)
        assert batch == min(2 * job.spec.max_local_batch, job.dataset_size)

    def test_batch_at_least_one_per_worker(self, schedule):
        job = make_job(job_id="job-a")
        assert schedule.global_batch(job, limit=1) == 2

    def test_unplaced_job_has_zero_batch(self, schedule):
        job = make_job(job_id="job-c")
        assert schedule.global_batch(job, limit=100) == 0
        assert schedule.local_batches(job, limit=100) == []

    def test_local_batches_sum_to_global(self, schedule):
        job = make_job(job_id="job-a")
        local = schedule.local_batches(job, limit=100)
        assert sum(local) == schedule.global_batch(job, limit=100)


class TestConversions:
    def test_to_allocation(self, schedule):
        jobs = {"job-a": make_job(job_id="job-a"), "job-b": make_job(job_id="job-b")}
        limits = {"job-a": 100, "job-b": 64}
        alloc = schedule.to_allocation(jobs, limits)
        assert alloc.num_gpus("job-a") == 2
        assert alloc.global_batch("job-a") == 100
        assert alloc.global_batch("job-b") == 64

    def test_reindexed_drops_missing_jobs(self, schedule):
        new = schedule.reindexed(("job-b", "job-d"))
        assert new.gpu_count("job-b") == 1
        assert new.gpu_count("job-a") == 0
        assert new.idle_gpus() == [0, 1, 3]

    def test_with_genome_preserves_roster(self, schedule, roster):
        new = schedule.with_genome(np.array([2, 2, 2, 2]))
        assert new.roster == roster
        assert new.gpu_count("job-c") == 4

    def test_equality_and_key(self, schedule, roster):
        clone = Schedule(roster=roster, genome=np.array([0, 0, 1, IDLE]))
        assert clone == schedule
        assert clone.key() == schedule.key()
        assert hash(clone) == hash(schedule)
