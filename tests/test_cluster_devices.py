"""Tests for repro.cluster.devices."""

import pytest

from repro.cluster.devices import GPUSpec, LONGHORN_NODE, NodeSpec, V100
from repro.utils.units import GB, TERA


class TestGPUSpec:
    def test_v100_constants(self):
        assert V100.name == "V100"
        assert V100.peak_flops == pytest.approx(15.7 * TERA)
        assert V100.memory_bytes == pytest.approx(16 * GB)

    def test_effective_flops_increases_with_batch(self):
        small = V100.effective_flops(1)
        large = V100.effective_flops(256)
        assert 0 < small < large < V100.peak_flops

    def test_effective_flops_bounded_by_achievable(self):
        assert V100.effective_flops(10_000) <= V100.peak_flops * V100.achievable_fraction

    def test_zero_batch_gives_zero(self):
        assert V100.effective_flops(0) == 0.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", peak_flops=-1, memory_bytes=16 * GB)
        with pytest.raises(ValueError):
            GPUSpec(
                name="bad",
                peak_flops=1 * TERA,
                memory_bytes=16 * GB,
                achievable_fraction=1.5,
            )


class TestNodeSpec:
    def test_longhorn_layout(self):
        assert LONGHORN_NODE.gpus_per_node == 4
        assert LONGHORN_NODE.gpu is V100
        assert LONGHORN_NODE.intra_node_bandwidth > LONGHORN_NODE.inter_node_bandwidth

    def test_invalid_node_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(
                name="bad",
                gpus_per_node=0,
                gpu=V100,
                intra_node_bandwidth=1 * GB,
                inter_node_bandwidth=1 * GB,
            )
