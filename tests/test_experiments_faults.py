"""Fault configs through the experiment layer: keys, grids, aggregation.

The cache-compatibility regression is the critical piece: a zero-fault
cell's content key must be *unchanged from PR 4* (pinned below as
literal hashes), so existing on-disk cell caches stay valid, while any
enabled fault plan must move the key.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.artifacts import SweepArtifact
from repro.experiments.orchestrator import Runner
from repro.experiments.spec import SCHEMA_VERSION, ExperimentSpec, RunSpec
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig

#: Content keys computed on the PR 4 build (before the fault subsystem
#: existed).  If either moves, every cached zero-fault cell on disk is
#: silently invalidated — that is a breaking change, not a refactor.
PR4_DEFAULT_ONES_KEY = "a4fb1415644fa9eb"
PR4_FIFO_16G_SEED7_KEY = "1841a3443dca2f4f"


def _small_trace():
    return TraceConfig(num_jobs=3, arrival_rate=0.1, convergence_patience=4)


def _fault():
    return FaultConfig(
        injections=(
            FaultInjection(60.0, FaultKind.NODE_DOWN, 0),
            FaultInjection(400.0, FaultKind.NODE_UP, 0),
        )
    )


class TestCellKeyCompatibility:
    def test_zero_fault_keys_unchanged_from_pr4(self):
        assert RunSpec(scheduler="ONES").cell_key() == PR4_DEFAULT_ONES_KEY
        assert (
            RunSpec(scheduler="FIFO", num_gpus=16, seed=7).cell_key()
            == PR4_FIFO_16G_SEED7_KEY
        )

    def test_disabled_fault_config_normalised_away(self):
        # An explicitly-disabled config is the *same cell* as no config:
        # same key, same serialized payload.
        clean = RunSpec(scheduler="ONES")
        disabled = RunSpec(
            scheduler="ONES",
            simulation=SimulationConfig(faults=FaultConfig(profile="none")),
        )
        assert disabled.simulation.faults is None
        assert disabled.cell_key() == clean.cell_key() == PR4_DEFAULT_ONES_KEY
        assert disabled.to_dict() == clean.to_dict()

    def test_enabled_fault_plan_moves_the_key(self):
        faulted = RunSpec(
            scheduler="ONES", simulation=SimulationConfig(faults=_fault())
        )
        assert faulted.cell_key() != PR4_DEFAULT_ONES_KEY
        # ...and different plans get different keys.
        other = RunSpec(
            scheduler="ONES",
            simulation=SimulationConfig(
                faults=FaultConfig(profile="mtbf", seed=1)
            ),
        )
        assert other.cell_key() != faulted.cell_key()

    def test_fault_seed_is_part_of_the_key(self):
        keys = {
            RunSpec(
                scheduler="ONES",
                simulation=SimulationConfig(
                    faults=FaultConfig(profile="mtbf", seed=seed)
                ),
            ).cell_key()
            for seed in (1, 2, 3)
        }
        assert len(keys) == 3

    def test_schema_bumped_to_v3(self):
        assert SCHEMA_VERSION == 3


class TestFaultAxis:
    def test_default_axis_expands_identically_to_pr4(self):
        spec = ExperimentSpec(schedulers=("ONES", "FIFO"), capacities=(16,))
        assert spec.faults == (None,)
        assert "faults" not in spec.to_dict()
        for cell in spec.expand():
            assert cell.faults is None

    def test_fault_axis_multiplies_cells_and_orders_clean_first(self):
        spec = ExperimentSpec(
            schedulers=("FIFO",),
            capacities=(8,),
            traces=(_small_trace(),),
            faults=(None, _fault()),
        )
        cells = spec.expand()
        assert spec.num_cells == len(cells) == 2
        assert cells[0].faults is None
        assert cells[1].faults == _fault()

    def test_axis_round_trips_through_json(self):
        spec = ExperimentSpec(
            schedulers=("FIFO",), faults=(None, FaultConfig(profile="rack", seed=5))
        )
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_disabled_axis_entries_fold_to_none(self):
        with pytest.raises(ValueError, match="duplicates"):
            ExperimentSpec(
                schedulers=("FIFO",), faults=(None, FaultConfig(profile="none"))
            )

    def test_axis_and_shared_simulation_faults_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            ExperimentSpec(
                schedulers=("FIFO",),
                simulation=SimulationConfig(faults=_fault()),
                faults=(None, FaultConfig(profile="mtbf")),
            )

    def test_shared_simulation_faults_hoisted_onto_axis(self):
        # Regression: a fault config on the shared simulation used to
        # leave spec.faults == (None,) while every cell carried the
        # config, so twin-keyed aggregations missed every run.
        spec = ExperimentSpec(
            schedulers=("FIFO",),
            capacities=(8,),
            traces=(_small_trace(),),
            simulation=SimulationConfig(faults=_fault()),
        )
        assert spec.faults == (_fault(),)
        assert spec.simulation.faults is None
        cells = spec.expand()
        assert cells[0].faults == _fault()
        sweep = Runner().run(spec)
        assert sweep.get("FIFO").recovery["node_down_events"] == 1.0
        assert sweep.mean_metric_table("jct")["FIFO"][8] > 0

    def test_constructors_add_the_clean_twin(self):
        spec = ExperimentSpec.comparison(
            schedulers=("FIFO", "SRTF"), num_gpus=8, faults=FaultConfig(profile="mtbf")
        )
        assert spec.faults == (None, FaultConfig(profile="mtbf"))
        assert ExperimentSpec.comparison(schedulers=("FIFO",)).faults == (None,)


class TestRecoveryAggregation:
    @pytest.fixture(scope="class")
    def sweep(self) -> SweepArtifact:
        spec = ExperimentSpec(
            schedulers=("FIFO", "SRTF"),
            capacities=(8,),
            seeds=(7,),
            traces=(_small_trace(),),
            faults=(None, _fault()),
        )
        return Runner().run(spec)

    def test_index_separates_twins(self, sweep):
        clean = sweep.get("FIFO", fault_index=0)
        faulted = sweep.get("FIFO", fault_index=1)
        assert clean.spec.faults is None
        assert faulted.spec.faults == _fault()
        assert clean.recovery == {}
        assert faulted.recovery["node_down_events"] == 1.0

    def test_mean_table_defaults_to_clean_slice(self, sweep):
        table = sweep.mean_metric_table("jct")
        clean = sweep.get("FIFO", fault_index=0)
        assert table["FIFO"][8] == pytest.approx(clean.mean("jct"))

    def test_fault_degradation_vs_twin(self, sweep):
        degradation = sweep.fault_degradation("jct")
        assert set(degradation) == {"FIFO", "SRTF"}
        for ratio in degradation.values():
            assert ratio > 0

    def test_recovery_table_rows(self, sweep):
        rows = sweep.recovery_table()
        assert len(rows) == 2
        for row in rows:
            assert "goodput" in row and "evictions" in row

    def test_artifact_round_trip_preserves_recovery(self, sweep):
        restored = SweepArtifact.from_json(sweep.to_json())
        assert restored.get("FIFO", fault_index=1).recovery == sweep.get(
            "FIFO", fault_index=1
        ).recovery

    def test_faulted_cells_cache_and_resume(self, tmp_path, sweep):
        spec = sweep.spec
        runner = Runner(cache_dir=tmp_path)
        runner.run(spec)
        assert runner.stats.executed_cells == 4
        resumed = Runner(cache_dir=tmp_path)
        resweep = resumed.run(spec, resume=True)
        assert resumed.stats.cached_cells == 4
        assert resumed.stats.executed_cells == 0
        assert resweep.to_json() == sweep.to_json()

    def test_to_comparisons_slices_by_fault(self, sweep):
        clean = sweep.to_comparisons(fault_index=0)[8]
        faulted = sweep.to_comparisons(fault_index=1)[8]
        assert set(clean.results) == {"FIFO", "SRTF"}
        assert faulted.results["FIFO"].faults["node_down_events"] == 1.0


class TestProcessPoolParityUnderFaults:
    def test_pool_artifacts_bit_identical_to_serial(self):
        spec = ExperimentSpec(
            schedulers=("FIFO", "Tiresias"),
            capacities=(8,),
            seeds=(7,),
            traces=(_small_trace(),),
            faults=(None, FaultConfig(profile="mtbf", seed=3, mtbf_hours=0.2,
                                      repair_minutes=5)),
        )
        serial = Runner(backend="serial").run(spec)
        pooled = Runner(backend="process", workers=2).run(spec)
        assert serial.to_json() == pooled.to_json()
