"""Tests for repro.scaling.coordinator (checkpoint-free migration, Fig. 12)."""

import pytest

from repro.jobs.model_zoo import get_model
from repro.scaling.agent import AgentState, ScalingAgent
from repro.scaling.coordinator import MigrationCoordinator


@pytest.fixture
def coordinator():
    return MigrationCoordinator()


class TestPlanAddWorkers:
    def test_plan_structure(self, coordinator):
        plan = coordinator.plan_add_workers(
            "job-a", get_model("resnet50"), previous_gpus=[0, 1], new_gpus=[2, 3]
        )
        names = [s.name for s in plan.steps]
        assert names == [
            "initialize_new_workers",
            "drain_current_step",
            "reconnect_topology",
            "resize_buffers",
            "broadcast_parameters",
        ]

    def test_new_worker_init_is_overlapped(self, coordinator):
        plan = coordinator.plan_add_workers(
            "job-a", get_model("vgg16"), previous_gpus=[0], new_gpus=[1]
        )
        init = plan.steps[0]
        assert init.overlapped
        # Training pauses only after the new workers are ready.
        assert plan.training_paused_at >= init.end - 1e-9

    def test_pause_is_much_shorter_than_makespan(self, coordinator):
        """The overlap is the point: visible pause << total migration work."""
        plan = coordinator.plan_add_workers(
            "job-a", get_model("vgg16"), previous_gpus=[0], new_gpus=[1, 2, 3]
        )
        assert plan.total_pause < plan.makespan
        assert plan.total_pause < 3.0

    def test_step_times_are_contiguous_after_pause(self, coordinator):
        plan = coordinator.plan_add_workers(
            "job-a", get_model("resnet50"), previous_gpus=[0], new_gpus=[1]
        )
        non_overlapped = [s for s in plan.steps if not s.overlapped]
        for a, b in zip(non_overlapped, non_overlapped[1:]):
            assert b.start == pytest.approx(a.end)

    def test_requires_previous_and_new_workers(self, coordinator):
        model = get_model("resnet50")
        with pytest.raises(ValueError):
            coordinator.plan_add_workers("j", model, previous_gpus=[], new_gpus=[1])
        with pytest.raises(ValueError):
            coordinator.plan_add_workers("j", model, previous_gpus=[0], new_gpus=[])

    def test_overlapping_worker_sets_rejected(self, coordinator):
        with pytest.raises(ValueError, match="both previous and new"):
            coordinator.plan_add_workers("j", get_model("resnet50"), [0, 1], [1, 2])


class TestPlanResize:
    def test_resize_plan_has_no_broadcast(self, coordinator):
        plan = coordinator.plan_resize("job-a", get_model("resnet50"), gpus=[0, 1])
        assert "broadcast_parameters" not in [s.name for s in plan.steps]
        assert plan.total_pause > 0

    def test_resize_requires_workers(self, coordinator):
        with pytest.raises(ValueError):
            coordinator.plan_resize("job-a", get_model("resnet50"), gpus=[])


class TestExecutePlan:
    def test_agents_driven_through_protocol(self, coordinator):
        model = get_model("resnet50")
        plan = coordinator.plan_add_workers("job-a", model, previous_gpus=[0], new_gpus=[1])
        agents = {0: ScalingAgent(0, "job-a"), 1: ScalingAgent(1, "job-a")}
        agents[0].load_job(0.0, 64, 0.1, [0])
        agents[0].start_training(0.0)
        coordinator.execute_plan(
            plan,
            agents,
            new_local_batches={0: 64, 1: 64},
            new_learning_rate=0.2,
            new_topology=[0, 1],
        )
        assert agents[0].is_training and agents[1].is_training
        assert agents[0].peer_gpus == (0, 1)
        assert not agents[0].training_was_stopped_during_scaling()
        assert AgentState.BROADCASTING in agents[0].state_sequence()
