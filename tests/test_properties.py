"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.core.schedule import IDLE, Schedule
from repro.core.operators import reorder, uniform_crossover
from repro.jobs.convergence import ConvergenceProfile
from repro.jobs.lr_scaling import linear_scaled_lr
from repro.jobs.throughput import split_batch
from repro.prediction.beta import BetaDistribution
from repro.utils.stats import cumulative_frequency, summarize

# --- strategies -----------------------------------------------------------------------------

batches = st.integers(min_value=0, max_value=100_000)
workers = st.integers(min_value=1, max_value=64)
positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def genomes(draw):
    """A roster plus a random genome over it."""
    num_jobs = draw(st.integers(min_value=1, max_value=6))
    num_gpus = draw(st.integers(min_value=1, max_value=24))
    roster = tuple(f"job-{i}" for i in range(num_jobs))
    genome = draw(
        st.lists(
            st.integers(min_value=IDLE, max_value=num_jobs - 1),
            min_size=num_gpus,
            max_size=num_gpus,
        )
    )
    return roster, np.asarray(genome, dtype=np.int64)


@st.composite
def convergence_profiles(draw):
    target = draw(st.floats(min_value=0.3, max_value=0.9))
    max_acc = draw(st.floats(min_value=target + 0.02, max_value=0.99))
    initial_loss = draw(st.floats(min_value=0.5, max_value=10.0))
    final_loss = draw(st.floats(min_value=0.01, max_value=initial_loss * 0.5))
    # The critical batch (safe horizon with LR scaling) is never smaller
    # than the batch the job was tuned for.
    reference_batch = draw(st.integers(min_value=1, max_value=1024))
    critical_batch = draw(st.integers(min_value=reference_batch, max_value=8192))
    return ConvergenceProfile(
        base_epochs_to_target=draw(st.floats(min_value=1.0, max_value=100.0)),
        target_accuracy=target,
        max_accuracy=max_acc,
        initial_loss=initial_loss,
        final_loss=final_loss,
        reference_batch=reference_batch,
        critical_batch=critical_batch,
    )


# --- split_batch ------------------------------------------------------------------------------


class TestSplitBatchProperties:
    @given(batches, workers)
    def test_total_preserved_and_balanced(self, global_batch, num_workers):
        parts = split_batch(global_batch, num_workers)
        assert sum(parts) == global_batch
        assert len(parts) == num_workers
        assert max(parts) - min(parts) <= 1
        assert all(p >= 0 for p in parts)

    @given(batches, workers)
    def test_descending_order(self, global_batch, num_workers):
        parts = split_batch(global_batch, num_workers)
        assert parts == sorted(parts, reverse=True)


# --- schedule genome ---------------------------------------------------------------------------


class TestScheduleProperties:
    @given(genomes())
    def test_counts_sum_to_busy_gpus(self, data):
        roster, genome = data
        schedule = Schedule(roster=roster, genome=genome)
        counts = schedule.gpu_counts()
        assert sum(counts.values()) == int(np.count_nonzero(genome != IDLE))
        assert len(schedule.idle_gpus()) + sum(counts.values()) == schedule.num_gpus

    @given(genomes())
    def test_reorder_preserves_counts_and_packs(self, data):
        roster, genome = data
        schedule = Schedule(roster=roster, genome=genome)
        packed = reorder(schedule)
        assert packed.gpu_counts() == schedule.gpu_counts()
        # After reorder, each job occupies a contiguous block of GPUs.
        for job_id in packed.placed_jobs():
            gpus = packed.gpus_of(job_id)
            assert gpus == list(range(gpus[0], gpus[0] + len(gpus)))

    @given(genomes(), genomes())
    def test_crossover_children_only_contain_parent_genes(self, data_a, data_b):
        roster_a, genome_a = data_a
        _, genome_b = data_b
        # Make the second parent compatible with the first.
        size = len(genome_a)
        genome_b = np.resize(genome_b, size)
        genome_b = np.clip(genome_b, IDLE, len(roster_a) - 1)
        parent_a = Schedule(roster=roster_a, genome=genome_a)
        parent_b = Schedule(roster=roster_a, genome=genome_b)
        child1, child2 = uniform_crossover(parent_a, parent_b, rng=0)
        for gpu in range(size):
            parents = {int(genome_a[gpu]), int(genome_b[gpu])}
            assert int(child1.genome[gpu]) in parents
            assert int(child2.genome[gpu]) in parents
            # Together the children use exactly the parents' genes.
            assert {int(child1.genome[gpu]), int(child2.genome[gpu])} == parents

    @given(genomes())
    def test_reindex_to_same_roster_is_identity(self, data):
        roster, genome = data
        schedule = Schedule(roster=roster, genome=genome)
        assert schedule.reindexed(roster) == schedule


# --- allocation --------------------------------------------------------------------------------


@st.composite
def allocations(draw):
    num_gpus = draw(st.integers(min_value=1, max_value=32))
    num_jobs = draw(st.integers(min_value=1, max_value=5))
    mapping = {}
    for gpu in range(num_gpus):
        if draw(st.booleans()):
            job = draw(st.integers(min_value=0, max_value=num_jobs - 1))
            batch = draw(st.integers(min_value=1, max_value=512))
            mapping[gpu] = WorkerAssignment(f"job-{job}", batch)
    return Allocation(mapping), num_gpus


class TestAllocationProperties:
    @given(allocations())
    def test_job_views_are_consistent(self, data):
        alloc, num_gpus = data
        used = set(alloc.used_gpus())
        free = set(alloc.free_gpus(range(num_gpus)))
        assert used | free == set(range(num_gpus))
        assert used & free == set()
        total_batch = sum(alloc.global_batch(j) for j in alloc.jobs())
        assert total_batch == sum(b for _, b in alloc.as_dict().values())
        assert sum(alloc.num_gpus(j) for j in alloc.jobs()) == len(alloc)

    @given(allocations())
    def test_changed_jobs_is_symmetric_and_reflexive(self, data):
        alloc, _ = data
        assert alloc.changed_jobs(alloc) == set()
        other = Allocation.empty()
        assert alloc.changed_jobs(other) == other.changed_jobs(alloc) == alloc.jobs()


# --- convergence model ----------------------------------------------------------------------------


class TestConvergenceProperties:
    @settings(max_examples=50)
    @given(convergence_profiles(), st.integers(min_value=1, max_value=65536))
    def test_penalty_at_least_one_and_monotone_in_batch(self, profile, batch):
        assert profile.epoch_penalty(batch) >= 1.0
        assert profile.epoch_penalty(batch * 2) >= profile.epoch_penalty(batch)
        assert profile.epoch_penalty(batch, lr_scaled=False) >= profile.epoch_penalty(batch)

    @settings(max_examples=50)
    @given(convergence_profiles(), st.floats(min_value=0, max_value=500))
    def test_accuracy_bounded_and_loss_above_final(self, profile, epochs):
        acc = profile.accuracy_at(epochs)
        assert 0.0 <= acc <= profile.max_accuracy
        assert profile.loss_at(epochs) >= profile.final_loss - 1e-12

    @settings(max_examples=50)
    @given(
        convergence_profiles(),
        st.integers(min_value=1, max_value=8192),
        st.integers(min_value=1, max_value=8192),
    )
    def test_spike_only_for_increases(self, profile, old, new):
        spike = profile.abrupt_scaling_spike(old, new)
        assert spike >= 0.0
        if new <= 2 * old:
            assert spike == 0.0


# --- misc invariants ----------------------------------------------------------------------------------


class TestMiscProperties:
    @given(st.floats(min_value=1e-4, max_value=10), st.integers(1, 4096), st.integers(1, 4096))
    def test_linear_lr_scaling_is_proportional(self, lr, base, new):
        scaled = linear_scaled_lr(lr, base, new)
        assert scaled == pytest.approx(lr * new / base)

    @given(st.floats(min_value=1, max_value=50), st.floats(min_value=1, max_value=50))
    def test_beta_mean_between_zero_and_one(self, alpha, beta):
        dist = BetaDistribution(alpha, beta)
        assert 0.0 < dist.mean < 1.0
        low, high = dist.confidence_interval(0.9)
        assert 0.0 <= low <= high <= 1.0

    @given(st.lists(positive_floats, min_size=1, max_size=200))
    def test_summarize_bounds(self, values):
        stats = summarize(values)
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.maximum
        # Allow a whisker of floating-point error on the mean.
        tolerance = 1e-9 * max(abs(stats.minimum), abs(stats.maximum), 1.0)
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance

    @given(st.lists(positive_floats, min_size=1, max_size=200))
    def test_cumulative_frequency_monotone(self, values):
        x, cf = cumulative_frequency(values, num_points=64)
        assert np.all(np.diff(cf) >= -1e-12)
        assert cf[-1] == pytest.approx(1.0)
