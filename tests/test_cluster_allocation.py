"""Tests for repro.cluster.allocation."""

import pytest

from repro.cluster.allocation import Allocation, WorkerAssignment


class TestWorkerAssignment:
    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            WorkerAssignment("job-a", 0)

    def test_rejects_empty_job_id(self):
        with pytest.raises(ValueError):
            WorkerAssignment("", 8)


class TestAllocationBasics:
    def test_empty(self):
        alloc = Allocation.empty()
        assert len(alloc) == 0
        assert alloc.jobs() == set()
        assert alloc.free_gpus(range(4)) == [0, 1, 2, 3]

    def test_job_views(self, simple_allocation):
        assert simple_allocation.gpus_of("job-a") == [0, 1]
        assert simple_allocation.global_batch("job-a") == 128
        assert simple_allocation.num_gpus("job-b") == 2
        assert simple_allocation.jobs() == {"job-a", "job-b"}
        assert simple_allocation.used_gpus() == [0, 1, 2, 3]
        assert simple_allocation.free_gpus(range(6)) == [4, 5]

    def test_config_of(self, simple_allocation):
        config = simple_allocation.config_of("job-a")
        assert config.gpu_ids == (0, 1)
        assert config.local_batches == (64, 64)
        assert config.global_batch == 128
        assert config.num_gpus == 2
        assert simple_allocation.config_of("missing") is None

    def test_from_job_map_rejects_shared_gpu(self):
        with pytest.raises(ValueError, match="assigned to both"):
            Allocation.from_job_map({"a": [(0, 8)], "b": [(0, 8)]})

    def test_worker_on(self, simple_allocation):
        assert simple_allocation.worker_on(0).job_id == "job-a"
        assert simple_allocation.worker_on(5) is None


class TestAllocationComparison:
    def test_equality_and_hash(self, simple_allocation):
        clone = Allocation(
            {g: WorkerAssignment(j, b) for g, (j, b) in simple_allocation.as_dict().items()}
        )
        assert clone == simple_allocation
        assert hash(clone) == hash(simple_allocation)

    def test_changed_jobs_detects_batch_change(self, simple_allocation):
        modified = dict(simple_allocation.as_dict())
        modified[0] = ("job-a", 128)
        other = Allocation.from_job_map(
            {
                "job-a": [(0, 128), (1, 64)],
                "job-b": [(2, 32), (3, 32)],
            }
        )
        assert simple_allocation.changed_jobs(other) == {"job-a"}

    def test_changed_jobs_detects_removal(self, simple_allocation):
        other = Allocation.from_job_map({"job-a": [(0, 64), (1, 64)]})
        assert simple_allocation.changed_jobs(other) == {"job-b"}

    def test_changed_jobs_empty_for_identical(self, simple_allocation):
        assert simple_allocation.changed_jobs(simple_allocation) == set()


class TestValidation:
    def test_gpu_out_of_range(self, simple_allocation):
        with pytest.raises(ValueError, match="outside the cluster"):
            simple_allocation.validate(num_gpus=2)

    def test_local_batch_limit(self, simple_allocation):
        with pytest.raises(ValueError, match="exceeds its device limit"):
            simple_allocation.validate(num_gpus=8, max_local_batch={"job-a": 32})

    def test_valid_passes(self, simple_allocation):
        simple_allocation.validate(num_gpus=8, max_local_batch={"job-a": 64, "job-b": 32})

    def test_utilization(self, simple_allocation):
        assert simple_allocation.utilization(8) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            simple_allocation.utilization(0)
