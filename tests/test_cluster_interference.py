"""Tests for repro.cluster.interference."""

import pytest

from repro.cluster.interference import InterferenceModel


class TestInterferenceModel:
    def test_exclusive_has_no_slowdown(self):
        model = InterferenceModel()
        assert model.slowdown(1) == 1.0

    def test_sharing_is_worse_than_fair_share(self):
        model = InterferenceModel()
        assert model.slowdown(2) < 0.5

    def test_more_colocation_is_worse(self):
        model = InterferenceModel()
        assert model.slowdown(3) < model.slowdown(2)

    def test_memory_pressure_penalty(self):
        model = InterferenceModel()
        assert model.slowdown(2, memory_oversubscribed=True) < model.slowdown(2)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            InterferenceModel().slowdown(0)

    def test_aggregate_efficiency_below_one(self):
        model = InterferenceModel()
        # The whole point of Eq. 4: a shared GPU does less total work.
        assert model.aggregate_efficiency(2) < 1.0
        assert model.aggregate_efficiency(1) == 1.0

    def test_effective_throughputs(self):
        model = InterferenceModel()
        shared = model.effective_throughputs([100.0, 100.0])
        assert len(shared) == 2
        assert all(v < 50.0 for v in shared)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            InterferenceModel(sharing_penalty=-0.1)
        with pytest.raises(ValueError):
            InterferenceModel(memory_pressure_penalty=1.5)
