"""Tests for repro.workload.tasks (Table 2)."""

import numpy as np
import pytest

from repro.workload.tasks import (
    TaskFamily,
    build_workload_catalog,
    catalog_summary,
    make_job_spec,
)


class TestCatalog:
    def test_exactly_fifty_workloads(self):
        """Table 2: 4×6 + 3×5 + 4 + 1 + 6 = 50 workloads."""
        assert len(build_workload_catalog()) == 50

    def test_summary_counts(self):
        summary = catalog_summary()
        assert summary["cv/imagenet"] == 24
        assert summary["cv/cifar10"] == 15
        assert summary["nlp/cola"] == 4
        assert summary["nlp/mrpc"] == 1
        assert summary["nlp/sst2"] == 6
        assert summary["total"] == 50

    def test_imagenet_sizes_and_classes(self):
        imagenet = [t for t in build_workload_catalog() if t.dataset == "imagenet"]
        sizes = sorted({t.dataset_size for t in imagenet})
        assert sizes == [10_000, 12_000, 14_000, 16_000, 18_000, 20_000]
        classes = sorted({t.num_classes for t in imagenet})
        assert classes == [10, 12, 14, 16, 18, 20]

    def test_cifar_sizes(self):
        cifar = [t for t in build_workload_catalog() if t.dataset == "cifar10"]
        assert sorted({t.dataset_size for t in cifar}) == [20_000, 25_000, 30_000, 35_000, 40_000]
        assert {t.num_classes for t in cifar} == {10}

    def test_nlp_uses_bert(self):
        nlp = [t for t in build_workload_catalog() if t.family is TaskFamily.NLP]
        assert {t.model_name for t in nlp} == {"bert"}
        assert {t.num_classes for t in nlp} == {2}

    def test_unique_names(self):
        names = [t.name for t in build_workload_catalog()]
        assert len(names) == len(set(names))

    def test_templates_build_models_and_profiles(self):
        for template in build_workload_catalog():
            model = template.model()
            profile = template.convergence_profile()
            assert model.flops_per_sample > 0
            assert profile.target_accuracy < profile.max_accuracy


class TestMakeJobSpec:
    def test_basic_instantiation(self):
        template = build_workload_catalog()[0]
        spec = make_job_spec(template, "job-1", arrival_time=12.0, requested_gpus=2)
        assert spec.job_id == "job-1"
        assert spec.arrival_time == 12.0
        assert spec.requested_gpus == 2
        assert spec.base_batch <= spec.dataset_size

    def test_batch_scales_with_requested_gpus(self):
        template = next(t for t in build_workload_catalog() if t.dataset == "cifar10")
        one = make_job_spec(template, "a", requested_gpus=1)
        four = make_job_spec(template, "b", requested_gpus=4)
        assert four.base_batch == 4 * one.base_batch

    def test_jitter_changes_convergence(self):
        template = build_workload_catalog()[0]
        rng = np.random.default_rng(0)
        a = make_job_spec(template, "a", rng=rng)
        b = make_job_spec(template, "b", rng=rng)
        assert (
            a.convergence.base_epochs_to_target != b.convergence.base_epochs_to_target
        )

    def test_no_jitter_is_deterministic(self):
        template = build_workload_catalog()[0]
        a = make_job_spec(template, "a")
        b = make_job_spec(template, "b")
        assert a.convergence.base_epochs_to_target == b.convergence.base_epochs_to_target

    def test_invalid_gpus_rejected(self):
        template = build_workload_catalog()[0]
        with pytest.raises(ValueError):
            make_job_spec(template, "a", requested_gpus=0)
