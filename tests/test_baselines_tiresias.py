"""Tests for the Tiresias baseline."""

import pytest

from repro.baselines.base import ClusterState
from repro.baselines.tiresias import TiresiasScheduler
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator
from tests.conftest import make_job, make_running_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


class TestQueueLevels:
    def test_new_job_is_highest_priority(self):
        scheduler = TiresiasScheduler(queue_thresholds=(100.0, 1000.0))
        job = make_job()
        assert scheduler.queue_level(job, now=0.0) == 0

    def test_level_grows_with_attained_service(self):
        scheduler = TiresiasScheduler(queue_thresholds=(100.0, 1000.0))
        job = make_running_job(gpu_ids=(0, 1), local_batches=(64, 64), now=0.0)
        assert scheduler.queue_level(job, now=10.0) == 0     # 20 GPU-s
        assert scheduler.queue_level(job, now=100.0) == 1    # 200 GPU-s
        assert scheduler.queue_level(job, now=600.0) == 2    # 1200 GPU-s

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            TiresiasScheduler(queue_thresholds=(100.0, 50.0))
        with pytest.raises(ValueError):
            TiresiasScheduler(queue_thresholds=(-1.0,))


class TestScheduling:
    def test_fixed_job_size(self, small_topology):
        scheduler = TiresiasScheduler()
        job = make_job(job_id="a", requested_gpus=2)
        proposal = scheduler.on_job_arrival(job, _state({"a": job}, small_topology))
        assert proposal.num_gpus("a") == 2

    def test_prioritises_least_attained_service(self, small_topology):
        scheduler = TiresiasScheduler(queue_thresholds=(50.0, 500.0))
        old = make_running_job(job_id="old", gpu_ids=tuple(range(8)), local_batches=(16,) * 8, now=0.0)
        newcomer = make_job(job_id="new", arrival_time=100.0, requested_gpus=4)
        allocation = Allocation.from_job_map({"old": [(i, 16) for i in range(8)]})
        jobs = {"old": old, "new": newcomer}
        proposal = scheduler.on_job_arrival(newcomer, _state(jobs, small_topology, allocation, now=100.0))
        # The old job has attained 800 GPU-seconds and falls to a lower
        # queue; the newcomer (0 attained) must be served.
        assert proposal is not None
        assert proposal.num_gpus("new") == 4

    def test_keeps_running_job_in_place_when_possible(self, small_topology):
        scheduler = TiresiasScheduler()
        running = make_running_job(job_id="run", gpu_ids=(0, 1), local_batches=(64, 64))
        allocation = Allocation.from_job_map({"run": [(0, 64), (1, 64)]})
        other = make_job(job_id="other", arrival_time=1.0, requested_gpus=2)
        jobs = {"run": running, "other": other}
        proposal = scheduler.on_job_arrival(other, _state(jobs, small_topology, allocation, now=1.0))
        assert proposal.gpus_of("run") == [0, 1]

    def test_epoch_end_only_reacts_to_level_changes(self, small_topology):
        scheduler = TiresiasScheduler(queue_thresholds=(1e6,))
        job = make_running_job(job_id="a")
        allocation = Allocation.from_job_map({"a": [(0, 128)]})
        state = _state({"a": job}, small_topology, allocation, now=1.0)
        record = job.complete_epoch(1.0)
        first = scheduler.on_epoch_end(job, record, state)
        second = scheduler.on_epoch_end(job, record, state)
        # No queue level changed between the two calls.
        assert second is None

    def test_table3_capabilities(self):
        caps = TiresiasScheduler().capabilities
        assert caps.strategy == "greedy"
        assert caps.allows_preemption
        assert not caps.elastic_job_size
        assert not caps.elastic_batch_size

    def test_end_to_end(self, tiny_trace):
        result = ClusterSimulator(make_longhorn_cluster(8), TiresiasScheduler(), tiny_trace).run()
        assert not result.incomplete
        assert result.average_jct > 0
