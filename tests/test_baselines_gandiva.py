"""Tests for the Gandiva-style time-slicing baseline."""

import pytest

from repro.baselines.base import ClusterState
from repro.baselines.gandiva import GandivaScheduler
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator
from repro.utils.units import MINUTE
from tests.conftest import make_job, make_running_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


class TestConfiguration:
    def test_default_round_length(self):
        assert GandivaScheduler().timer_interval == pytest.approx(1.0 * MINUTE)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GandivaScheduler(time_quantum=0.0)
        with pytest.raises(ValueError):
            GandivaScheduler(migration_quality_threshold=0.0)

    def test_capabilities(self):
        caps = GandivaScheduler().capabilities
        assert caps.allows_preemption
        assert not caps.elastic_job_size
        assert not caps.elastic_batch_size


class TestScheduling:
    def test_arrival_starts_immediately_when_gpus_free(self, small_topology):
        scheduler = GandivaScheduler()
        job = make_job(job_id="a", requested_gpus=2)
        proposal = scheduler.on_job_arrival(job, _state({"a": job}, small_topology))
        assert proposal.num_gpus("a") == 2

    def test_arrival_waits_when_cluster_full(self, small_topology):
        scheduler = GandivaScheduler()
        running = make_running_job(job_id="run", gpu_ids=tuple(range(8)), local_batches=(16,) * 8)
        allocation = Allocation.from_job_map({"run": [(i, 16) for i in range(8)]})
        pending = make_job(job_id="wait", arrival_time=1.0, requested_gpus=4)
        proposal = scheduler.on_job_arrival(
            pending, _state({"run": running, "wait": pending}, small_topology, allocation, now=1.0)
        )
        assert proposal is None

    def test_timer_round_robins_between_jobs(self, small_topology):
        """With two 8-GPU jobs on an 8-GPU cluster, successive rounds alternate."""
        scheduler = GandivaScheduler()
        a = make_running_job(job_id="a", gpu_ids=tuple(range(8)), local_batches=(16,) * 8)
        b = make_job(job_id="b", arrival_time=1.0, requested_gpus=8)
        allocation = Allocation.from_job_map({"a": [(i, 16) for i in range(8)]})
        jobs = {"a": a, "b": b}
        owners = set()
        current_allocation = allocation
        for round_index in range(4):
            state = _state(jobs, small_topology, current_allocation, now=60.0 * (round_index + 1))
            proposal = scheduler.on_timer(state)
            if proposal is not None:
                current_allocation = proposal
            owners.add(tuple(sorted(current_allocation.jobs())))
        # Over a few rounds both jobs get slices (not always job "a").
        assert any("b" in owner for owner in owners)

    def test_well_placed_job_is_not_migrated(self, small_topology):
        scheduler = GandivaScheduler()
        job = make_running_job(job_id="a", gpu_ids=(0, 1), local_batches=(64, 64))
        allocation = Allocation.from_job_map({"a": [(0, 64), (1, 64)]})
        proposal = scheduler.on_timer(_state({"a": job}, small_topology, allocation, now=60.0))
        # Only one job, already well packed: nothing to change.
        assert proposal is None

    def test_poorly_placed_job_is_repacked(self, small_topology):
        scheduler = GandivaScheduler()
        # Workers scattered across both nodes although they would fit on one.
        job = make_running_job(job_id="a", gpu_ids=(0, 4), local_batches=(64, 64))
        allocation = Allocation.from_job_map({"a": [(0, 64), (4, 64)]})
        proposal = scheduler.on_timer(_state({"a": job}, small_topology, allocation, now=60.0))
        assert proposal is not None
        gpus = proposal.gpus_of("a")
        assert small_topology.nodes_spanned(gpus) == 1

    def test_end_to_end(self, tiny_trace):
        result = ClusterSimulator(make_longhorn_cluster(8), GandivaScheduler(), tiny_trace).run()
        assert not result.incomplete
