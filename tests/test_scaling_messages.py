"""Tests for repro.scaling.messages."""

import pytest

from repro.scaling.messages import (
    MessageType,
    ScalingMessage,
    make_progress_report,
    make_scale_command,
    make_start_command,
    make_stop_command,
)


class TestScalingMessage:
    def test_requires_job_and_endpoints(self):
        with pytest.raises(ValueError):
            ScalingMessage(MessageType.PAUSE, "", "scheduler", "manager:0")
        with pytest.raises(ValueError):
            ScalingMessage(MessageType.PAUSE, "job-a", "", "manager:0")

    def test_sequence_numbers_increase(self):
        a = make_stop_command("job-a", 0)
        b = make_stop_command("job-a", 1)
        assert b.sequence > a.sequence


class TestFactories:
    def test_start_command(self):
        msg = make_start_command("job-a", 3, 64, [3, 4], 0.1)
        assert msg.msg_type is MessageType.START_JOB
        assert msg.receiver == "manager:3"
        assert msg.payload["local_batch"] == 64
        assert msg.payload["peer_gpus"] == (3, 4)

    def test_start_command_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            make_start_command("job-a", 0, 0, [0], 0.1)

    def test_scale_command_allows_zero_batch_for_removal(self):
        msg = make_scale_command("job-a", 2, 0, [0, 1], 0.1)
        assert msg.payload["local_batch"] == 0

    def test_scale_command_rejects_negative(self):
        with pytest.raises(ValueError):
            make_scale_command("job-a", 2, -1, [0], 0.1)

    def test_stop_command(self):
        msg = make_stop_command("job-b", 7)
        assert msg.msg_type is MessageType.STOP_JOB
        assert msg.receiver == "manager:7"

    def test_progress_report_direction(self):
        msg = make_progress_report("job-a", 1, 1000, 0.5, 0.8, 3)
        assert msg.sender == "manager:1"
        assert msg.receiver == "scheduler"
        assert msg.payload["epoch"] == 3
