"""Differential parity: the batched evolution engine vs the scalar reference.

The batched operators (:mod:`repro.core.evolution_batched`) must be
*bit-compatible* with the scalar operators of
:mod:`repro.core.operators` / :mod:`repro.core.evolution`: identical
genomes out of every operator, identical RNG consumption, identical
scores and selection order per generation, and identical full
simulation trajectories — across randomised job mixes, capacities and
seeds, including never-started jobs and zero-throughput (``inf`` /
``nan`` utilisation) corners.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.evolution_batched import (
    fill_idle_population,
    refresh_population,
    reindex_genomes,
    reorder_population,
    run_generation,
    unique_rows,
)
from repro.core.operators import (
    fill_idle_gpus,
    refresh,
    reorder,
    uniform_crossover,
    uniform_mutation,
)
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.core.schedule import IDLE, Schedule, stack_genomes, unique_schedules
from repro.core.scoring import select_top_k
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import generate_trace, run_single
from repro.jobs.throughput import ThroughputModel, ThroughputTable
from repro.workload.trace import TraceConfig
from tests._core_helpers import make_context, make_jobs


def _table_workload(num_gpus, num_jobs, seed, never_started=(), running_fraction=0.8):
    """A randomised cluster snapshot plus a factory for table-backed contexts.

    The factory builds a fresh :class:`ThroughputTable` and RNG per call
    so the scalar and batched paths can be driven from identical state.
    """
    jobs = make_jobs(num_jobs)
    rng = np.random.default_rng(seed)
    for i, (job_id, job) in enumerate(jobs.items()):
        if job_id in never_started or rng.random() > running_fraction:
            continue
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(int(rng.integers(500, 5000)), 10.0)
    model = ThroughputModel(make_longhorn_cluster(num_gpus))
    limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    base = make_context(
        jobs, num_gpus=num_gpus, limits=limits, seed=seed, never_started=never_started
    )

    def fresh_ctx(rng_seed):
        table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
        return replace(
            base,
            throughput_fn=None,
            throughput_table=table,
            rng=np.random.default_rng(rng_seed),
        )

    return roster, fresh_ctx


def _random_genomes(roster, num_gpus, rows, seed, idle_fraction=0.35):
    rng = np.random.default_rng(seed)
    genomes = rng.integers(0, len(roster), size=(rows, num_gpus)).astype(np.int64)
    genomes[rng.random(genomes.shape) < idle_fraction] = IDLE
    return genomes


CASES = [(8, 3, 0), (8, 5, 1), (16, 7, 2), (16, 12, 3), (32, 20, 4)]


# --- per-operator parity -------------------------------------------------------------------------


@pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
def test_refresh_bit_identical(num_gpus, num_jobs, seed):
    never = ("job-0", "job-1") if seed % 2 else ()
    roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed, never)
    genomes = _random_genomes(roster, num_gpus, 12, seed + 100)
    scalar = np.stack(
        [
            refresh(Schedule(roster=roster, genome=g), fresh_ctx(7)).genome
            for g in genomes
        ]
    )
    batched = refresh_population(genomes, fresh_ctx(7))
    assert np.array_equal(scalar, batched)


@pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
def test_fill_idle_gpus_bit_identical(num_gpus, num_jobs, seed):
    roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
    genomes = _random_genomes(roster, num_gpus, 12, seed + 200, idle_fraction=0.5)
    scalar = np.stack(
        [
            fill_idle_gpus(Schedule(roster=roster, genome=g), fresh_ctx(3)).genome
            for g in genomes
        ]
    )
    batched = fill_idle_population(genomes, fresh_ctx(3))
    assert np.array_equal(scalar, batched)


def test_fill_parity_on_zero_throughput_curves():
    """inf/nan utilisation deltas: the batched argmin must reproduce the
    scalar scan's first-strictly-smaller tie-breaking exactly."""
    jobs = make_jobs(3)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i], [64])
        job.advance(1000 * (i + 1), 5.0)
    roster = tuple(sorted(jobs))
    num_gpus = 8
    # job-0 never achieves throughput (all-zero curve -> inf terms);
    # job-1 healthy; job-2 zero beyond 2 GPUs.
    matrix = np.zeros((3, num_gpus + 1))
    matrix[1, 1:] = np.linspace(100.0, 220.0, num_gpus)
    matrix[2, 1:3] = [80.0, 120.0]
    table = ThroughputTable.from_matrix(roster, matrix)
    base = make_context(jobs, num_gpus=num_gpus)
    ctx_scalar = replace(base, throughput_fn=None, throughput_table=table)
    ctx_batched = replace(base, throughput_fn=None, throughput_table=table)
    genomes = _random_genomes(roster, num_gpus, 16, seed=9, idle_fraction=0.6)
    scalar = np.stack(
        [
            fill_idle_gpus(Schedule(roster=roster, genome=g), ctx_scalar).genome
            for g in genomes
        ]
    )
    batched = fill_idle_population(genomes, ctx_batched)
    assert np.array_equal(scalar, batched)


@pytest.mark.parametrize("seed", range(4))
def test_reorder_bit_identical(seed):
    roster = tuple(f"job-{i}" for i in range(6))
    genomes = _random_genomes(roster, 17, 20, seed)
    scalar = np.stack(
        [reorder(Schedule(roster=roster, genome=g)).genome for g in genomes]
    )
    assert np.array_equal(scalar, reorder_population(genomes))


def test_reindex_matches_schedule_reindexed():
    old_roster = ("job-0", "job-1", "job-2", "job-3")
    new_roster = ("job-1", "job-3", "job-4")
    genomes = _random_genomes(old_roster, 10, 8, seed=5)
    scalar = np.stack(
        [
            Schedule(roster=old_roster, genome=g).reindexed(new_roster).genome
            for g in genomes
        ]
    )
    assert np.array_equal(scalar, reindex_genomes(genomes, old_roster, new_roster))


def test_crossover_and_mutation_consume_identical_rng_stream():
    """Per-pair/member draws in the batched loop replay the scalar calls."""
    num_gpus, num_jobs = 16, 6
    roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed=11)
    genomes = refresh_population(
        _random_genomes(roster, num_gpus, 8, seed=42), fresh_ctx(0)
    )
    schedules = [Schedule(roster=roster, genome=g) for g in genomes]

    ctx_a, ctx_b = fresh_ctx(77), fresh_ctx(77)
    scalar_children = []
    for _ in range(5):
        i, j = ctx_a.rng.choice(len(schedules), size=2, replace=False)
        child_a, child_b = uniform_crossover(
            schedules[int(i)], schedules[int(j)], rng=ctx_a.rng
        )
        scalar_children += [child_a.genome, child_b.genome]
    scalar_mutants = [
        uniform_mutation(schedules[int(ctx_a.rng.integers(0, len(schedules)))], ctx_a, 0.4).genome
        for _ in range(6)
    ]

    batched_children = []
    for _ in range(5):
        i, j = ctx_b.rng.choice(len(genomes), size=2, replace=False)
        mask = ctx_b.rng.integers(0, 2, size=num_gpus).astype(bool)
        batched_children.append(np.where(mask, genomes[int(i)], genomes[int(j)]))
        batched_children.append(np.where(mask, genomes[int(j)], genomes[int(i)]))
    batched_mutants = []
    for _ in range(6):
        member = int(ctx_b.rng.integers(0, len(genomes)))
        row = genomes[member]
        placed = np.unique(row[row != IDLE])
        coins = ctx_b.rng.random(placed.size)
        doomed = placed[coins < 0.4]
        batched_mutants.append(np.where(np.isin(row, doomed), IDLE, row))
    batched_mutants = fill_idle_population(np.stack(batched_mutants), ctx_b)

    assert np.array_equal(np.stack(scalar_children), np.stack(batched_children))
    assert np.array_equal(np.stack(scalar_mutants), batched_mutants)
    # Both paths must leave the shared generator in the same state.
    assert ctx_a.rng.integers(2**31) == ctx_b.rng.integers(2**31)


# --- generation-level parity ---------------------------------------------------------------------


def _scalar_generation(genomes, ctx, config):
    """The scalar `_iterate` body, returning (survivor matrix, scores, pool)."""
    roster = ctx.roster
    size = config.resolved_population_size(ctx.num_gpus)
    refreshed = [refresh(Schedule(roster=roster, genome=g), ctx) for g in genomes]
    candidates = list(refreshed)
    if config.enable_crossover and len(refreshed) >= 2:
        for _ in range(config.resolved_crossover_pairs(size)):
            i, j = ctx.rng.choice(len(refreshed), size=2, replace=False)
            child_a, child_b = uniform_crossover(
                refreshed[int(i)], refreshed[int(j)], rng=ctx.rng
            )
            candidates.append(fill_idle_gpus(child_a, ctx))
            candidates.append(fill_idle_gpus(child_b, ctx))
    if config.enable_mutation:
        for _ in range(size):
            idx = int(ctx.rng.integers(0, len(refreshed)))
            candidates.append(uniform_mutation(refreshed[idx], ctx, config.mutation_rate))
    if config.enable_reorder:
        candidates = [reorder(c) for c in candidates]
    pool = unique_schedules(candidates)
    survivors = select_top_k(
        candidates,
        ctx.jobs,
        ctx.distributions,
        ctx.throughput_fn,
        k=size,
        rng=ctx.rng,
        table=ctx.throughput_table,
    )
    matrix = np.stack([s.genome for s, _ in survivors])
    scores = np.array([score for _, score in survivors])
    return matrix, scores, len(pool)


@pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
def test_generation_bit_identical(num_gpus, num_jobs, seed):
    """One full generation: survivors, scores, selection order, pool size."""
    never = ("job-2",) if seed % 2 else ()
    roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed, never)
    config = EvolutionConfig(population_size=min(num_gpus, 12))
    genomes = refresh_population(
        _random_genomes(roster, num_gpus, config.population_size, seed + 300),
        fresh_ctx(0),
    )
    ctx_a, ctx_b = fresh_ctx(seed + 1), fresh_ctx(seed + 1)
    scalar_matrix, scalar_scores, scalar_pool = _scalar_generation(
        genomes, ctx_a, config
    )
    result = run_generation(genomes, ctx_b, config)
    assert np.array_equal(scalar_matrix, result.population)
    assert np.array_equal(scalar_scores, result.scores)
    assert scalar_pool == result.pool_size
    assert np.array_equal(scalar_matrix[0], result.best_genome)
    assert scalar_scores[0] == result.best_score
    assert ctx_a.rng.integers(2**31) == ctx_b.rng.integers(2**31)


@pytest.mark.parametrize(
    "config",
    [
        EvolutionConfig(population_size=8),
        EvolutionConfig(population_size=8, enable_crossover=False),
        EvolutionConfig(population_size=8, enable_mutation=False),
        EvolutionConfig(population_size=8, enable_reorder=False),
        EvolutionConfig(population_size=8, mutation_rate=0.9, crossover_pairs=2),
    ],
    ids=["default", "no-crossover", "no-mutation", "no-reorder", "hot-mutation"],
)
def test_generation_parity_across_ablation_switches(config):
    roster, fresh_ctx = _table_workload(16, 6, seed=21)
    genomes = refresh_population(_random_genomes(roster, 16, 8, 55), fresh_ctx(0))
    ctx_a, ctx_b = fresh_ctx(13), fresh_ctx(13)
    scalar_matrix, scalar_scores, _ = _scalar_generation(genomes, ctx_a, config)
    result = run_generation(genomes, ctx_b, config)
    assert np.array_equal(scalar_matrix, result.population)
    assert np.array_equal(scalar_scores, result.scores)


@pytest.mark.parametrize("num_gpus,num_jobs,seed", [(8, 4, 0), (16, 9, 1), (16, 14, 2)])
def test_search_trajectories_identical_across_steps(num_gpus, num_jobs, seed):
    """Multi-step EvolutionarySearch: populations and winners stay equal."""
    roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
    scalar = EvolutionarySearch(EvolutionConfig(batched_operators=False), seed=99)
    batched = EvolutionarySearch(EvolutionConfig(batched_operators=True), seed=99)
    ctx_a, ctx_b = fresh_ctx(seed + 40), fresh_ctx(seed + 40)
    current = Schedule.empty(roster, num_gpus)
    for step in range(5):
        best_a, score_a = scalar.step(ctx_a, current=current if step == 0 else None)
        best_b, score_b = batched.step(ctx_b, current=current if step == 0 else None)
        assert np.array_equal(best_a.genome, best_b.genome), f"step {step}"
        assert score_a == score_b
        assert np.array_equal(
            stack_genomes(scalar.population.members),
            stack_genomes(batched.population.members),
        )


def test_roster_change_reindexes_identically():
    """A job completing between events: both paths re-express and
    re-seed the population the same way."""
    roster, fresh_ctx = _table_workload(16, 5, seed=31)
    scalar = EvolutionarySearch(EvolutionConfig(batched_operators=False), seed=7)
    batched = EvolutionarySearch(EvolutionConfig(batched_operators=True), seed=7)
    ctx_a, ctx_b = fresh_ctx(50), fresh_ctx(50)
    scalar.step(ctx_a)
    batched.step(ctx_b)

    smaller_jobs = {j: job for j, job in ctx_a.jobs.items() if j != "job-3"}
    def shrunk(ctx):
        return replace(
            ctx,
            jobs=smaller_jobs,
            roster=tuple(sorted(smaller_jobs)),
            throughput_table=ThroughputTable(
                ctx.throughput_table._model,
                smaller_jobs,
                ctx.limits,
                16,
                roster=tuple(sorted(smaller_jobs)),
            ),
            throughput_fn=None,
        )

    current = Schedule.empty(tuple(sorted(smaller_jobs)), 16)
    best_a, score_a = scalar.step(shrunk(ctx_a), current=current)
    best_b, score_b = batched.step(shrunk(ctx_b), current=current)
    assert np.array_equal(best_a.genome, best_b.genome)
    assert score_a == score_b
    assert "job-3" not in best_b.placed_jobs()
    assert np.array_equal(
        stack_genomes(scalar.population.members),
        stack_genomes(batched.population.members),
    )


def test_batched_flag_falls_back_to_scalar_without_table():
    """Contexts carrying only a generic throughput_fn use the reference
    operators; the flag changes nothing."""
    jobs = make_jobs(4)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i], [64])
        job.advance(800 * (i + 1), 5.0)
    ctx_a = make_context(jobs, num_gpus=8, seed=3)
    ctx_b = make_context(jobs, num_gpus=8, seed=3)
    assert ctx_a.throughput_table is None
    on = EvolutionarySearch(EvolutionConfig(batched_operators=True), seed=5)
    off = EvolutionarySearch(EvolutionConfig(batched_operators=False), seed=5)
    best_on, score_on = on.step(ctx_a)
    best_off, score_off = off.step(ctx_b)
    assert np.array_equal(best_on.genome, best_off.genome)
    assert score_on == score_off


def test_mid_run_handoff_from_scalar_population_to_batched():
    """A table-less event builds a scalar population; the next table-backed
    event must lift it onto the genome matrix without changing the
    trajectory (vs a search that stayed scalar throughout)."""
    jobs = make_jobs(5)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i], [64])
        job.advance(900 * (i + 1), 5.0)
    roster, fresh_ctx = _table_workload(8, 5, seed=61)

    hybrid = EvolutionarySearch(EvolutionConfig(batched_operators=True), seed=5)
    scalar = EvolutionarySearch(EvolutionConfig(batched_operators=False), seed=5)
    # Event 1: no throughput table -> both run the scalar reference.
    ctx_a = make_context(jobs, num_gpus=8, seed=3)
    ctx_b = make_context(jobs, num_gpus=8, seed=3)
    assert ctx_a.throughput_table is None
    hybrid.step(ctx_a)
    scalar.step(ctx_b)
    # Event 2: table present -> hybrid lifts its population to the matrix.
    ctx_c, ctx_d = fresh_ctx(19), fresh_ctx(19)
    best_h, score_h = hybrid.step(ctx_c)
    best_s, score_s = scalar.step(ctx_d)
    assert np.array_equal(best_h.genome, best_s.genome)
    assert score_h == score_s
    assert np.array_equal(
        stack_genomes(hybrid.population.members),
        stack_genomes(scalar.population.members),
    )


def test_unique_rows_matches_unique_schedules():
    roster = tuple(f"job-{i}" for i in range(4))
    rng = np.random.default_rng(17)
    genomes = rng.integers(-1, 4, size=(30, 6)).astype(np.int64)
    genomes[10:20] = genomes[:10]  # force duplicates
    scalar = unique_schedules([Schedule(roster=roster, genome=g) for g in genomes])
    batched = unique_rows(genomes)
    assert np.array_equal(np.stack([s.genome for s in scalar]), batched)


# --- full-simulation parity ----------------------------------------------------------------------


@pytest.mark.parametrize("num_gpus,num_jobs", [(8, 6), (16, 10)])
def test_full_simulation_trajectory_identical(num_gpus, num_jobs):
    """ONES end to end: batched and scalar runs produce the same events,
    schedules, per-job metrics and makespan over a multi-event trace."""
    config = ExperimentConfig(
        num_gpus=num_gpus,
        trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 30.0),
        seed=2021,
    )
    trace = generate_trace(config)

    def run(batched):
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(batched_operators=batched)),
            seed=config.seed,
        )
        return run_single(scheduler, trace, config)

    scalar_result = run(False)
    batched_result = run(True)
    assert scalar_result.completed == batched_result.completed
    assert scalar_result.makespan == batched_result.makespan
    assert scalar_result.events_processed == batched_result.events_processed
    assert scalar_result.num_reconfigurations == batched_result.num_reconfigurations
    assert scalar_result.incomplete == batched_result.incomplete
