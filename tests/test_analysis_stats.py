"""Tests for repro.analysis.stats (Table 4 significance tests)."""

import numpy as np
import pytest

from repro.analysis.stats import significance_table, wilcoxon_comparison
from repro.sim.simulator import SimulationResult


def _result(name, jcts):
    completed = {
        f"job-{i:02d}": {
            "jct": float(j),
            "execution_time": float(j) * 0.8,
            "queuing_time": float(j) * 0.2,
        }
        for i, j in enumerate(jcts)
    }
    return SimulationResult(
        scheduler_name=name,
        num_gpus=16,
        completed=completed,
        incomplete=[],
        makespan=float(max(jcts)),
        gpu_time_busy=1.0,
        gpu_time_total=2.0,
        num_reconfigurations=0,
        events_processed=1,
    )


@pytest.fixture
def clearly_better():
    rng = np.random.default_rng(0)
    base = rng.uniform(100, 1000, size=40)
    ours = _result("ONES", base * 0.6)
    theirs = _result("Tiresias", base)
    return ours, theirs


class TestWilcoxon:
    def test_detects_clear_improvement(self, clearly_better):
        ours, theirs = clearly_better
        report = wilcoxon_comparison(ours, theirs)
        # Table-4 pattern: tiny two-sided p, 'less' strongly supported,
        # 'greater' (the one-sided negative test) near 1.
        assert report.p_two_sided < 0.05
        assert report.p_one_sided_less < 0.05
        assert report.p_one_sided_greater > 0.95
        assert report.significantly_different
        assert report.ours_is_smaller
        assert report.median_difference < 0

    def test_identical_results_are_inconclusive(self):
        a = _result("A", [100, 200, 300])
        b = _result("B", [100, 200, 300])
        report = wilcoxon_comparison(a, b)
        assert report.p_two_sided == 1.0
        assert not report.significantly_different

    def test_as_row_matches_table4_columns(self, clearly_better):
        ours, theirs = clearly_better
        row = wilcoxon_comparison(ours, theirs).as_row()
        assert row["comparison"] == "vs. Tiresias"
        assert "p value (two-sided test)" in row
        assert "p value (one-sided negative test)" in row

    def test_significance_table_covers_all_baselines(self, clearly_better):
        ours, theirs = clearly_better
        other = _result("Optimus", [v * 2 for v in theirs.jct_values()])
        table = significance_table(ours, [theirs, other])
        assert set(table) == {"Tiresias", "Optimus"}
        assert all(r.p_two_sided <= 1.0 for r in table.values())

    def test_no_improvement_is_not_significant_in_our_favour(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(100, 1000, size=30)
        worse = _result("ONES", base * 1.4)
        baseline = _result("DRL", base)
        report = wilcoxon_comparison(worse, baseline)
        assert not report.ours_is_smaller
