"""Tests for repro.core.operators (refresh / crossover / mutation / reorder)."""

import numpy as np
import pytest

from repro.core.operators import (
    fill_idle_gpus,
    refresh,
    reorder,
    uniform_crossover,
    uniform_mutation,
)
from repro.core.schedule import IDLE, Schedule
from tests._core_helpers import make_context, make_jobs


class TestRefresh:
    def test_completed_jobs_removed_via_roster(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        old_roster = ("job-0", "job-1", "job-gone")
        schedule = Schedule(roster=old_roster, genome=np.array([2, 2, 0, 1]))
        refreshed = refresh(schedule, ctx)
        assert "job-gone" not in refreshed.placed_jobs()

    def test_new_jobs_get_one_gpu(self):
        jobs = make_jobs(3)
        ctx = make_context(jobs, num_gpus=4)
        empty = Schedule.empty(ctx.roster, 4)
        refreshed = refresh(empty, ctx)
        for job_id in ctx.never_started:
            assert refreshed.gpu_count(job_id) >= 1

    def test_new_jobs_take_gpus_from_longest_running_when_full(self):
        jobs = make_jobs(3)
        # job-0 and job-1 are long-running and occupy the whole cluster.
        jobs["job-0"].start_running(0.0, [0, 1], [64, 64])
        jobs["job-1"].start_running(0.0, [2, 3], [64, 64])
        ctx = make_context(jobs, num_gpus=4)
        ctx.executed_time.update({"job-0": 1000.0, "job-1": 10.0})
        ctx.never_started = {"job-2"}
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, 0, 1, 1]))
        refreshed = refresh(schedule, ctx)
        assert refreshed.gpu_count("job-2") >= 1
        # The GPU came from the longest-running job.
        assert refreshed.gpu_count("job-0") < 2

    def test_over_allocated_job_is_shrunk(self):
        jobs = make_jobs(1)
        ctx = make_context(jobs, num_gpus=8, limits={"job-0": 128})
        # desired = ceil(128 / 128) = 1 GPU, but the genome gives it 6.
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, 0, 0, 0, 0, 0, IDLE, IDLE]))
        refreshed = refresh(schedule, ctx)
        assert refreshed.gpu_count("job-0") == 1

    def test_idle_gpus_filled_when_limits_allow(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=8, limits={"job-0": 1024, "job-1": 1024})
        empty = Schedule.empty(ctx.roster, 8)
        refreshed = refresh(empty, ctx)
        assert len(refreshed.idle_gpus()) == 0


class TestFillIdleGpus:
    def test_fills_up_to_desired(self):
        jobs = make_jobs(1)
        ctx = make_context(jobs, num_gpus=4, limits={"job-0": 512})
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, IDLE, IDLE, IDLE]))
        filled = fill_idle_gpus(schedule, ctx)
        assert filled.gpu_count("job-0") == 4  # ceil(512/128) = 4 desired

    def test_no_moves_when_everyone_at_desired(self):
        jobs = make_jobs(1)
        ctx = make_context(jobs, num_gpus=4, limits={"job-0": 128})
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, IDLE, IDLE, IDLE]))
        filled = fill_idle_gpus(schedule, ctx)
        assert filled.gpu_count("job-0") == 1
        assert len(filled.idle_gpus()) == 3


class TestUniformCrossover:
    def test_children_mix_parent_genes(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=8)
        parent_a = Schedule(roster=ctx.roster, genome=np.zeros(8, dtype=np.int64))
        parent_b = Schedule(roster=ctx.roster, genome=np.ones(8, dtype=np.int64))
        child1, child2 = uniform_crossover(parent_a, parent_b, rng=3)
        for gpu in range(8):
            genes = {int(child1.genome[gpu]), int(child2.genome[gpu])}
            assert genes == {0, 1}

    def test_mismatched_parents_rejected(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        a = Schedule.empty(ctx.roster, 4)
        b = Schedule.empty(("other",), 4)
        with pytest.raises(ValueError):
            uniform_crossover(a, b)
        c = Schedule.empty(ctx.roster, 6)
        with pytest.raises(ValueError):
            uniform_crossover(a, c)


class TestUniformMutation:
    def test_mutation_rate_zero_keeps_schedule(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4, limits={"job-0": 128, "job-1": 128})
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))
        mutated = uniform_mutation(schedule, ctx, mutation_rate=0.0)
        assert mutated.gpu_counts() == schedule.gpu_counts()

    def test_mutation_rate_one_preempts_and_refills(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4, limits={"job-0": 1024, "job-1": 1024})
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, 0, 0, 0]))
        mutated = uniform_mutation(schedule, ctx, mutation_rate=1.0)
        # Everything was preempted; the fill step re-used the GPUs.
        assert len(mutated.idle_gpus()) == 0

    def test_invalid_rate_rejected(self):
        jobs = make_jobs(1)
        ctx = make_context(jobs, num_gpus=4)
        schedule = Schedule.empty(ctx.roster, 4)
        with pytest.raises(ValueError):
            uniform_mutation(schedule, ctx, mutation_rate=1.5)


class TestReorder:
    def test_packs_by_first_occurrence(self):
        jobs = make_jobs(3)
        ctx = make_context(jobs, num_gpus=8)
        scattered = Schedule(
            roster=ctx.roster, genome=np.array([2, 0, 1, 0, IDLE, 2, IDLE, IDLE])
        )
        packed = reorder(scattered)
        assert list(packed.genome) == [2, 2, 0, 0, 1, IDLE, IDLE, IDLE]

    def test_counts_preserved(self):
        jobs = make_jobs(3)
        ctx = make_context(jobs, num_gpus=8)
        scattered = Schedule(
            roster=ctx.roster, genome=np.array([2, 0, 1, 0, IDLE, 2, IDLE, IDLE])
        )
        assert reorder(scattered).gpu_counts() == scattered.gpu_counts()

    def test_reorder_improves_locality(self, topology16):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=16)
        # job-0's workers scattered across nodes.
        genome = np.full(16, IDLE, dtype=np.int64)
        genome[[0, 5, 10, 15]] = 0
        scattered = Schedule(roster=ctx.roster, genome=genome)
        packed = reorder(scattered)
        assert topology16.nodes_spanned(packed.gpus_of("job-0")) <= topology16.nodes_spanned(
            scattered.gpus_of("job-0")
        )
