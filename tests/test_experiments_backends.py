"""Backend parity, artifact round-trips and Runner caching/resume tests.

The headline guarantee of the orchestration layer: executing a grid on
the process-pool backend produces artifacts *bit-identical* to serial
execution (same per-job JCTs, makespans and event counts), and resuming
a cached sweep executes nothing.
"""

import json

import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.experiments.artifacts import RunArtifact, SweepArtifact
from repro.experiments.backends import (
    ProcessPoolBackend,
    SerialBackend,
    execute_run,
    make_backend,
    simulate_run,
)
from repro.experiments.orchestrator import Runner, run_experiment
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig

TINY_TRACE = TraceConfig(num_jobs=3, arrival_rate=1.0 / 10.0, convergence_patience=3)
TINY_SIM = SimulationConfig(max_time=24 * 3600.0)


def tiny_grid(**overrides) -> ExperimentSpec:
    defaults = dict(
        schedulers=("ONES", "FIFO"),
        capacities=(8,),
        seeds=(7, 9),
        traces=(TINY_TRACE,),
        simulation=TINY_SIM,
        scheduler_options={"ONES": {"population_size": 4}},
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestExecuteRun:
    def test_simulate_run_completes_all_jobs(self):
        spec = RunSpec(scheduler="FIFO", num_gpus=8, seed=7, trace=TINY_TRACE,
                       simulation=TINY_SIM)
        result = simulate_run(spec)
        assert result.scheduler_name == "FIFO"
        assert len(result.completed) == 3
        assert result.jobs  # in-process results keep their Job objects

    def test_execute_run_artifact_is_job_less_and_round_trips(self):
        spec = RunSpec(scheduler="FIFO", num_gpus=8, seed=7, trace=TINY_TRACE,
                       simulation=TINY_SIM)
        artifact = execute_run(spec)
        assert artifact.result.jobs == {}
        assert artifact.telemetry["scheduler"] == "FIFO"
        assert artifact.telemetry["reconfigurations"] == artifact.result.num_reconfigurations
        restored = RunArtifact.from_json(artifact.to_json())
        assert restored == artifact
        assert restored.to_dict() == artifact.to_dict()

    def test_execution_is_deterministic(self):
        spec = RunSpec(scheduler="ONES", num_gpus=8, seed=7, trace=TINY_TRACE,
                       simulation=TINY_SIM, scheduler_options={"population_size": 4})
        assert execute_run(spec) == execute_run(spec)

    def test_serial_backend_resolver_escape_hatch(self):
        calls = []

        def resolver(name, seed, **options):
            calls.append((name, seed))
            return FIFOScheduler()

        spec = RunSpec(scheduler="NotRegistered", num_gpus=8, seed=7, trace=TINY_TRACE,
                       simulation=TINY_SIM)
        [artifact] = SerialBackend(resolver=resolver).run([spec])
        assert calls == [("NotRegistered", 7)]
        assert artifact.scheduler_name == "FIFO"


class TestBackendParity:
    def test_process_pool_bit_identical_to_serial(self):
        spec = tiny_grid()
        serial = SerialBackend().run(spec.expand())
        parallel = ProcessPoolBackend(max_workers=2).run(spec.expand())
        assert len(serial) == len(parallel) == spec.num_cells
        for ours, theirs in zip(serial, parallel):
            # Bit-identical artifacts: per-job metrics (JCT / execution /
            # queuing), makespan, event counts, telemetry — everything.
            assert ours.spec == theirs.spec
            assert ours.result.completed == theirs.result.completed
            assert ours.result.makespan == theirs.result.makespan
            assert ours.result.events_processed == theirs.result.events_processed
            assert ours.to_dict() == theirs.to_dict()
            assert ours == theirs

    def test_empty_batch(self):
        assert ProcessPoolBackend(max_workers=2).run([]) == []

    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=2), ProcessPoolBackend)
        backend = SerialBackend()
        assert make_backend(backend) is backend
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("threads")
        with pytest.raises(ValueError, match="single-worker"):
            make_backend("serial", workers=4)
        with pytest.raises(ValueError, match="registry"):
            make_backend("process", resolver=lambda name, seed: FIFOScheduler())
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)


class TestSweepArtifact:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_experiment(tiny_grid())

    def test_grid_order_and_lookup(self, sweep):
        assert [run.spec.label() for run in sweep] == [
            "ONES@8g/seed7", "FIFO@8g/seed7", "ONES@8g/seed9", "FIFO@8g/seed9",
        ]
        assert sweep.get("FIFO", capacity=8, seed=9).spec.seed == 9
        with pytest.raises(KeyError):
            sweep.get("Tiresias")

    def test_mean_and_relative_tables(self, sweep):
        table = sweep.mean_metric_table("jct")
        assert set(table) == {"ONES", "FIFO"}
        assert set(table["ONES"]) == {8}
        per_seed = [sweep.get("ONES", seed=s).mean("jct") for s in (7, 9)]
        assert table["ONES"][8] == pytest.approx(sum(per_seed) / 2)
        relative = sweep.relative_to("ONES", "jct")
        assert relative["ONES"][8] == pytest.approx(1.0)
        with pytest.raises(KeyError):
            sweep.relative_to("Tiresias")

    def test_json_round_trip(self, sweep):
        restored = SweepArtifact.from_json(sweep.to_json())
        assert restored.spec == sweep.spec
        assert restored.runs == sweep.runs

    def test_to_comparisons_requires_single_seed(self, sweep):
        with pytest.raises(ValueError, match="single-seed"):
            sweep.to_comparisons()

    def test_to_comparisons_bridges_to_legacy_shape(self):
        sweep = run_experiment(tiny_grid(seeds=(7,)))
        comparisons = sweep.to_comparisons()
        assert set(comparisons) == {8}
        comparison = comparisons[8]
        assert set(comparison.results) == {"ONES", "FIFO"}
        assert comparison.config.num_gpus == 8
        assert len(comparison.trace) == 3
        averages = comparison.averages("jct")
        assert averages["ONES"] == pytest.approx(sweep.get("ONES", seed=7).mean("jct"))
        assert set(comparison.improvements("ONES")) == {"FIFO"}
        assert comparison.artifacts["FIFO"] is sweep.get("FIFO", seed=7)


class TestRunnerCaching:
    def test_resume_skips_cached_cells(self, tmp_path):
        spec = tiny_grid(seeds=(7,))
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        first = runner.run(spec)
        assert runner.stats.executed_cells == spec.num_cells
        assert runner.stats.cached_cells == 0
        # Every cell artifact landed on disk under its content key.
        for cell in spec.expand():
            assert runner.cell_path(cell).exists()
        # A resumed run executes nothing and returns identical artifacts.
        resumed = runner.run(spec, resume=True)
        assert runner.stats.executed_cells == 0
        assert runner.stats.cached_cells == spec.num_cells
        assert resumed.runs == first.runs

    def test_resume_only_runs_missing_cells(self, tmp_path):
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        runner.run(tiny_grid(seeds=(7,)))
        # Growing the grid re-uses the overlapping cells.
        grown = tiny_grid(seeds=(7, 9))
        result = runner.run(grown, resume=True)
        assert runner.stats.cached_cells == 2
        assert runner.stats.executed_cells == 2
        assert len(result) == grown.num_cells

    def test_without_resume_cells_rerun(self, tmp_path):
        spec = tiny_grid(seeds=(7,))
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        runner.run(spec)
        runner.run(spec)
        assert runner.stats.executed_cells == spec.num_cells
        assert runner.stats.cached_cells == 0

    def test_changed_spec_misses_cache(self, tmp_path):
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        runner.run(tiny_grid(seeds=(7,)))
        changed = tiny_grid(seeds=(7,), scheduler_options={"ONES": {"population_size": 5}})
        runner.run(changed, resume=True)
        assert runner.stats.executed_cells == 1  # only the ONES cell changed
        assert runner.stats.cached_cells == 1

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        spec = tiny_grid(seeds=(7,))
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        runner.run(spec)
        victim = runner.cell_path(spec.expand()[0])
        victim.write_text("{not json")
        resumed = runner.run(spec, resume=True)
        assert runner.stats.executed_cells == 1
        assert runner.stats.cached_cells == 1
        assert len(resumed) == spec.num_cells
        # ... and the cell was re-cached with valid content.
        assert json.loads(victim.read_text())["spec"]["scheduler"] == "ONES"

    def test_mismatched_spec_in_cache_is_ignored(self, tmp_path):
        spec = tiny_grid(seeds=(7,))
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        sweep = runner.run(spec)
        cells = spec.expand()
        # Masquerade: put cell B's artifact at cell A's content key.
        runner.cell_path(cells[0]).write_text(sweep.runs[1].to_json())
        runner.run(spec, resume=True)
        assert runner.stats.executed_cells == 1

    def test_no_cache_dir_never_resumes(self):
        spec = tiny_grid(seeds=(7,))
        runner = Runner(backend="serial")
        runner.run(spec, resume=True)
        assert runner.stats.executed_cells == spec.num_cells
        assert runner.cell_path(spec.expand()[0]) is None

    def test_interrupted_run_keeps_finished_cells(self, tmp_path):
        """Cells are cached as they complete, not after the whole batch."""
        from repro.experiments.registry import create_scheduler

        spec = tiny_grid(seeds=(7,))  # cells: ONES then FIFO

        def resolver(name, seed, **options):
            if name == "FIFO":
                raise RuntimeError("simulated crash mid-sweep")
            return create_scheduler(name, seed, **options)

        crashing = Runner(
            backend=SerialBackend(resolver=resolver), cache_dir=tmp_path / "cells"
        )
        with pytest.raises(RuntimeError, match="mid-sweep"):
            crashing.run(spec)
        # The completed ONES cell survived; resume only re-runs FIFO.
        runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        runner.run(spec, resume=True)
        assert runner.stats.cached_cells == 1
        assert runner.stats.executed_cells == 1

    def test_parallel_runner_with_cache_matches_serial(self, tmp_path):
        spec = tiny_grid(seeds=(7,))
        serial = run_experiment(spec)
        parallel = run_experiment(
            spec, backend="process", workers=2, cache_dir=tmp_path / "cells"
        )
        assert serial.runs == parallel.runs
        # A serial resume over the pool-written cache reuses everything.
        resumed_runner = Runner(backend="serial", cache_dir=tmp_path / "cells")
        resumed = resumed_runner.run(spec, resume=True)
        assert resumed_runner.stats.executed_cells == 0
        assert resumed.runs == serial.runs
