"""Tests for the repro-ones command-line interface."""

import json

import pytest

from repro.cli import SCHEDULERS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_schedulers_available(self):
        assert {"ones", "drl", "tiresias", "optimus", "gandiva", "fifo", "srtf"} <= set(SCHEDULERS)

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "ones"
        assert args.gpus == 64


class TestTraceCommand:
    def test_writes_trace_json(self, tmp_path, capsys):
        output = tmp_path / "trace.json"
        code = main(["trace", "--jobs", "6", "--seed", "3", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert len(payload) == 6
        assert "Wrote 6 jobs" in capsys.readouterr().out


class TestRunCommand:
    def test_run_fifo_on_generated_trace(self, tmp_path, capsys):
        csv_path = tmp_path / "jobs.csv"
        code = main([
            "run", "--scheduler", "fifo", "--gpus", "8", "--jobs", "3",
            "--arrival-interval", "10", "--seed", "4", "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average_jct" in out
        assert csv_path.exists()

    def test_run_replays_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(["trace", "--jobs", "3", "--seed", "5", "--output", str(trace_path)])
        capsys.readouterr()
        code = main([
            "run", "--scheduler", "tiresias", "--gpus", "8",
            "--trace", str(trace_path), "--seed", "5",
        ])
        assert code == 0
        assert "completed_jobs" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_serial_with_exports(self, tmp_path, capsys):
        json_path = tmp_path / "compare.json"
        code = main([
            "compare", "--schedulers", "fifo", "srtf", "--gpus", "8", "--jobs", "3",
            "--arrival-interval", "10", "--seed", "4", "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Average JCT" in out
        assert "2 executed" in out
        payload = json.loads(json_path.read_text())
        assert set(payload["averages"]["jct"]) == {"FIFO", "SRTF"}

    def test_compare_parallel_resume_uses_cache(self, tmp_path, capsys):
        args = [
            "compare", "--schedulers", "fifo", "tiresias", "--gpus", "8", "--jobs", "3",
            "--arrival-interval", "10", "--seed", "4", "--workers", "2",
            "--output-dir", str(tmp_path / "out"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 from cache" in first
        assert "process backend" in first
        assert (tmp_path / "out" / "sweep_report.md").exists()
        assert len(list((tmp_path / "out" / "cells").glob("cell-*.json"))) == 2
        # Resuming executes nothing but prints the same results.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 from cache" in second
        assert first.splitlines()[1:] == second.splitlines()[1:]


class TestSweepCommand:
    def test_duplicate_cli_values_tolerated(self, capsys):
        code = main([
            "sweep", "--capacities", "8", "8", "--schedulers", "fifo", "fifo",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4", "4",
        ])
        assert code == 0
        assert "1 cells: 1 executed" in capsys.readouterr().out

    def test_resume_requires_output_dir(self):
        with pytest.raises(SystemExit, match="output-dir"):
            main(["sweep", "--capacities", "8", "--jobs", "3", "--resume"])

    def test_capacities_chart_in_sorted_order(self, capsys):
        code = main([
            "sweep", "--capacities", "16", "8", "--schedulers", "fifo",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith(("8 ", "16 "))]
        assert lines[0].startswith("8")
        assert lines[1].startswith("16")

    def test_sweep_over_capacities(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "--capacities", "8", "12", "--schedulers", "fifo", "srtf",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 17" in out
        assert "4 cells: 4 executed" in out
        payload = json.loads(json_path.read_text())
        assert set(payload) == {"8", "12"}

    def test_multi_trace_grid_via_traces_flag(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "--capacities", "8", "--schedulers", "fifo",
            "--traces", "3", "5", "--arrival-interval", "10", "--seeds", "4",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        # one cell per (scheduler, capacity, seed, trace)
        assert "2 cells: 2 executed" in out
        # multi-trace sweeps persist the full artifact (legacy export has
        # no trace axis)
        payload = json.loads(json_path.read_text())
        assert len(payload["spec"]["traces"]) == 2
        assert len(payload["runs"]) == 2

    def test_traces_flag_deduplicates(self, capsys):
        code = main([
            "sweep", "--capacities", "8", "--schedulers", "fifo",
            "--traces", "3", "3", "--arrival-interval", "10", "--seeds", "4",
        ])
        assert code == 0
        assert "1 cells: 1 executed" in capsys.readouterr().out

    def test_profile_flag_prints_phase_table(self, capsys):
        code = main([
            "sweep", "--capacities", "8", "--schedulers", "fifo",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4",
            "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-phase wall-clock" in out
        assert "advance_s" in out


class TestQueueBackendCLI:
    def test_queue_backend_requires_queue_dir(self):
        with pytest.raises(SystemExit, match="queue-dir"):
            main(["sweep", "--capacities", "8", "--jobs", "3", "--backend", "queue"])

    def test_queue_dir_requires_queue_backend(self, tmp_path):
        with pytest.raises(SystemExit, match="backend queue"):
            main(["sweep", "--capacities", "8", "--jobs", "3",
                  "--queue-dir", str(tmp_path / "q")])

    def test_sweep_on_queue_backend_and_queue_status(self, tmp_path, capsys):
        queue_dir = tmp_path / "qdir"
        code = main([
            "sweep", "--capacities", "8", "--schedulers", "fifo",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4",
            "--backend", "queue", "--queue-dir", str(queue_dir), "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cells: 1 executed" in out
        assert "queue backend" in out
        # The durable state survives the sweep and is inspectable.
        code = main(["queue-status", str(queue_dir), "--cells"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cells" in out
        assert "completed" in out
        assert "FIFO@8g/seed4" in out

    def test_queue_status_rejects_non_queue_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="queue.json"):
            main(["queue-status", str(tmp_path)])

    def test_queue_status_json_is_machine_readable(self, tmp_path, capsys):
        queue_dir = tmp_path / "qdir"
        code = main([
            "sweep", "--capacities", "8", "--schedulers", "fifo",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4",
            "--backend", "queue", "--queue-dir", str(queue_dir), "--workers", "1",
        ])
        assert code == 0
        capsys.readouterr()
        code = main(["queue-status", str(queue_dir), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["states"]["completed"] == 1
        assert payload["lease_ttl"] > 0
        (cell,) = payload["cells"]
        assert cell["state"] == "completed"
        assert cell["label"] == "FIFO@8g/seed4"
        # Lease timing only appears on PROCESSING cells.
        assert "lease_age_s" not in cell

    def test_dead_cells_exit_nonzero_with_summary_table(self, tmp_path, capsys,
                                                        monkeypatch):
        # Poison one cell after the grid expands: the sweep must finish,
        # print the dead-cell table and exit non-zero (satellite of the
        # queue-robustness PR; exercised end to end in the queue tests).
        import repro.cli as cli
        from repro.experiments.artifacts import SweepArtifact, dead_cell_artifact
        from repro.experiments.backends import execute_run

        def fake_run_grid(runner, spec, resume):
            cells = spec.expand()
            runs = [execute_run(cells[0]),
                    dead_cell_artifact(cells[1], "RuntimeError: poisoned", attempts=2)]
            return SweepArtifact(spec=spec, runs=runs)

        monkeypatch.setattr(cli, "_run_grid", fake_run_grid)
        code = main([
            "sweep", "--capacities", "8", "--schedulers", "fifo", "srtf",
            "--jobs", "3", "--arrival-interval", "10", "--seeds", "4",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "ERROR: 1 of 2 cells ended dead" in out
        assert "poisoned" in out
        assert "SRTF@8g/seed4" in out


class TestSchedulersCommand:
    def test_cli_sees_schedulers_registered_after_import(self, capsys):
        """SCHEDULERS is a live registry view, not an import-time snapshot."""
        from repro.baselines.base import SchedulerCapabilities
        from repro.baselines.fifo import FIFOScheduler
        from repro.experiments.registry import register_scheduler, unregister_scheduler

        caps = SchedulerCapabilities(
            strategy="greedy", allows_preemption=False,
            elastic_job_size=False, elastic_batch_size=False,
        )
        register_scheduler("LatePolicy", capabilities=caps)(lambda seed: FIFOScheduler())
        try:
            assert "latepolicy" in SCHEDULERS
            code = main([
                "run", "--scheduler", "latepolicy", "--gpus", "8", "--jobs", "3",
                "--arrival-interval", "10", "--seed", "4",
            ])
            assert code == 0
            assert "completed_jobs" in capsys.readouterr().out
        finally:
            unregister_scheduler("LatePolicy")
        assert "latepolicy" not in SCHEDULERS

    def test_lists_registry(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("ONES", "DRL", "Tiresias", "Optimus", "Gandiva", "FIFO", "SRTF"):
            assert name in out

    def test_paper_only(self, capsys):
        assert main(["schedulers", "--paper-only"]) == 0
        out = capsys.readouterr().out
        assert "ONES" in out
        assert "Gandiva" not in out


class TestFiguresCommand:
    def test_fig16_report(self, capsys):
        code = main(["figures", "--which", "fig16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 16" in out
        assert "vgg16" in out

    def test_fig2_report(self, capsys):
        code = main(["figures", "--which", "fig2"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out


class TestServiceCommands:
    def test_parse_tenant_flag_variants(self):
        from repro.cli import _parse_tenant_flag

        quota = _parse_tenant_flag("alice")
        assert quota.tenant == "alice"
        quota = _parse_tenant_flag("alice:16")
        assert (quota.tenant, quota.max_gpus) == ("alice", 16)
        quota = _parse_tenant_flag("alice:16:4")
        assert (quota.max_gpus, quota.max_active) == (16, 4)
        with pytest.raises(SystemExit):
            _parse_tenant_flag(":8")
        with pytest.raises(SystemExit):
            _parse_tenant_flag("a:1:2:3")

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--gpus", "32",
                                          "--tenant", "a:8", "--port", "0"])
        assert args.command == "serve"
        assert args.mode == "virtual"
        assert args.tenant == ["a:8"]

    def test_submit_parser_batch_flags(self):
        args = build_parser().parse_args([
            "submit", "--tenant", "a", "--count", "5",
            "--arrival-profile", "diurnal", "--json",
        ])
        assert args.count == 5
        assert args.arrival_profile == "diurnal"
        assert args.json

    def test_service_status_parser(self):
        args = build_parser().parse_args(["service-status", "--metrics", "--drain"])
        assert args.metrics and args.drain

    def test_serve_and_submit_round_trip(self, tmp_path):
        """Full loop: spawn `serve`, drive it with `submit`/`service-status`."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        log_path = tmp_path / "serve.log"
        with open(log_path, "w") as log:
            server = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve", "--scheduler", "ones",
                 "--gpus", "8", "--port", "0", "--tenant", "cli-t"],
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
        try:
            port = None
            for _ in range(100):
                text = log_path.read_text()
                if "listening on" in text:
                    port = int(text.split(" on ")[1].split()[0].rsplit(":", 1)[1])
                    break
                time.sleep(0.2)
            assert port, f"server never announced readiness: {log_path.read_text()}"
            submit = subprocess.run(
                [sys.executable, "-m", "repro.cli", "submit", "--port", str(port),
                 "--tenant", "cli-t", "--replicas", "2", "--json"],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert submit.returncode == 0, submit.stderr
            decision = json.loads(submit.stdout.strip().splitlines()[-1])
            assert decision["status"] == "placed"
            status = subprocess.run(
                [sys.executable, "-m", "repro.cli", "service-status",
                 "--port", str(port), "--json"],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert status.returncode == 0, status.stderr
            payload = json.loads(status.stdout)
            assert payload["status"]["submissions"] == 1
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=15) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)


class TestTraceObservability:
    """``--trace-out`` recording plus the ``trace TRACE_FILE`` inspector."""

    @pytest.fixture(autouse=True)
    def _clean_tracer(self):
        from repro.obs.trace import uninstall_tracer

        uninstall_tracer()
        yield
        uninstall_tracer()

    @pytest.fixture()
    def recorded_trace(self, tmp_path, capsys):
        path = tmp_path / "run.trace.jsonl"
        code = main([
            "run", "--scheduler", "ones", "--gpus", "8", "--jobs", "3",
            "--arrival-interval", "10", "--seed", "4",
            "--trace-out", str(path),
        ])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        return path

    def test_run_trace_out_writes_valid_jsonl(self, recorded_trace):
        from repro.obs.trace import load_jsonl, validate_trace_file

        assert validate_trace_file(str(recorded_trace)) == []
        meta, records = load_jsonl(str(recorded_trace))
        assert meta["schema"] == "repro.trace"
        assert records
        assert {r["cat"] for r in records} >= {"kernel", "ones"}

    def test_inspector_summary(self, recorded_trace, capsys):
        code = main(["trace", str(recorded_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "kernel" in out
        assert "reconfig_decision" in out

    def test_inspector_tree_and_filter(self, recorded_trace, capsys):
        code = main([
            "trace", str(recorded_trace), "--tree", "--filter-cat", "ones",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ones/" in out
        assert "kernel/" not in out

    def test_inspector_chrome_export(self, recorded_trace, tmp_path, capsys):
        chrome = tmp_path / "chrome.json"
        code = main(["trace", str(recorded_trace), "--chrome", str(chrome)])
        assert code == 0
        assert "Perfetto" in capsys.readouterr().out
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]

    def test_inspector_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "event"}\n')
        code = main(["trace", str(bad)])
        assert code == 1
        assert "SCHEMA ERRORS" in capsys.readouterr().out

    def test_generate_mode_still_requires_output(self):
        with pytest.raises(SystemExit, match="--output is required"):
            main(["trace", "--jobs", "4"])

    def test_compare_rejects_trace_out_with_parallel_backend(self, tmp_path):
        with pytest.raises(SystemExit, match="trace-out"):
            main([
                "compare", "--gpus", "8", "--jobs", "2",
                "--schedulers", "fifo", "--backend", "process",
                "--trace-out", str(tmp_path / "t.jsonl"),
            ])

    def test_queue_status_since_flag_parses(self):
        args = build_parser().parse_args(["queue-status", "q", "--since", "60"])
        assert args.since == 60.0
