"""Tests for the repro-ones command-line interface."""

import json

import pytest

from repro.cli import SCHEDULERS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_schedulers_available(self):
        assert {"ones", "drl", "tiresias", "optimus", "gandiva", "fifo", "srtf"} <= set(SCHEDULERS)

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "ones"
        assert args.gpus == 64


class TestTraceCommand:
    def test_writes_trace_json(self, tmp_path, capsys):
        output = tmp_path / "trace.json"
        code = main(["trace", "--jobs", "6", "--seed", "3", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert len(payload) == 6
        assert "Wrote 6 jobs" in capsys.readouterr().out


class TestRunCommand:
    def test_run_fifo_on_generated_trace(self, tmp_path, capsys):
        csv_path = tmp_path / "jobs.csv"
        code = main([
            "run", "--scheduler", "fifo", "--gpus", "8", "--jobs", "3",
            "--arrival-interval", "10", "--seed", "4", "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "average_jct" in out
        assert csv_path.exists()

    def test_run_replays_saved_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(["trace", "--jobs", "3", "--seed", "5", "--output", str(trace_path)])
        capsys.readouterr()
        code = main([
            "run", "--scheduler", "tiresias", "--gpus", "8",
            "--trace", str(trace_path), "--seed", "5",
        ])
        assert code == 0
        assert "completed_jobs" in capsys.readouterr().out


class TestFiguresCommand:
    def test_fig16_report(self, capsys):
        code = main(["figures", "--which", "fig16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 16" in out
        assert "vgg16" in out

    def test_fig2_report(self, capsys):
        code = main(["figures", "--which", "fig2"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out
