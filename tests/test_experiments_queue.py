"""Durable work queue: lease protocol, queue backend parity, worker chaos.

Three layers of coverage, cheapest first:

* :class:`TestWorkQueue` — deterministic unit tests of the lease/claim/
  complete protocol itself, driven entirely through explicit ``now=``
  clocks (no sleeping, no subprocesses).
* :class:`TestQueueBackend` — the backend through the public Runner API:
  bit-identical parity with serial execution, idempotent resume, dead
  cells surfacing as placeholders.
* :class:`TestWorkerChaos` — the headline robustness drill: a real
  worker subprocess is SIGKILLed *mid-cell*, its lease expires, a second
  worker re-claims the cell, and the finished sweep is byte-identical to
  a serial run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.experiments.artifacts import SweepArtifact, dead_cell_artifact
from repro.experiments.backends import ExecutionPolicy, execute_run
from repro.experiments.orchestrator import Runner
from repro.experiments.queue import CellState, LeaseLostError, WorkQueue
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.workload.trace import TraceConfig


def _trace(**overrides) -> TraceConfig:
    base = dict(num_jobs=2, arrival_rate=0.1, convergence_patience=4)
    base.update(overrides)
    return TraceConfig(**base)


def _spec(**overrides) -> RunSpec:
    base = dict(scheduler="FIFO", num_gpus=8, seed=7, trace=_trace())
    base.update(overrides)
    return RunSpec(**base)


def _grid(**overrides) -> ExperimentSpec:
    schedulers = overrides.pop("schedulers", ("FIFO",))
    return ExperimentSpec(
        schedulers=tuple(schedulers),
        capacities=tuple(overrides.pop("capacities", (8,))),
        seeds=tuple(overrides.pop("seeds", (7,))),
        traces=(_trace(),),
        **overrides,
    )


def _specs(n: int):
    return [_spec(seed=seed) for seed in range(1, n + 1)]


class TestWorkQueue:
    def test_enqueue_is_idempotent_by_content_key(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        key, newly = queue.enqueue(_spec())
        assert newly
        assert key == _spec().cell_key()
        again, newly_again = queue.enqueue(_spec())
        assert again == key
        assert not newly_again
        assert queue.status().pending == 1

    def test_claim_is_exclusive_and_in_enqueue_order(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60.0)
        keys = queue.enqueue_all(_specs(2))
        first = queue.claim("alice", now=100.0)
        second = queue.claim("bob", now=100.0)
        assert first is not None and second is not None
        assert first[0] == keys[0]  # enqueue order == spec order
        assert second[0] == keys[1]
        assert queue.claim("carol", now=100.0) is None  # all leased
        assert queue.status(now=100.0).processing == 2

    def test_expired_lease_returns_cell_to_pending_and_charges_attempt(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0,
                          policy=ExecutionPolicy(max_retries=2))
        (key,) = queue.enqueue_all(_specs(1))
        assert queue.claim("alice", now=100.0) is not None
        assert queue.expire_leases(now=104.0) == 0  # still inside the TTL
        assert queue.expire_leases(now=106.0) == 1
        # The recovered cell shows as FAILED (one attempt charged) but is
        # immediately claimable again — FAILED is a retryable state.
        assert queue.state(key, now=106.0) is CellState.FAILED
        assert queue.attempts(key) == 1
        # The recovered cell is claimable by anyone.
        reclaim = queue.claim("bob", now=106.0)
        assert reclaim is not None and reclaim[0] == key

    def test_claim_itself_retires_a_stale_lease(self, tmp_path):
        # Recovery must not require a dedicated expire_leases() pass.
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0,
                          policy=ExecutionPolicy(max_retries=2))
        (key,) = queue.enqueue_all(_specs(1))
        assert queue.claim("alice", now=100.0) is not None
        reclaim = queue.claim("bob", now=200.0)
        assert reclaim is not None and reclaim[0] == key
        assert queue.status(now=200.0).expired_leases == 1

    def test_heartbeat_extends_and_rejects_non_holders(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        deadline = queue.heartbeat(key, "alice", now=103.0)
        assert deadline == pytest.approx(108.0)
        assert queue.expire_leases(now=106.0) == 0  # renewed past the old deadline
        with pytest.raises(LeaseLostError):
            queue.heartbeat(key, "mallory", now=103.0)

    def test_fail_applies_exponential_backoff_gate(self, tmp_path):
        policy = ExecutionPolicy(max_retries=2, retry_backoff_s=10.0)
        queue = WorkQueue(tmp_path / "q", lease_ttl=60.0, policy=policy)
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        state = queue.fail(key, "alice", "boom", now=100.0)
        assert state is CellState.FAILED
        # First retry waits retry_backoff_s * 2**0 = 10 s.
        assert queue.claim("alice", now=105.0) is None
        assert queue.state(key, now=105.0) is CellState.FAILED
        assert queue.claim("alice", now=111.0) is not None
        # Second failure doubles the gate (20 s) and is visible in the log.
        queue.fail(key, "alice", "boom again", now=111.0)
        assert queue.claim("alice", now=130.0) is None
        assert queue.claim("alice", now=132.0) is not None
        records = [json.loads(line) for line in
                   (tmp_path / "q" / "log.jsonl").read_text().splitlines()]
        backoffs = [r["backoff_s"] for r in records if r["event"] == "failed"]
        assert backoffs == [10.0, 20.0]

    def test_retry_budget_exhaustion_goes_dead_not_dropped(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60.0,
                          policy=ExecutionPolicy(max_retries=1))
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        assert queue.fail(key, "alice", "boom 1", now=100.0) is CellState.FAILED
        queue.claim("alice", now=200.0)
        assert queue.fail(key, "alice", "boom 2", now=200.0) is CellState.DEAD
        assert queue.state(key) is CellState.DEAD
        assert queue.claim("bob", now=300.0) is None  # dead cells are never re-offered
        info = queue.dead_info(key)
        assert info is not None and "boom 2" in info["error"]
        status = queue.status()
        assert status.dead == 1 and status.terminal

    def test_lease_expiries_charge_the_same_retry_budget(self, tmp_path):
        # A cell that keeps killing its workers must converge to DEAD,
        # not crash-loop forever.
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0,
                          policy=ExecutionPolicy(max_retries=1))
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("w1", now=100.0)
        assert queue.expire_leases(now=110.0) == 1  # attempt 1 spent
        queue.claim("w2", now=110.0)
        assert queue.expire_leases(now=120.0) == 1  # attempt 2 > budget
        assert queue.state(key) is CellState.DEAD
        assert "expired" in queue.dead_info(key)["error"]

    def test_complete_publishes_a_loadable_artifact(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60.0)
        spec = _spec()
        (key,) = queue.enqueue_all([spec])
        queue.claim("alice", now=100.0)
        artifact = execute_run(spec)
        queue.complete(key, "alice", artifact)
        assert queue.state(key) is CellState.COMPLETED
        loaded = queue.load_result(key)
        assert loaded is not None
        assert loaded.to_json() == artifact.to_json()
        assert queue.status().terminal

    def test_partial_result_write_is_detected_and_ignored(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60.0)
        spec = _spec()
        (key,) = queue.enqueue_all([spec])
        artifact = execute_run(spec)
        # Truncated file: fails to parse.
        queue.result_path(key).write_text(artifact.to_json()[: len(artifact.to_json()) // 2])
        assert queue.load_result(key) is None
        # Parseable file whose content hash does not match the cell: a
        # different cell's artifact copied (or hand-edited) into place.
        other = execute_run(_spec(seed=99))
        queue.result_path(key).write_text(other.to_json() + "\n")
        assert queue.load_result(key) is None

    def test_fresh_instance_resumes_from_the_log(self, tmp_path):
        path = tmp_path / "q"
        first = WorkQueue(path, lease_ttl=42.0,
                          policy=ExecutionPolicy(max_retries=3, retry_backoff_s=1.5))
        keys = first.enqueue_all(_specs(2))
        first.claim("alice", now=100.0)
        first.fail(keys[0], "alice", "boom", now=100.0)
        # A second process opens the same directory: config and state are
        # rebuilt from queue.json + the log, not from memory.
        second = WorkQueue(path)
        assert second.lease_ttl == 42.0
        assert second.policy.max_retries == 3
        assert second.policy.retry_backoff_s == 1.5
        assert second.attempts(keys[0]) == 1
        status = second.status(now=100.0)
        assert status.pending == 1 and status.failed == 1
        assert second.enqueue(_spec(seed=1)) == (keys[0], False)


class TestClockSafety:
    """Stepped-clock regressions: NTP steps/skew must not break leases.

    Lease deadlines are wall-clock timestamps compared across hosts, so
    expiry gets ``skew_margin`` seconds of slack (default 1.0).  These
    tests drive the protocol with explicit ``now=`` clocks that disagree
    the way stepped/offset host clocks do.
    """

    def test_small_forward_step_cannot_steal_a_healthy_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
        queue.enqueue_all(_specs(1))
        key, _ = queue.claim("alice", now=100.0)  # deadline 105.0
        # An observer whose clock stepped 0.9s ahead of the worker's sees
        # now=105.9 — past the raw deadline, inside the margin.
        assert queue.expire_leases(now=105.9) == 0
        assert queue.state(key, now=105.9) is CellState.PROCESSING
        assert queue.claim("mallory", now=105.9) is None

    def test_step_past_the_margin_still_fails_over(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0,
                          policy=ExecutionPolicy(max_retries=2))
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        # Dead-worker detection is delayed by exactly the margin, never lost.
        assert queue.expire_leases(now=106.0) == 1
        assert queue.state(key, now=106.0) is CellState.FAILED
        assert queue.attempts(key) == 1

    def test_zero_margin_reproduces_the_raw_deadline(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0, skew_margin=0.0)
        queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        assert queue.expire_leases(now=104.9) == 0
        assert queue.expire_leases(now=105.0) == 1

    def test_heartbeat_renewal_pushes_the_margin_window(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        assert queue.heartbeat(key, "alice", now=103.0) == 108.0
        assert queue.expire_leases(now=108.9) == 0  # inside renewed margin
        assert queue.expire_leases(now=109.0) == 1

    def test_margin_is_persisted_and_shared_via_queue_json(self, tmp_path):
        path = tmp_path / "q"
        first = WorkQueue(path, lease_ttl=5.0, skew_margin=2.5)
        config = json.loads((path / "queue.json").read_text())
        assert config["skew_margin"] == 2.5
        second = WorkQueue(path)  # another process: same margin
        assert second.skew_margin == 2.5
        second.enqueue_all(_specs(1))
        second.claim("alice", now=100.0)
        assert second.expire_leases(now=107.0) == 0  # 105 + 2.5 margin
        assert second.expire_leases(now=107.5) == 1

    def test_legacy_queue_config_without_margin_gets_no_slack(self, tmp_path):
        path = tmp_path / "q"
        WorkQueue(path, lease_ttl=5.0)
        config_path = path / "queue.json"
        config = json.loads(config_path.read_text())
        del config["skew_margin"]  # a queue.json written before the margin existed
        config_path.write_text(json.dumps(config))
        reopened = WorkQueue(path)
        assert reopened.skew_margin == 0.0

    def test_negative_margin_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path / "q", skew_margin=-0.1)

    def test_snapshot_reports_the_margin(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
        queue.enqueue_all(_specs(1))
        assert queue.as_json(now=100.0)["skew_margin"] == 1.0


class TestQueueBackend:
    def test_queue_sweep_is_bit_identical_to_serial(self, tmp_path):
        spec = _grid(schedulers=("FIFO", "SRTF"), seeds=(7, 8))
        serial = Runner(backend="serial").run(spec)
        runner = Runner(backend="queue", queue_dir=tmp_path / "q", workers=2,
                        lease_ttl=60.0)
        sweep = runner.run(spec)
        assert sweep.to_json() == serial.to_json()
        assert runner.stats.claimed_cells == 4
        assert runner.stats.dead_cells == 0

    def test_fresh_run_resumes_idempotently_by_cell_key(self, tmp_path):
        spec = _grid(seeds=(7, 8))
        queue_dir = tmp_path / "q"
        first = Runner(backend="queue", queue_dir=queue_dir, workers=1, lease_ttl=60.0)
        sweep = first.run(spec)
        # Second invocation against the same directory: nothing re-runs —
        # even with zero workers attached, every cell is already terminal.
        second = Runner(backend="queue", queue_dir=queue_dir, workers=0, lease_ttl=60.0)
        resumed = second.run(spec)
        assert resumed.to_json() == sweep.to_json()
        assert second.stats.claimed_cells == first.stats.claimed_cells  # no new claims

    def test_poisoned_cell_lands_dead_with_placeholder(self, tmp_path):
        # "NoSuchScheduler" passes spec validation but fails at execution
        # time on every attempt — the queue must finish the grid anyway.
        spec = _grid(schedulers=("FIFO", "NoSuchScheduler"))
        runner = Runner(backend="queue", queue_dir=tmp_path / "q", workers=1,
                        lease_ttl=60.0, max_retries=1)
        sweep = runner.run(spec)
        assert len(sweep.runs) == 2
        dead = sweep.dead_runs()
        assert len(dead) == 1
        assert dead[0].spec.scheduler == "NoSuchScheduler"
        assert dead[0].is_dead
        assert "NoSuchScheduler" in dead[0].error or "failed attempts" in dead[0].error
        assert runner.stats.dead_cells == 1
        assert "1 dead" in runner.stats.describe()
        # The healthy cell still produced its artifact.
        healthy = [run for run in sweep.runs if not run.is_dead]
        assert len(healthy) == 1
        assert healthy[0].to_json() == execute_run(healthy[0].spec).to_json()

    def test_dead_placeholder_never_enters_the_resume_cache(self, tmp_path):
        spec = _grid(schedulers=("NoSuchScheduler",))
        runner = Runner(backend="queue", queue_dir=tmp_path / "q", workers=1,
                        lease_ttl=60.0, cache_dir=tmp_path / "cells")
        sweep = runner.run(spec)
        assert sweep.dead_runs()
        assert list((tmp_path / "cells").glob("*.json")) == []

    def test_queue_dir_argument_validation(self, tmp_path):
        with pytest.raises(ValueError, match="queue_dir"):
            Runner(backend="queue")
        with pytest.raises(ValueError, match="queue"):
            Runner(backend="serial", queue_dir=tmp_path / "q")


def _worker_env() -> dict:
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return env


def _start_worker(queue_dir: Path, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.worker", str(queue_dir), *extra],
        env=_worker_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_log_event(queue_dir: Path, event: str, timeout: float = 60.0) -> None:
    log = queue_dir / "log.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if log.exists():
            for line in log.read_text().splitlines():
                try:
                    if json.loads(line).get("event") == event:
                        return
                except json.JSONDecodeError:
                    continue  # torn tail line mid-write
        time.sleep(0.1)
    raise AssertionError(f"no {event!r} record appeared in {log} within {timeout}s")


class TestWorkerChaos:
    def test_sigkilled_worker_is_recovered_and_sweep_matches_serial(self, tmp_path):
        """The acceptance drill: kill -9 a worker mid-cell, finish anyway."""
        spec = _spec()
        serial = execute_run(spec)
        queue_dir = tmp_path / "q"
        queue = WorkQueue(queue_dir, lease_ttl=1.0,
                          policy=ExecutionPolicy(max_retries=3))
        (key,) = queue.enqueue_all([spec])

        # Worker 1 claims the cell, then holds it (simulating a long cell)
        # without ever reaching the execute step — SIGKILL lands mid-cell.
        victim = _start_worker(queue_dir, "--hold-s", "120", "--worker-id", "victim")
        try:
            _wait_for_log_event(queue_dir, "claimed")
            claim_time = time.time()
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()

        # At claim time the dead worker still holds a live lease; nothing
        # has retired it yet (the lease file is still in place).
        assert queue.state(key, now=claim_time) is CellState.PROCESSING

        # Worker 2 arrives, expires the stale lease, re-claims, finishes.
        rescuer = _start_worker(queue_dir, "--exit-when-done", "--worker-id", "rescuer")
        try:
            assert rescuer.wait(timeout=120) == 0
        finally:
            if rescuer.poll() is None:
                rescuer.kill()

        status = queue.status()
        assert status.completed == 1
        assert status.expired_leases == 1
        assert status.claims == 2  # victim's claim + rescuer's re-claim
        recovered = queue.load_result(key)
        assert recovered is not None
        assert recovered.to_json() == serial.to_json()
        # The log tells the whole story, in order, durably.
        events = [json.loads(line)["event"]
                  for line in (queue_dir / "log.jsonl").read_text().splitlines()]
        assert events == ["enqueued", "claimed", "expired", "claimed", "completed"]

    def test_runner_waits_out_an_externally_killed_worker(self, tmp_path):
        """Same drill through Runner.run: the waiting side drives expiry."""
        spec = _grid()
        queue_dir = tmp_path / "q"
        # Pre-create the queue so the external victim can claim before the
        # Runner attaches (the Runner enqueues the same cell idempotently).
        queue = WorkQueue(queue_dir, lease_ttl=1.0,
                          policy=ExecutionPolicy(max_retries=3))
        queue.enqueue_all(spec.expand())
        victim = _start_worker(queue_dir, "--hold-s", "120", "--worker-id", "victim")
        try:
            _wait_for_log_event(queue_dir, "claimed")
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()

        runner = Runner(backend="queue", queue_dir=queue_dir, workers=1,
                        lease_ttl=1.0, max_retries=3)
        sweep = runner.run(spec)
        serial = Runner(backend="serial").run(spec)
        assert sweep.to_json() == serial.to_json()
        assert runner.stats.expired_leases == 1
        assert "1 leases expired" in runner.stats.describe()


class TestDeadCellPlaceholders:
    def test_dead_cell_artifact_shape(self):
        spec = _spec()
        placeholder = dead_cell_artifact(spec, "ValueError: boom", attempts=3)
        assert placeholder.is_dead
        assert "boom" in placeholder.error
        assert "3 failed attempts" in placeholder.error
        payload = placeholder.to_dict()
        assert payload["error"] == placeholder.error
        round_tripped = type(placeholder).from_dict(payload)
        assert round_tripped.is_dead
        assert round_tripped.error == placeholder.error

    def test_live_artifacts_serialise_without_error_key(self):
        artifact = execute_run(_spec())
        assert not artifact.is_dead
        assert "error" not in artifact.to_dict()  # historical schema unchanged

    def test_sweep_aggregations_skip_dead_cells(self):
        spec = _grid(schedulers=("FIFO", "SRTF"))
        cells = spec.expand()
        runs = [
            execute_run(cells[0]),
            dead_cell_artifact(cells[1], "RuntimeError: poisoned"),
        ]
        sweep = SweepArtifact(spec=spec, runs=runs)
        assert len(sweep.dead_runs()) == 1
        table = sweep.mean_metric_table("jct")
        assert "FIFO" in table and table["FIFO"]
        assert not table.get("SRTF")  # no live cells -> no entries


class TestQueueObservability:
    """Trace events for lease transitions, and the --since event-log filter."""

    @pytest.fixture(autouse=True)
    def _clean_tracer(self):
        from repro.obs.trace import uninstall_tracer

        uninstall_tracer()
        yield
        uninstall_tracer()

    def test_lease_transitions_mirror_into_the_trace(self, tmp_path):
        from repro.obs.trace import TraceRecorder, install_tracer

        tracer = install_tracer(TraceRecorder())
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0,
                          policy=ExecutionPolicy(max_retries=0))
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        queue.fail(key, "alice", "boom", now=101.0)
        names = [r["name"] for r in tracer.records() if r["cat"] == "queue"]
        assert names[0] == "enqueued"
        assert "claimed" in names
        assert "failed" in names
        assert "dead" in names  # max_retries=0: first failure goes terminal
        claimed = next(r for r in tracer.records() if r["name"] == "claimed")
        assert claimed["attrs"]["cell"] == key
        assert claimed["attrs"]["worker"] == "alice"
        assert claimed["parent"] is None

    def test_expiry_and_heartbeat_traced(self, tmp_path):
        from repro.obs.trace import TraceRecorder, install_tracer

        tracer = install_tracer(TraceRecorder())
        queue = WorkQueue(tmp_path / "q", lease_ttl=5.0)
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice", now=100.0)
        queue.heartbeat(key, "alice", now=102.0)
        queue.expire_leases(now=200.0)
        names = [r["name"] for r in tracer.records() if r["cat"] == "queue"]
        assert "heartbeat" in names
        assert "expired" in names
        beat = next(r for r in tracer.records() if r["name"] == "heartbeat")
        assert beat["attrs"]["deadline"] == 107.0

    def test_queue_is_silent_without_a_tracer(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue_all(_specs(1))
        assert queue.status().pending == 1  # no tracer installed: no crash

    def test_cell_rows_since_filters_stale_cells(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        keys = queue.enqueue_all(_specs(2))
        # Age one cell's newest event far into the past.
        queue._cells[keys[0]].last_event_ts = time.time() - 3600.0
        rows = queue.cell_rows(since=60.0)
        assert [row["cell"] for row in rows] == [keys[1]]
        assert rows[0]["last_event_age_s"] is not None
        assert rows[0]["last_event_age_s"] < 60.0
        # Without the filter both cells report, with their event ages.
        all_rows = queue.cell_rows()
        assert len(all_rows) == 2

    def test_last_event_ts_survives_log_replay(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl=60.0)
        (key,) = queue.enqueue_all(_specs(1))
        queue.claim("alice")
        fresh = WorkQueue(tmp_path / "q")
        fresh.status()  # force a log replay into the in-memory cell table
        assert fresh._cells[key].last_event_ts == pytest.approx(
            queue._cells[key].last_event_ts
        )
        assert fresh.cell_rows(since=3600.0)

    def test_worker_trace_out_writes_jsonl(self, tmp_path):
        from repro.experiments.worker import run_worker
        from repro.obs.trace import active_tracer, load_jsonl, validate_trace_file

        queue = WorkQueue(tmp_path / "q")
        queue.enqueue_all(_specs(1))
        trace_path = tmp_path / "worker.trace.jsonl"
        settled = run_worker(
            str(tmp_path / "q"), worker_id="w0", exit_when_done=True,
            verbose=False, trace_out=str(trace_path),
        )
        assert settled == 1
        assert active_tracer() is None  # worker uninstalls what it installed
        assert validate_trace_file(str(trace_path)) == []
        _, records = load_jsonl(str(trace_path))
        names = {r["name"] for r in records}
        assert {"claimed", "completed"} <= names
        execute = next(r for r in records if r["name"] == "execute")
        assert execute["kind"] == "span"
        assert execute["cat"] == "worker"
        assert execute["attrs"]["outcome"] == "completed"
        assert execute["attrs"]["worker"] == "w0"
