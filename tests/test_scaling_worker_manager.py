"""Tests for repro.scaling.worker_manager."""

import pytest

from repro.scaling.messages import make_scale_command, make_start_command, make_stop_command
from repro.scaling.worker_manager import WorkerManager, WorkerManagerPool


def _busy_manager(gpu_id=0, job_id="job-a"):
    manager = WorkerManager(gpu_id=gpu_id)
    manager.handle(make_start_command(job_id, gpu_id, 64, [gpu_id], 0.1), now=0.0)
    return manager


class TestWorkerManager:
    def test_start_job(self):
        manager = _busy_manager()
        assert manager.is_busy
        assert manager.current_job == "job-a"
        assert manager.agent.is_training

    def test_wrong_receiver_rejected(self):
        manager = WorkerManager(gpu_id=1)
        msg = make_start_command("job-a", 0, 64, [0], 0.1)
        with pytest.raises(ValueError, match="delivered to"):
            manager.handle(msg, now=0.0)

    def test_double_start_rejected(self):
        manager = _busy_manager()
        with pytest.raises(RuntimeError, match="already runs"):
            manager.handle(make_start_command("job-b", 0, 64, [0], 0.1), now=1.0)

    def test_scale_changes_configuration(self):
        manager = _busy_manager()
        manager.handle(make_scale_command("job-a", 0, 128, [0, 1], 0.2), now=2.0)
        assert manager.agent.local_batch == 128
        assert manager.agent.peer_gpus == (0, 1)
        assert manager.agent.is_training

    def test_scale_with_zero_batch_removes_worker(self):
        manager = _busy_manager()
        manager.handle(make_scale_command("job-a", 0, 0, [1], 0.2), now=2.0)
        assert not manager.is_busy

    def test_scale_wrong_job_rejected(self):
        manager = _busy_manager()
        with pytest.raises(RuntimeError, match="got scale for"):
            manager.handle(make_scale_command("job-b", 0, 128, [0], 0.2), now=2.0)

    def test_scale_idle_gpu_rejected(self):
        manager = WorkerManager(gpu_id=0)
        with pytest.raises(RuntimeError, match="no active worker"):
            manager.handle(make_scale_command("job-a", 0, 128, [0], 0.2), now=2.0)

    def test_stop(self):
        manager = _busy_manager()
        manager.handle(make_stop_command("job-a", 0), now=3.0)
        assert not manager.is_busy

    def test_stop_idle_is_noop(self):
        manager = WorkerManager(gpu_id=0)
        manager.handle(make_stop_command("job-a", 0), now=3.0)
        assert not manager.is_busy

    def test_progress_report(self):
        manager = _busy_manager()
        msg = manager.report_progress(5.0, samples_processed=1000, loss=0.5, accuracy=0.8, epoch=2)
        assert msg.job_id == "job-a"
        assert manager.outbox[-1] is msg

    def test_progress_report_requires_worker(self):
        manager = WorkerManager(gpu_id=0)
        with pytest.raises(RuntimeError):
            manager.report_progress(1.0, 0, 0, 0, 1)


class TestWorkerManagerPool:
    def test_pool_layout(self):
        pool = WorkerManagerPool(4)
        assert len(pool) == 4
        assert pool.idle_gpus() == [0, 1, 2, 3]

    def test_jobs_running(self):
        pool = WorkerManagerPool(4)
        pool[0].handle(make_start_command("job-a", 0, 64, [0, 1], 0.1), now=0.0)
        pool[1].handle(make_start_command("job-a", 1, 64, [0, 1], 0.1), now=0.0)
        pool[3].handle(make_start_command("job-b", 3, 32, [3], 0.1), now=0.0)
        assert pool.jobs_running() == {"job-a": [0, 1], "job-b": [3]}
        assert pool.busy_gpus() == [0, 1, 3]
        assert pool.idle_gpus() == [2]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WorkerManagerPool(0)
