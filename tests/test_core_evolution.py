"""Tests for repro.core.evolution (the search loop of Fig. 5)."""

import numpy as np
import pytest

from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.schedule import Schedule
from tests._core_helpers import make_context, make_jobs


class TestEvolutionConfig:
    def test_defaults_resolve(self):
        config = EvolutionConfig()
        # The paper's K = cluster size up to the 64-GPU Longhorn scale;
        # beyond that the default stays bounded by the operator cost.
        assert config.resolved_population_size(64) == 64
        assert config.resolved_population_size(128) == 64
        assert config.resolved_population_size(8) == 8
        assert config.resolved_crossover_pairs(16) == 8

    def test_explicit_values_win(self):
        config = EvolutionConfig(population_size=5, crossover_pairs=2)
        assert config.resolved_population_size(64) == 5
        assert config.resolved_crossover_pairs(5) == 2

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=0)
        with pytest.raises(ValueError):
            EvolutionConfig(mutation_rate=1.5)
        with pytest.raises(ValueError):
            EvolutionConfig(iterations_per_invocation=0)


class TestEvolutionarySearch:
    def _context_with_progress(self, num_jobs=3, num_gpus=8):
        jobs = make_jobs(num_jobs)
        for i, job in enumerate(jobs.values()):
            job.start_running(0.0, [i], [64])
            job.advance(1000 * (i + 1), 5.0)
        return make_context(jobs, num_gpus=num_gpus)

    def test_step_returns_candidate_and_score(self):
        ctx = self._context_with_progress()
        search = EvolutionarySearch(EvolutionConfig(population_size=6), seed=1)
        best, score = search.step(ctx)
        assert isinstance(best, Schedule)
        assert np.isfinite(score)
        assert search.best_candidate is best
        assert len(search.population) <= 6

    def test_population_persists_across_steps(self):
        ctx = self._context_with_progress()
        search = EvolutionarySearch(EvolutionConfig(population_size=6), seed=1)
        search.step(ctx)
        first_iterations = search.iterations_run
        search.step(ctx)
        assert search.iterations_run == first_iterations + 1

    def test_roster_change_reindexes_population(self):
        ctx = self._context_with_progress(num_jobs=3)
        search = EvolutionarySearch(EvolutionConfig(population_size=4), seed=1)
        search.step(ctx)
        smaller = {k: v for k, v in ctx.jobs.items() if k != "job-2"}
        ctx2 = make_context(smaller, num_gpus=8)
        best, _ = search.step(ctx2)
        assert "job-2" not in best.placed_jobs()

    def test_best_candidate_never_wastes_gpus_while_jobs_wait(self):
        """Eq. 4's spirit: a GPU is never idle while some job could use it."""
        ctx = self._context_with_progress(num_jobs=3, num_gpus=8)
        search = EvolutionarySearch(EvolutionConfig(population_size=8), seed=2)
        best, _ = search.step(ctx)
        if best.idle_gpus():
            assert not best.waiting_jobs()
        # The cluster is never left empty.
        assert len(best.placed_jobs()) >= 1

    def test_multiple_iterations_per_invocation(self):
        ctx = self._context_with_progress()
        search = EvolutionarySearch(
            EvolutionConfig(population_size=4, iterations_per_invocation=3), seed=1
        )
        search.step(ctx)
        assert search.iterations_run == 3

    def test_operator_ablation_switches(self):
        ctx = self._context_with_progress()
        config = EvolutionConfig(
            population_size=4,
            enable_crossover=False,
            enable_mutation=False,
            enable_reorder=False,
        )
        search = EvolutionarySearch(config, seed=1)
        best, score = search.step(ctx)
        assert isinstance(best, Schedule)

    def test_search_improves_or_matches_greedy_seed(self):
        """The evolved best candidate is no worse than the deployed schedule."""
        from repro.core.scoring import candidate_score

        ctx = self._context_with_progress(num_jobs=4, num_gpus=8)
        current = Schedule.from_assignment(
            ctx.roster, 8, {0: "job-0", 1: "job-1", 2: "job-2", 3: "job-3"}
        )
        search = EvolutionarySearch(EvolutionConfig(population_size=8), seed=3)
        best, _ = search.step(ctx, current=current)
        progress = {j: 0.5 for j in ctx.roster}
        assert candidate_score(best, ctx.jobs, progress, ctx.throughput_fn) <= candidate_score(
            current, ctx.jobs, progress, ctx.throughput_fn
        ) * 1.05
