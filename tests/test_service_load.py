"""Deterministic multi-tenant load generation for the service."""

import pytest

from repro.service.load import arrival_summary, generate_submissions, tenant_seed
from repro.workload.arrivals import ArrivalConfig


class TestTenantSeed:
    def test_stable_and_distinct(self):
        assert tenant_seed(2021, "a") == tenant_seed(2021, "a")
        assert tenant_seed(2021, "a") != tenant_seed(2021, "b")
        assert tenant_seed(2021, "a") != tenant_seed(2022, "a")
        assert tenant_seed(2021, "a") > 0


class TestGenerateSubmissions:
    def test_deterministic(self):
        kwargs = dict(arrivals=ArrivalConfig(rate=1 / 30.0, seed=5))
        first = generate_submissions(["a", "b"], 10, **kwargs)
        second = generate_submissions(["a", "b"], 10, **kwargs)
        assert first == second

    def test_merged_in_arrival_order(self):
        submissions = generate_submissions(
            ["a", "b"], 20, arrivals=ArrivalConfig(rate=1 / 30.0, seed=5)
        )
        times = [s.arrival_time for s in submissions]
        assert times == sorted(times)
        assert len(submissions) == 40

    def test_adding_a_tenant_does_not_perturb_existing_streams(self):
        arrivals = ArrivalConfig(rate=1 / 30.0, seed=5)
        solo = [
            s for s in generate_submissions(["a"], 10, arrivals=arrivals)
        ]
        joint = [
            s for s in generate_submissions(["a", "b"], 10, arrivals=arrivals)
            if s.tenant == "a"
        ]
        assert solo == joint

    def test_gpu_demands_come_from_choices(self):
        submissions = generate_submissions(
            ["a"], 50, arrivals=ArrivalConfig(seed=1), gpu_choices=(2, 4),
            gpu_weights=(0.5, 0.5),
        )
        assert {s.gpu_demand for s in submissions} <= {2, 4}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_submissions(["a"], 0, arrivals=ArrivalConfig())
        with pytest.raises(ValueError):
            generate_submissions(
                ["a"], 1, arrivals=ArrivalConfig(), gpu_choices=(1, 2),
                gpu_weights=(1.0,),
            )


class TestArrivalSummary:
    def test_counts_per_tenant(self):
        submissions = generate_submissions(
            ["a", "b"], 5, arrivals=ArrivalConfig(seed=2)
        )
        summary = arrival_summary(submissions)
        assert summary["submissions"] == 10
        assert summary["tenants"] == {"a": 5, "b": 5}
        assert summary["total_gpu_demand"] >= 10

    def test_empty_load(self):
        assert arrival_summary([]) == {"submissions": 0}
