"""Tests for the Optimus baseline."""

import numpy as np
import pytest

from repro.baselines.base import ClusterState
from repro.baselines.optimus import OptimusScheduler, fit_loss_curve
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator
from repro.utils.units import MINUTE
from tests.conftest import make_job, make_running_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


class TestLossCurveFit:
    def test_fits_synthetic_optimus_curve(self):
        epochs = np.arange(1, 30, dtype=float)
        a, b, c = 0.3, 0.8, 0.2
        losses = 1.0 / (a * epochs + b) + c
        fit = fit_loss_curve(epochs, losses)
        assert fit is not None
        assert fit[0] == pytest.approx(a, rel=0.1)
        assert fit[2] == pytest.approx(c, rel=0.1)

    def test_too_few_points(self):
        assert fit_loss_curve(np.array([1.0, 2.0]), np.array([1.0, 0.9])) is None

    def test_non_decreasing_curve_rejected(self):
        epochs = np.arange(1, 10, dtype=float)
        assert fit_loss_curve(epochs, np.linspace(0.5, 1.0, 9)) is None


class TestRemainingEstimation:
    def test_default_estimate_without_history(self):
        scheduler = OptimusScheduler()
        job = make_job()
        assert scheduler.estimate_remaining_epochs(job) == scheduler.default_remaining_epochs

    def test_estimate_shrinks_as_training_progresses(self):
        scheduler = OptimusScheduler()
        job = make_running_job(dataset_size=1000, base_epochs=10.0, patience=3)
        estimates = []
        for e in range(12):
            job.advance(1000, 2.0)
            job.complete_epoch(2.0 * (e + 1))
            estimates.append(scheduler.estimate_remaining_epochs(job))
        assert estimates[-1] < estimates[3]


class TestScheduling:
    def test_periodic_interval_matches_paper(self):
        assert OptimusScheduler().timer_interval == pytest.approx(10 * MINUTE)

    def test_arrivals_wait_for_timer(self, small_topology):
        scheduler = OptimusScheduler()
        job = make_job(job_id="a")
        assert scheduler.on_job_arrival(job, _state({"a": job}, small_topology)) is None

    def test_timer_allocates_all_jobs(self, small_topology):
        scheduler = OptimusScheduler()
        jobs = {f"j{i}": make_job(job_id=f"j{i}", arrival_time=0.0) for i in range(3)}
        proposal = scheduler.on_timer(_state(jobs, small_topology, now=600.0))
        assert proposal is not None
        for job_id in jobs:
            assert proposal.num_gpus(job_id) >= 1
        # The greedy loop should hand out every useful GPU.
        assert len(proposal.used_gpus()) > 3

    def test_marginal_gain_prefers_heavier_jobs(self, small_topology):
        scheduler = OptimusScheduler()
        heavy = make_job(job_id="heavy", model_name="vgg16", dataset_size=20000, base_batch=64)
        light = make_job(job_id="light", model_name="resnet18", dataset_size=2000, base_batch=64)
        jobs = {"heavy": heavy, "light": light}
        proposal = scheduler.on_timer(_state(jobs, small_topology, now=600.0))
        assert proposal.num_gpus("heavy") >= proposal.num_gpus("light")

    def test_keeps_unchanged_jobs_in_place(self, small_topology):
        scheduler = OptimusScheduler(max_gpus_per_job=1)
        job = make_running_job(job_id="a", gpu_ids=(2,), local_batches=(64,))
        allocation = Allocation.from_job_map({"a": [(2, 64)]})
        proposal = scheduler.on_timer(_state({"a": job}, small_topology, allocation, now=600.0))
        # Same GPU count -> same placement -> nothing to deploy.
        assert proposal is None

    def test_table3_capabilities(self):
        caps = OptimusScheduler().capabilities
        assert caps.strategy == "greedy"
        assert caps.elastic_job_size
        assert not caps.elastic_batch_size

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OptimusScheduler(scheduling_interval=0)
        with pytest.raises(ValueError):
            OptimusScheduler(max_gpus_per_job=0)

    def test_end_to_end(self, tiny_trace):
        result = ClusterSimulator(make_longhorn_cluster(8), OptimusScheduler(), tiny_trace).run()
        assert not result.incomplete
