"""Tests for repro.workload.arrivals."""

import numpy as np
import pytest

from repro.utils.units import HOUR
from repro.workload.arrivals import (
    ArrivalConfig,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UnknownArrivalProfileError,
    arrival_profile_table,
    available_arrival_profiles,
    interarrival_statistics,
)


class TestPoissonArrivals:
    def test_generates_sorted_nonnegative_times(self):
        times = PoissonArrivals(rate=0.1).generate(50, rng=0)
        assert len(times) == 50
        assert times[0] == 0.0
        assert np.all(np.diff(times) >= 0)

    def test_mean_interarrival_matches_rate(self):
        times = PoissonArrivals(rate=0.05).generate(4000, rng=1)
        stats = interarrival_statistics(times)
        assert stats["mean"] == pytest.approx(20.0, rel=0.1)

    def test_deterministic_for_seed(self):
        a = PoissonArrivals(rate=0.1).generate(20, rng=3)
        b = PoissonArrivals(rate=0.1).generate(20, rng=3)
        assert np.array_equal(a, b)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)


class TestDiurnalArrivals:
    def test_rate_oscillates(self):
        process = DiurnalArrivals(base_rate=0.1, amplitude=0.8, period=24 * HOUR)
        peak = process.rate_at(6 * HOUR)    # sin peak for phase 0
        trough = process.rate_at(18 * HOUR)
        assert peak > process.base_rate > trough

    def test_generates_requested_count(self):
        times = DiurnalArrivals(base_rate=0.05).generate(100, rng=2)
        assert len(times) == 100
        assert np.all(np.diff(times) >= 0)

    def test_more_bursty_than_poisson(self):
        diurnal = DiurnalArrivals(base_rate=0.05, amplitude=0.95, period=2000.0).generate(
            3000, rng=4
        )
        poisson = PoissonArrivals(rate=0.05).generate(3000, rng=4)
        assert interarrival_statistics(diurnal)["cv"] > interarrival_statistics(poisson)["cv"] * 0.95

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(amplitude=1.5)


class TestBurstyArrivals:
    def test_generates_requested_count(self):
        times = BurstyArrivals().generate(200, rng=5)
        assert len(times) == 200
        assert np.all(np.diff(times) >= 0)

    def test_burstier_than_poisson(self):
        bursty = BurstyArrivals(
            quiet_rate=1 / 120.0, burst_rate=1 / 3.0,
            mean_quiet_duration=900.0, mean_burst_duration=60.0,
        ).generate(2000, rng=6)
        poisson = PoissonArrivals(rate=1 / 30.0).generate(2000, rng=6)
        assert interarrival_statistics(bursty)["cv"] > interarrival_statistics(poisson)["cv"]

    def test_burst_rate_must_exceed_quiet_rate(self):
        with pytest.raises(ValueError):
            BurstyArrivals(quiet_rate=0.1, burst_rate=0.05)


class TestInterarrivalStatistics:
    def test_single_point(self):
        stats = interarrival_statistics([5.0])
        assert stats["count"] == 1
        assert stats["mean"] == 0.0

    def test_regular_spacing_has_zero_cv(self):
        stats = interarrival_statistics([0.0, 10.0, 20.0, 30.0])
        assert stats["cv"] == pytest.approx(0.0)


class TestArrivalProfileRegistry:
    def test_builtin_profiles_registered(self):
        names = available_arrival_profiles()
        assert {"poisson", "diurnal", "bursty"} <= set(names)

    def test_profile_table_has_descriptions(self):
        rows = arrival_profile_table()
        assert all(row["description"] for row in rows)
        assert {row["profile"] for row in rows} >= {"poisson", "diurnal", "bursty"}

    def test_unknown_profile_raises(self):
        with pytest.raises(UnknownArrivalProfileError):
            ArrivalConfig(profile="lunar").build_process()


class TestArrivalConfig:
    def test_generate_is_deterministic(self):
        config = ArrivalConfig(profile="diurnal", rate=1 / 60.0, seed=99)
        first = config.generate(100)
        second = config.generate(100)
        np.testing.assert_array_equal(first, second)

    def test_seed_changes_the_stream(self):
        a = ArrivalConfig(seed=1).generate(50)
        b = ArrivalConfig(seed=2).generate(50)
        assert not np.array_equal(a, b)

    def test_round_trips_through_json(self):
        config = ArrivalConfig(profile="bursty", rate=1 / 45.0, seed=7,
                               burst_factor=5.0, mean_quiet_s=300.0)
        clone = ArrivalConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.config_key() == config.config_key()

    def test_config_key_is_content_addressed(self):
        base = ArrivalConfig(seed=3)
        assert base.config_key() == ArrivalConfig(seed=3).config_key()
        assert base.config_key() != ArrivalConfig(seed=4).config_key()
        assert base.config_key() != ArrivalConfig(seed=3, rate=1 / 10.0).config_key()

    def test_each_profile_generates_sorted_times(self):
        for profile in ("poisson", "diurnal", "bursty"):
            times = ArrivalConfig(profile=profile, rate=1 / 30.0, seed=11).generate(64)
            assert len(times) == 64
            assert np.all(np.diff(times) >= 0)
