"""Tests for repro.experiments.report."""

import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.experiments.artifacts import SweepArtifact, dead_cell_artifact
from repro.experiments.backends import execute_run
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import Runner
from repro.experiments.report import (
    build_comparison_report,
    build_sweep_report,
    write_comparison_report,
)
from repro.experiments.runner import run_comparison
from repro.experiments.spec import ExperimentSpec
from repro.faults import FaultConfig
from repro.workload.trace import TraceConfig


@pytest.fixture(scope="module")
def comparison():
    config = ExperimentConfig(
        num_gpus=8,
        trace=TraceConfig(num_jobs=4, arrival_rate=1.0 / 10.0, convergence_patience=3),
        seed=11,
        schedulers={
            "FIFO": lambda seed: FIFOScheduler(),
            "Tiresias": lambda seed: TiresiasScheduler(),
        },
    )
    return run_comparison(config)


class TestBuildReport:
    def test_contains_all_sections(self, comparison):
        report = build_comparison_report(comparison, reference="FIFO")
        assert report.startswith("# Scheduler comparison report")
        assert "## Average metrics" in report
        assert "## JCT distribution" in report
        assert "## FIFO vs the baselines" in report
        assert "## Cluster telemetry" in report

    def test_lists_every_scheduler(self, comparison):
        report = build_comparison_report(comparison, reference="FIFO")
        assert "FIFO" in report and "Tiresias" in report

    def test_reference_missing_skips_comparison_section(self, comparison):
        report = build_comparison_report(comparison, reference="ONES")
        assert "## ONES vs the baselines" not in report
        assert "## Average metrics" in report

    def test_markdown_tables_are_well_formed(self, comparison):
        report = build_comparison_report(comparison, reference="FIFO")
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        assert table_lines
        # Every table row has the same number of columns as its header.
        assert all(line.count("|") >= 3 for line in table_lines)


class TestWriteReport:
    def test_writes_file(self, comparison, tmp_path):
        path = write_comparison_report(comparison, tmp_path / "report.md", reference="FIFO")
        assert path.exists()
        assert path.read_text().startswith("# Scheduler comparison report")


class TestSweepReportRecoverySections:
    @pytest.fixture(scope="class")
    def faulted_sweep(self):
        spec = ExperimentSpec.scalability(
            capacities=(8,),
            seeds=(11,),
            schedulers=("FIFO", "Tiresias"),
            trace=TraceConfig(num_jobs=4, arrival_rate=1.0 / 10.0,
                              convergence_patience=3),
            faults=FaultConfig(profile="mtbf", mtbf_hours=0.2,
                               repair_minutes=5.0, seed=3),
        )
        return Runner(backend="serial").run(spec)

    def test_fault_recovery_section_present(self, faulted_sweep):
        report = build_sweep_report(faulted_sweep, reference="FIFO")
        assert "## Fault recovery" in report
        assert "JCT degradation vs the zero-fault twin cells" in report
        # The per-cell recovery metrics of PR 5 are surfaced.
        for column in ("goodput", "evictions", "restarts", "lost GPU-s",
                       "downtime GPU-s"):
            assert column in report

    def test_zero_fault_sweep_has_no_recovery_section(self):
        spec = ExperimentSpec(
            schedulers=("FIFO",),
            capacities=(8,),
            seeds=(11,),
            traces=(TraceConfig(num_jobs=3, arrival_rate=0.1,
                                convergence_patience=3),),
        )
        report = build_sweep_report(Runner(backend="serial").run(spec))
        assert "## Fault recovery" not in report
        assert "## Dead cells" not in report

    def test_dead_cells_section_and_skipped_ratio_table(self):
        spec = ExperimentSpec(
            schedulers=("FIFO", "SRTF"),
            capacities=(8,),
            seeds=(11,),
            traces=(TraceConfig(num_jobs=3, arrival_rate=0.1,
                                convergence_patience=3),),
        )
        cells = spec.expand()
        sweep = SweepArtifact(
            spec=spec,
            runs=[execute_run(cells[0]),
                  dead_cell_artifact(cells[1], "RuntimeError: poisoned")],
        )
        report = build_sweep_report(sweep, reference="FIFO")
        assert "## Dead cells" in report
        assert "poisoned" in report
        # The reference-relative table divides by per-cell means, which a
        # dead placeholder cannot provide — it must be skipped, not crash.
        assert "Relative JCT" not in report
