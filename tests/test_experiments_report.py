"""Tests for repro.experiments.report."""

import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import build_comparison_report, write_comparison_report
from repro.experiments.runner import run_comparison
from repro.workload.trace import TraceConfig


@pytest.fixture(scope="module")
def comparison():
    config = ExperimentConfig(
        num_gpus=8,
        trace=TraceConfig(num_jobs=4, arrival_rate=1.0 / 10.0, convergence_patience=3),
        seed=11,
        schedulers={
            "FIFO": lambda seed: FIFOScheduler(),
            "Tiresias": lambda seed: TiresiasScheduler(),
        },
    )
    return run_comparison(config)


class TestBuildReport:
    def test_contains_all_sections(self, comparison):
        report = build_comparison_report(comparison, reference="FIFO")
        assert report.startswith("# Scheduler comparison report")
        assert "## Average metrics" in report
        assert "## JCT distribution" in report
        assert "## FIFO vs the baselines" in report
        assert "## Cluster telemetry" in report

    def test_lists_every_scheduler(self, comparison):
        report = build_comparison_report(comparison, reference="FIFO")
        assert "FIFO" in report and "Tiresias" in report

    def test_reference_missing_skips_comparison_section(self, comparison):
        report = build_comparison_report(comparison, reference="ONES")
        assert "## ONES vs the baselines" not in report
        assert "## Average metrics" in report

    def test_markdown_tables_are_well_formed(self, comparison):
        report = build_comparison_report(comparison, reference="FIFO")
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        assert table_lines
        # Every table row has the same number of columns as its header.
        assert all(line.count("|") >= 3 for line in table_lines)


class TestWriteReport:
    def test_writes_file(self, comparison, tmp_path):
        path = write_comparison_report(comparison, tmp_path / "report.md", reference="FIFO")
        assert path.exists()
        assert path.read_text().startswith("# Scheduler comparison report")
