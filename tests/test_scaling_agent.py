"""Tests for repro.scaling.agent."""

import pytest

from repro.scaling.agent import AgentState, ScalingAgent


def _training_agent():
    agent = ScalingAgent(gpu_id=0, job_id="job-a")
    agent.load_job(0.0, local_batch=64, learning_rate=0.1, peer_gpus=[0])
    agent.start_training(1.0)
    return agent


class TestLifecycle:
    def test_load_and_train(self):
        agent = _training_agent()
        assert agent.is_training
        assert agent.local_batch == 64

    def test_full_scaling_sequence(self):
        """The pause → resize → reconnect → broadcast → resume path of Fig. 11."""
        agent = _training_agent()
        agent.pause(2.0)
        agent.resize(2.1, new_local_batch=128, new_learning_rate=0.2)
        agent.reconnect(2.2, [0, 1])
        agent.broadcast_parameters(2.3)
        agent.resume(2.4)
        assert agent.is_training
        assert agent.local_batch == 128
        assert agent.peer_gpus == (0, 1)
        states = agent.state_sequence()
        assert states == [
            AgentState.IDLE,
            AgentState.LOADING,
            AgentState.TRAINING,
            AgentState.PAUSED,
            AgentState.RESIZING,
            AgentState.RECONNECTING,
            AgentState.BROADCASTING,
            AgentState.TRAINING,
        ]

    def test_scaling_without_new_workers_skips_broadcast(self):
        agent = _training_agent()
        agent.pause(2.0)
        agent.resize(2.1, 32, 0.05)
        agent.reconnect(2.2, [0])
        agent.resume(2.3)
        assert agent.is_training

    def test_training_never_stopped_during_scaling(self):
        agent = _training_agent()
        agent.pause(2.0)
        agent.resize(2.1, 128, 0.2)
        agent.reconnect(2.2, [0, 1])
        agent.resume(2.3)
        assert not agent.training_was_stopped_during_scaling()

    def test_stop(self):
        agent = _training_agent()
        agent.stop(5.0)
        assert agent.is_stopped
        assert agent.local_batch == 0
        # Stopping twice is a no-op.
        agent.stop(6.0)


class TestIllegalTransitions:
    def test_cannot_train_before_loading(self):
        agent = ScalingAgent(gpu_id=0, job_id="job-a")
        with pytest.raises(RuntimeError):
            agent.start_training(0.0)

    def test_cannot_resize_while_training(self):
        agent = _training_agent()
        with pytest.raises(RuntimeError):
            agent.resize(2.0, 128, 0.2)

    def test_cannot_stop_mid_resize(self):
        agent = _training_agent()
        agent.pause(2.0)
        agent.resize(2.1, 128, 0.2)
        with pytest.raises(RuntimeError):
            agent.stop(2.2)

    def test_load_requires_positive_batch(self):
        agent = ScalingAgent(gpu_id=0, job_id="job-a")
        with pytest.raises(ValueError):
            agent.load_job(0.0, 0, 0.1, [0])

    def test_resize_requires_positive_batch(self):
        agent = _training_agent()
        agent.pause(1.0)
        with pytest.raises(ValueError):
            agent.resize(1.1, 0, 0.1)

    def test_transitions_are_recorded_with_times(self):
        agent = _training_agent()
        times = [t.time for t in agent.transitions]
        assert times == sorted(times)
