"""Tests for repro.analysis.metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    compare_results,
    completion_fraction_within,
    improvement_over,
    metric_summary,
    metric_values,
    paired_jobs,
    relative_jct,
)
from repro.sim.simulator import SimulationResult


def _result(name, jcts, exec_times=None):
    exec_times = exec_times or [j * 0.7 for j in jcts]
    completed = {
        f"job-{i:02d}": {
            "jct": float(j),
            "execution_time": float(e),
            "queuing_time": float(j - e),
        }
        for i, (j, e) in enumerate(zip(jcts, exec_times))
    }
    return SimulationResult(
        scheduler_name=name,
        num_gpus=16,
        completed=completed,
        incomplete=[],
        makespan=float(max(jcts)),
        gpu_time_busy=100.0,
        gpu_time_total=200.0,
        num_reconfigurations=3,
        events_processed=10,
    )


@pytest.fixture
def ones_result():
    return _result("ONES", [100, 200, 300, 400])


@pytest.fixture
def baseline_result():
    return _result("Tiresias", [200, 300, 400, 500])


class TestMetricValues:
    def test_values_sorted_by_job_id(self, ones_result):
        values = metric_values(ones_result, "jct")
        assert values.tolist() == [100, 200, 300, 400]

    def test_unknown_metric_rejected(self, ones_result):
        with pytest.raises(ValueError):
            metric_values(ones_result, "latency")


class TestSummaries:
    def test_metric_summary(self, ones_result):
        summary = metric_summary(ones_result, "jct")
        assert summary.scheduler == "ONES"
        assert summary.average == pytest.approx(250.0)
        assert summary.stats.median == pytest.approx(250.0)

    def test_cdf_and_fraction(self, ones_result):
        summary = metric_summary(ones_result, "jct")
        x, cf = summary.cdf(num_points=50)
        assert cf[-1] == pytest.approx(1.0)
        assert summary.fraction_within(250) == pytest.approx(0.5)

    def test_compare_results(self, ones_result, baseline_result):
        comparison = compare_results([ones_result, baseline_result], "jct")
        assert set(comparison) == {"ONES", "Tiresias"}


class TestComparisons:
    def test_improvement_over(self, ones_result, baseline_result):
        value = improvement_over(ones_result, baseline_result, "jct")
        assert value == pytest.approx(1 - 250.0 / 350.0)

    def test_relative_jct(self, ones_result, baseline_result):
        rel = relative_jct({"ONES": ones_result, "Tiresias": baseline_result}, "ONES")
        assert rel["ONES"] == pytest.approx(1.0)
        assert rel["Tiresias"] == pytest.approx(350.0 / 250.0)

    def test_relative_jct_missing_reference(self, baseline_result):
        with pytest.raises(KeyError):
            relative_jct({"Tiresias": baseline_result}, "ONES")

    def test_paired_jobs(self, ones_result, baseline_result):
        a, b = paired_jobs(ones_result, baseline_result)
        assert len(a) == len(b) == 4
        assert np.all(a < b)

    def test_paired_jobs_no_overlap(self, ones_result):
        other = _result("X", [10])
        other.completed = {"different": other.completed.pop("job-00")}
        with pytest.raises(ValueError):
            paired_jobs(ones_result, other)

    def test_completion_fraction_within(self, ones_result, baseline_result):
        fractions = completion_fraction_within([ones_result, baseline_result], 250.0)
        assert fractions["ONES"] == pytest.approx(0.5)
        assert fractions["Tiresias"] == pytest.approx(0.25)
