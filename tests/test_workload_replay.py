"""Tests for repro.workload.replay."""

import json

import pytest

from repro.workload.replay import (
    jobspec_from_dict,
    jobspec_to_dict,
    load_trace,
    save_trace,
    trace_statistics,
)
from repro.workload.trace import TraceConfig, TraceGenerator


@pytest.fixture
def trace():
    return TraceGenerator(TraceConfig(num_jobs=8), seed=13).generate()


class TestRoundTrip:
    def test_dict_round_trip_preserves_fields(self, trace):
        for spec in trace:
            clone = jobspec_from_dict(jobspec_to_dict(spec))
            assert clone.job_id == spec.job_id
            assert clone.dataset_size == spec.dataset_size
            assert clone.base_batch == spec.base_batch
            assert clone.arrival_time == spec.arrival_time
            assert clone.model.name == spec.model.name
            assert clone.convergence == spec.convergence

    def test_file_round_trip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "trace.json")
        loaded = load_trace(path)
        assert [j.job_id for j in loaded] == [j.job_id for j in trace]

    def test_serialised_file_is_json(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)
        assert len(payload) == len(trace)

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a trace"}))
        with pytest.raises(ValueError):
            load_trace(path)


class TestStatistics:
    def test_statistics_fields(self, trace):
        stats = trace_statistics(trace)
        assert stats["num_jobs"] == len(trace)
        assert stats["mean_requested_gpus"] >= 1
        assert stats["mean_interarrival"] >= 0
        assert any(key.startswith("count_") for key in stats)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics([])
