"""Tests for repro.analysis.export."""

import csv
import json

import pytest

from repro.analysis.export import (
    export_comparison_csv,
    export_comparison_json,
    export_result_csv,
    export_result_json,
    export_sweep_json,
    result_to_records,
)
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison, run_scalability_sweep
from repro.workload.trace import TraceConfig


@pytest.fixture(scope="module")
def comparison():
    config = ExperimentConfig(
        num_gpus=8,
        trace=TraceConfig(num_jobs=4, arrival_rate=1.0 / 10.0, convergence_patience=3),
        seed=5,
        schedulers={
            "FIFO": lambda seed: FIFOScheduler(),
            "Tiresias": lambda seed: TiresiasScheduler(),
        },
    )
    return run_comparison(config)


class TestResultExport:
    def test_records_have_job_metadata(self, comparison):
        result = comparison.results["FIFO"]
        records = result_to_records(result)
        assert len(records) == len(result.completed)
        for record in records:
            assert record["scheduler"] == "FIFO"
            assert record["jct"] > 0
            assert "model" in record and "task" in record

    def test_csv_round_trip(self, comparison, tmp_path):
        result = comparison.results["FIFO"]
        path = export_result_csv(result, tmp_path / "fifo.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.completed)
        assert float(rows[0]["jct"]) > 0

    def test_json_round_trip(self, comparison, tmp_path):
        result = comparison.results["FIFO"]
        path = export_result_json(result, tmp_path / "fifo.json")
        payload = json.loads(path.read_text())
        assert payload["summary"]["scheduler"] == "FIFO"
        assert len(payload["jobs"]) == len(result.completed)
        assert payload["incomplete"] == []


class TestComparisonExport:
    def test_comparison_csv_contains_all_schedulers(self, comparison, tmp_path):
        path = export_comparison_csv(comparison, tmp_path / "cmp.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        schedulers = {row["scheduler"] for row in rows}
        assert schedulers == {"FIFO", "Tiresias"}

    def test_comparison_json_structure(self, comparison, tmp_path):
        path = export_comparison_json(comparison, tmp_path / "cmp.json")
        payload = json.loads(path.read_text())
        assert set(payload["averages"]) == {"jct", "execution_time", "queuing_time"}
        assert set(payload["summaries"]) == {"FIFO", "Tiresias"}

    def test_sweep_json(self, tmp_path):
        config = ExperimentConfig(
            num_gpus=8,
            trace=TraceConfig(num_jobs=3, arrival_rate=1.0 / 10.0, convergence_patience=3),
            seed=6,
            schedulers={"FIFO": lambda seed: FIFOScheduler()},
        )
        sweep = run_scalability_sweep(capacities=(8,), base_config=config)
        path = export_sweep_json(sweep, tmp_path / "sweep.json")
        payload = json.loads(path.read_text())
        assert "8" in payload
        assert "averages_jct" in payload["8"]
