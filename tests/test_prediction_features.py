"""Tests for repro.prediction.features."""

import numpy as np
import pytest

from repro.prediction.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureScaler,
    feature_vector,
    job_features,
)
from tests.conftest import make_running_job


class TestFeatureVector:
    def test_length_matches_names(self):
        vec = feature_vector(1000, 2.3, 500, 0.2, 0.7)
        assert vec.shape == (NUM_FEATURES,)
        assert len(FEATURE_NAMES) == NUM_FEATURES

    def test_log_transforms_applied(self):
        vec = feature_vector(1000, 2.3, 0, 0.0, 0.0)
        assert vec[0] == pytest.approx(np.log1p(1000))
        assert vec[2] == pytest.approx(0.0)

    def test_clipping(self):
        vec = feature_vector(1000, 2.3, 10, 5.0, 1.7)
        assert vec[3] == 1.0
        assert vec[4] == 1.0

    def test_job_features_from_live_job(self):
        job = make_running_job(dataset_size=2000)
        job.advance(1000, 5.0)
        vec = job_features(job)
        assert vec.shape == (NUM_FEATURES,)
        assert np.all(np.isfinite(vec))


class TestFeatureScaler:
    def test_standardises_columns(self, rng):
        X = rng.normal(5.0, 2.0, size=(200, NUM_FEATURES))
        scaler = FeatureScaler().fit(X)
        Z = scaler.transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passthrough(self):
        X = np.ones((10, NUM_FEATURES))
        Z = FeatureScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_single_vector_transform(self, rng):
        X = rng.normal(size=(50, NUM_FEATURES))
        scaler = FeatureScaler().fit(X)
        z = scaler.transform(X[0])
        assert z.shape == (NUM_FEATURES,)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros(NUM_FEATURES))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            FeatureScaler().fit(np.empty((0, NUM_FEATURES)))

    def test_is_fitted_flag(self):
        scaler = FeatureScaler()
        assert not scaler.is_fitted
        scaler.fit(np.random.default_rng(0).normal(size=(5, NUM_FEATURES)))
        assert scaler.is_fitted
