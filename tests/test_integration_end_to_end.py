"""End-to-end integration tests: the four schedulers on a shared trace.

These are the scaled-down versions of the paper's Fig. 15 run: a small
Table-2 trace on a small cluster, each scheduler replaying the exact same
workload, with assertions on the *shape* of the outcome rather than on
absolute numbers.
"""

import pytest

from repro.baselines.drl import DRLScheduler
from repro.baselines.optimus import OptimusScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator


@pytest.fixture(scope="module")
def shared_trace():
    config = TraceConfig(num_jobs=8, arrival_rate=1.0 / 15.0, convergence_patience=4)
    return TraceGenerator(config, seed=17).generate()


def _run(scheduler, trace, num_gpus=16):
    topology = make_longhorn_cluster(num_gpus)
    return ClusterSimulator(
        topology, scheduler, trace, config=SimulationConfig(max_time=48 * 3600)
    ).run()


@pytest.fixture(scope="module")
def all_results(shared_trace):
    return {
        "ONES": _run(
            ONESScheduler(ONESConfig(evolution=EvolutionConfig(population_size=6)), seed=2),
            shared_trace,
        ),
        "DRL": _run(DRLScheduler(seed=2), shared_trace),
        "Tiresias": _run(TiresiasScheduler(), shared_trace),
        "Optimus": _run(OptimusScheduler(), shared_trace),
    }


class TestAllSchedulersComplete:
    def test_every_scheduler_finishes_every_job(self, all_results, shared_trace):
        for name, result in all_results.items():
            assert result.incomplete == [], name
            assert set(result.completed) == {j.job_id for j in shared_trace}, name

    def test_metrics_are_positive_and_consistent(self, all_results):
        for name, result in all_results.items():
            assert result.average_jct > 0, name
            assert result.average_execution_time > 0, name
            assert result.average_queuing_time >= 0, name
            assert result.average_jct >= result.average_execution_time - 1e-6, name

    def test_utilization_in_unit_interval(self, all_results):
        for name, result in all_results.items():
            assert 0 < result.gpu_utilization <= 1.0, name


class TestPaperShape:
    def test_ones_has_lowest_average_jct(self, all_results):
        """The headline result of Fig. 15a."""
        averages = {name: r.average_jct for name, r in all_results.items()}
        assert averages["ONES"] == min(averages.values()), averages

    def test_ones_reduces_execution_time_vs_fixed_size_scheduler(self, all_results):
        """Fig. 15b: elastic batch scaling trains faster than fixed-size Tiresias."""
        assert (
            all_results["ONES"].average_execution_time
            < all_results["Tiresias"].average_execution_time
        )

    def test_optimus_queuing_dominated_by_interval(self, all_results):
        """Fig. 15c: Optimus's 10-minute rounds inflate queuing time."""
        assert (
            all_results["Optimus"].average_queuing_time
            > all_results["ONES"].average_queuing_time
        )

    def test_wilcoxon_table_is_computable(self, all_results):
        from repro.analysis.stats import significance_table

        ones = all_results["ONES"]
        baselines = [all_results[n] for n in ("DRL", "Tiresias", "Optimus")]
        table = significance_table(ones, baselines)
        assert set(table) == {"DRL", "Tiresias", "Optimus"}
        for report in table.values():
            assert 0.0 <= report.p_two_sided <= 1.0

    def test_ones_reconfigures_more_but_cheaply(self, all_results):
        """ONES re-configures often (elastic scaling is cheap)."""
        assert (
            all_results["ONES"].num_reconfigurations
            >= all_results["Tiresias"].num_reconfigurations
        )
        ones_overhead = sum(
            m["reconfig_overhead"] for m in all_results["ONES"].completed.values()
        )
        ones_exec = sum(m["execution_time"] for m in all_results["ONES"].completed.values())
        assert ones_overhead < 0.25 * ones_exec
