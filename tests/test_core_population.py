"""Tests for repro.core.population."""

import numpy as np
import pytest

from repro.core.population import Population, initial_population
from repro.core.schedule import IDLE, Schedule
from tests._core_helpers import make_context, make_jobs


class TestPopulation:
    def test_add_and_len(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        pop = Population()
        pop.add(Schedule.empty(ctx.roster, 4))
        pop.extend([Schedule.empty(ctx.roster, 4)])
        assert len(pop) == 2

    def test_unique_dedups_by_genome(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        a = Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))
        b = Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))
        c = Schedule(roster=ctx.roster, genome=np.array([1, 0, IDLE, IDLE]))
        pop = Population([a, b, c])
        assert len(pop.unique()) == 2
        assert pop.diversity() == pytest.approx(2 / 3)

    def test_reindexed(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        pop = Population([Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))])
        reindexed = pop.reindexed(("job-1",))
        assert reindexed.members[0].gpu_count("job-1") == 1
        assert reindexed.members[0].gpu_count("job-0") == 0

    def test_empty_diversity(self):
        assert Population().diversity() == 0.0


class TestInitialPopulation:
    def test_size_and_validity(self):
        jobs = make_jobs(3)
        ctx = make_context(jobs, num_gpus=8)
        pop = initial_population(ctx, size=6, seed=1)
        assert len(pop) == 6
        for member in pop:
            assert member.roster == ctx.roster
            assert member.num_gpus == 8

    def test_members_are_executable(self):
        """Initial candidates respect the one-GPU-minimum per placed job."""
        jobs = make_jobs(3)
        ctx = make_context(jobs, num_gpus=8)
        pop = initial_population(ctx, size=4, seed=2)
        for member in pop:
            for job_id, count in member.gpu_counts().items():
                assert count >= 1

    def test_current_schedule_seeded(self):
        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        current = Schedule(roster=ctx.roster, genome=np.array([0, 0, 1, 1]))
        pop = initial_population(ctx, size=3, current=current, seed=3)
        assert len(pop) == 4

    def test_no_jobs_gives_idle_members(self):
        ctx = make_context({}, num_gpus=4)
        pop = initial_population(ctx, size=2, seed=4)
        for member in pop:
            assert member.placed_jobs() == []

    def test_invalid_size(self):
        jobs = make_jobs(1)
        ctx = make_context(jobs, num_gpus=4)
        with pytest.raises(ValueError):
            initial_population(ctx, size=0)


class TestGenomeMatrix:
    def test_matches_member_genomes(self):
        jobs = make_jobs(3)
        ctx = make_context(jobs, num_gpus=8)
        pop = initial_population(ctx, size=5, seed=3)
        matrix = pop.genome_matrix()
        assert matrix.shape == (5, 8)
        assert matrix.dtype == np.int64
        for row, member in zip(matrix, pop):
            assert np.array_equal(row, member.genome)

    def test_unique_uses_shared_helper(self):
        from repro.core.schedule import unique_schedules

        jobs = make_jobs(2)
        ctx = make_context(jobs, num_gpus=4)
        a = Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))
        b = Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))
        pop = Population([a, b])
        assert pop.unique() == unique_schedules([a, b]) == [a]
