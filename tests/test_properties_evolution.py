"""Property-based invariants of the evolution operators (scalar & batched).

Regardless of inputs, the operators must uphold the §3.2.2 contracts:

* every produced genome is well-formed (values in ``{IDLE} ∪ [0, J)``,
  one job per GPU by construction) and respects per-job GPU limits
  after refresh (no job above its ``desired_gpus``),
* the greedy fill never strands an assignable idle GPU — if idle GPUs
  remain, no roster job can take one,
* reorder preserves the multiset of assignments and packs each job's
  workers contiguously.

Runs under Hypothesis when installed; a seeded fuzz loop covers the
same invariants otherwise (CI environments without Hypothesis still
exercise every property).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.evolution_batched import (
    fill_idle_population,
    refresh_population,
    reorder_population,
    run_generation,
)
from repro.core.operators import fill_idle_gpus, refresh, reorder
from repro.core.schedule import IDLE, Schedule
from repro.jobs.throughput import ThroughputModel, ThroughputTable
from tests._core_helpers import make_context, make_jobs

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on CI without hypothesis
    HAVE_HYPOTHESIS = False


# --- scenario construction -----------------------------------------------------------------------


def _scenario(num_nodes, num_jobs, seed, idle_fraction):
    """A table-backed context plus a random genome matrix."""
    num_gpus = 4 * num_nodes  # Longhorn nodes hold 4 GPUs
    jobs = make_jobs(num_jobs)
    rng = np.random.default_rng(seed)
    never = set()
    for i, (job_id, job) in enumerate(jobs.items()):
        if rng.random() < 0.25:
            never.add(job_id)
            continue
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(int(rng.integers(200, 6000)), 10.0)
    model = ThroughputModel(make_longhorn_cluster(num_gpus))
    limits = {j: job.spec.base_batch * int(rng.integers(1, 6)) for j, job in jobs.items()}
    roster = tuple(sorted(jobs))
    table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
    ctx = replace(
        make_context(jobs, num_gpus=num_gpus, limits=limits, seed=seed, never_started=never),
        throughput_fn=None,
        throughput_table=table,
        rng=np.random.default_rng(seed + 1),
    )
    rows = int(rng.integers(2, 10))
    genomes = rng.integers(0, num_jobs, size=(rows, num_gpus)).astype(np.int64)
    genomes[rng.random(genomes.shape) < idle_fraction] = IDLE
    return ctx, genomes


def _desired(ctx):
    return np.array([ctx.desired_gpus(j) for j in ctx.roster], dtype=np.int64)


# --- invariant checkers (shared by Hypothesis and the fuzz fallback) -----------------------------


def check_genomes_well_formed(genomes, num_jobs):
    """Values in {IDLE} ∪ [0, num_jobs); a GPU can never be double-assigned
    because the genome *is* the GPU→job function."""
    assert genomes.dtype == np.int64
    assert genomes.min(initial=IDLE) >= IDLE
    assert genomes.max(initial=IDLE) < num_jobs


def check_respects_gpu_limits(genomes, ctx):
    """After refresh no job holds more than its desired_gpus."""
    desired = _desired(ctx)
    for row in genomes:
        counts = np.bincount(row[row != IDLE], minlength=len(ctx.roster))
        assert (counts <= desired).all(), (counts, desired)


def check_no_strandable_idle_gpu(genomes, ctx):
    """If a filled genome still has idle GPUs, no job could take one."""
    desired = _desired(ctx)
    for row in genomes:
        if (row == IDLE).any():
            counts = np.bincount(row[row != IDLE], minlength=len(ctx.roster))
            assert (counts >= desired).all(), (counts, desired)


def check_reorder_contract(before, after):
    """Multiset preserved; every job's workers contiguous; idle packed last."""
    for row_before, row_after in zip(before, after):
        assert sorted(row_before.tolist()) == sorted(row_after.tolist())
        placed = row_after[row_after != IDLE]
        # idle genes only at the tail
        assert (row_after[: placed.size] != IDLE).all()
        # contiguity: each placed value appears in exactly one run
        changes = 1 + int(np.count_nonzero(np.diff(placed))) if placed.size else 0
        assert changes == np.unique(placed).size


def run_all_invariants(num_nodes, num_jobs, seed, idle_fraction):
    ctx, genomes = _scenario(num_nodes, num_jobs, seed, idle_fraction)
    num_jobs = len(ctx.roster)

    refreshed = refresh_population(genomes, ctx)
    check_genomes_well_formed(refreshed, num_jobs)
    check_respects_gpu_limits(refreshed, ctx)
    check_no_strandable_idle_gpu(refreshed, ctx)

    filled = fill_idle_population(genomes, ctx)
    check_genomes_well_formed(filled, num_jobs)
    check_no_strandable_idle_gpu(filled, ctx)

    reordered = reorder_population(refreshed)
    check_genomes_well_formed(reordered, num_jobs)
    check_reorder_contract(refreshed, reordered)

    # The scalar reference upholds the same contracts (differential
    # parity is asserted elsewhere; here we only need the invariants).
    roster = ctx.roster
    scalar = np.stack(
        [refresh(Schedule(roster=roster, genome=g), ctx).genome for g in genomes]
    )
    check_respects_gpu_limits(scalar, ctx)
    check_no_strandable_idle_gpu(scalar, ctx)
    scalar_filled = np.stack(
        [fill_idle_gpus(Schedule(roster=roster, genome=g), ctx).genome for g in genomes]
    )
    check_no_strandable_idle_gpu(scalar_filled, ctx)
    scalar_reordered = np.stack(
        [reorder(Schedule(roster=roster, genome=g)).genome for g in refreshed]
    )
    check_reorder_contract(refreshed, scalar_reordered)

    # A full generation only ever emits well-formed genomes, and its
    # survivors (post refresh+fill) never waste a GPU a job could use.
    result = run_generation(refreshed, ctx, EvolutionConfig(population_size=6))
    check_genomes_well_formed(result.population, num_jobs)
    check_genomes_well_formed(result.best_genome[None, :], num_jobs)
    # Survivors must be constructible through the validating public API.
    Schedule(roster=roster, genome=result.best_genome)


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=1, max_value=6),
        num_jobs=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        idle_fraction=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_operator_invariants_hypothesis(num_nodes, num_jobs, seed, idle_fraction):
        run_all_invariants(num_nodes, num_jobs, seed, idle_fraction)


@pytest.mark.parametrize("seed", range(8))
def test_operator_invariants_fuzz(seed):
    """Seeded fuzz loop: the Hypothesis-free fallback of the same properties."""
    rng = np.random.default_rng(1000 + seed)
    for _ in range(3):
        run_all_invariants(
            num_nodes=int(rng.integers(1, 6)),
            num_jobs=int(rng.integers(1, 12)),
            seed=int(rng.integers(0, 2**31 - 1)),
            idle_fraction=float(rng.uniform(0.0, 0.9)),
        )
