"""Behavioural tests of ONES's policy details (§3.2.2 Update, §3.3.2 policies)."""

import pytest

from repro.baselines.base import ClusterState
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator
from tests.conftest import make_job, make_running_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


@pytest.fixture
def scheduler():
    return ONESScheduler(ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=3)


@pytest.fixture
def topology():
    return make_longhorn_cluster(8)


class TestUpdateCondition:
    def test_first_deployment_is_immediate(self, scheduler, topology):
        job = make_job(job_id="a")
        state = _state({"a": job}, topology)
        assert scheduler._may_full_update(state)

    def test_blocked_until_every_running_job_finishes_an_epoch(self, scheduler, topology):
        job = make_job(job_id="a")
        state = _state({"a": job}, topology)
        proposal = scheduler.on_job_arrival(job, state)
        assert proposal is not None
        config = proposal.config_of("a")
        job.start_running(0.0, config.gpu_ids, config.local_batches)
        running_state = _state({"a": job}, topology, proposal, now=1.0)
        # No epoch finished since the deployment: a full update is not allowed.
        assert not scheduler._may_full_update(running_state)
        job.advance(job.dataset_size, 10.0)
        job.complete_epoch(10.0)
        assert scheduler._may_full_update(_state({"a": job}, topology, proposal, now=10.0))

    def test_incremental_fill_never_touches_running_jobs(self, scheduler, topology):
        running = make_running_job(job_id="run", gpu_ids=(0, 1), local_batches=(64, 64))
        pending = make_job(job_id="wait", arrival_time=5.0)
        allocation = Allocation.from_job_map({"run": [(0, 64), (1, 64)]})
        jobs = {"run": running, "wait": pending}
        scheduler._has_deployed = True
        scheduler._epochs_at_last_update = {"run": running.epochs_completed}
        state = _state(jobs, topology, allocation, now=5.0)
        proposal = scheduler.on_job_arrival(pending, state)
        assert proposal is not None
        # The running job's configuration is untouched by the immediate fill.
        assert proposal.config_of("run") == allocation.config_of("run")
        assert proposal.num_gpus("wait") >= 1

    def test_immediate_fill_can_be_disabled(self, topology):
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4), immediate_fill=False),
            seed=3,
        )
        running = make_running_job(job_id="run", gpu_ids=(0,), local_batches=(64,))
        pending = make_job(job_id="wait", arrival_time=5.0)
        allocation = Allocation.from_job_map({"run": [(0, 64)]})
        scheduler._has_deployed = True
        scheduler._epochs_at_last_update = {"run": running.epochs_completed}
        state = _state({"run": running, "wait": pending}, topology, allocation, now=5.0)
        assert scheduler.on_job_arrival(pending, state) is None


class TestResumePolicy:
    def test_rejected_waiting_job_limit_is_halved(self, scheduler, topology):
        # Fill the cluster with running jobs so the newcomer stays waiting.
        jobs = {}
        mapping = {}
        for i in range(2):
            job_id = f"busy-{i}"
            job = make_running_job(job_id=job_id, gpu_ids=tuple(range(i * 4, i * 4 + 4)),
                                   local_batches=(64,) * 4)
            job.advance(2000, 10.0)
            jobs[job_id] = job
            mapping[job_id] = [(g, 64) for g in range(i * 4, i * 4 + 4)]
        allocation = Allocation.from_job_map(mapping)
        waiting = make_job(job_id="wait", arrival_time=20.0, base_batch=128)
        jobs["wait"] = waiting
        scheduler.limiter.on_job_arrival(waiting)
        before = scheduler.limiter.limit("wait")
        state = _state(jobs, topology, allocation, now=20.0)
        # Force a full update; if the best candidate keeps "wait" out, the
        # resume policy halves its limit (floored at the submitted batch).
        scheduler._apply_resume_policy(state, allocation)
        after = scheduler.limiter.limit("wait")
        assert after <= before

    def test_preempted_job_keeps_its_limit(self, scheduler, topology):
        job = make_running_job(job_id="run", gpu_ids=(0,), local_batches=(64,))
        scheduler.limiter.on_job_arrival(job)
        before = scheduler.limiter.limit("run")
        state = _state({"run": job}, topology, Allocation.from_job_map({"run": [(0, 64)]}))
        scheduler._apply_resume_policy(state, Allocation.empty())
        assert scheduler.limiter.limit("run") == before


class TestEndToEndBehaviour:
    def test_reconfigurations_stay_cheap(self, topology):
        trace = TraceGenerator(
            TraceConfig(num_jobs=6, arrival_rate=1.0 / 15.0, convergence_patience=3), seed=5
        ).generate()
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=6)), seed=5
        )
        result = ClusterSimulator(
            topology, scheduler, trace, config=SimulationConfig(max_time=48 * 3600)
        ).run()
        assert not result.incomplete
        total_overhead = sum(m["reconfig_overhead"] for m in result.completed.values())
        total_exec = sum(m["execution_time"] for m in result.completed.values())
        # Elastic scaling keeps total re-configuration cost a small fraction
        # of the work done, even though ONES re-configures aggressively.
        assert total_overhead < 0.3 * total_exec

    def test_learning_rate_scaling_enabled_for_all_jobs(self, topology, tiny_trace):
        scheduler = ONESScheduler(
            ONESConfig(evolution=EvolutionConfig(population_size=4)), seed=5
        )
        result = ClusterSimulator(topology, scheduler, tiny_trace).run()
        for job in result.jobs.values():
            assert job.lr_scaled

    def test_no_job_exceeds_its_batch_limit_cap(self, topology, tiny_trace):
        config = ONESConfig(evolution=EvolutionConfig(population_size=4))
        scheduler = ONESScheduler(config, seed=5)
        result = ClusterSimulator(topology, scheduler, tiny_trace).run()
        cap_multiplier = config.batch_limits.max_batch_multiplier
        for spec in tiny_trace:
            job = result.jobs[spec.job_id]
            max_batch = max((b for _, b in job.batch_history), default=0)
            assert max_batch <= cap_multiplier * spec.base_batch + spec.base_batch
