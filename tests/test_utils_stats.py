"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import (
    RunningMean,
    cumulative_frequency,
    fraction_below,
    percentile_summary,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_quartiles_ordered(self):
        stats = summarize(np.arange(100))
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.maximum

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1, 2, 3]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "p25", "median", "p75", "max"}


class TestPercentileSummary:
    def test_values(self):
        result = percentile_summary(np.arange(101), percentiles=(50, 90))
        assert result[50.0] == pytest.approx(50.0)
        assert result[90.0] == pytest.approx(90.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_summary([])


class TestCumulativeFrequency:
    def test_monotone_and_bounded(self):
        x, cf = cumulative_frequency([3, 1, 2, 5, 4], num_points=50)
        assert np.all(np.diff(cf) >= 0)
        assert cf[-1] == pytest.approx(1.0)
        assert cf[0] >= 0.0

    def test_log_space_grid(self):
        x, cf = cumulative_frequency([1, 10, 100, 1000], num_points=10, log_space=True)
        assert x[0] == pytest.approx(1.0)
        assert x[-1] == pytest.approx(1000.0)

    def test_single_value(self):
        x, cf = cumulative_frequency([7.0, 7.0])
        assert np.all(cf == 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cumulative_frequency([])


class TestFractionBelow:
    def test_fraction(self):
        assert fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_all_below(self):
        assert fraction_below([1, 2], 100) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_below([], 1.0)


class TestRunningMean:
    def test_matches_numpy(self, rng):
        values = rng.normal(10, 3, size=200)
        rm = RunningMean()
        for v in values:
            rm.update(float(v))
        assert rm.mean == pytest.approx(float(np.mean(values)))
        assert rm.std == pytest.approx(float(np.std(values, ddof=1)), rel=1e-6)

    def test_zero_and_one_observation(self):
        rm = RunningMean()
        assert rm.variance == 0.0
        rm.update(5.0)
        assert rm.mean == 5.0
        assert rm.variance == 0.0
