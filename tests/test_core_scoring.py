"""Tests for repro.core.scoring (SRUF / Algorithm 1)."""

import numpy as np
import pytest

from repro.core.schedule import IDLE, Schedule
from repro.core.scoring import (
    candidate_score,
    probability_sample,
    sample_progress,
    score_candidates,
    select_top_k,
)
from repro.prediction.beta import BetaDistribution
from tests._core_helpers import make_context, make_jobs


@pytest.fixture
def context():
    jobs = make_jobs(3)
    # Give jobs some processed history so Eq. 8 has non-zero terms.
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i], [64])
        job.advance(2000 * (i + 1), 10.0)
    return make_context(jobs, num_gpus=4)


def _schedule(context, counts):
    """Build a schedule giving counts[i] GPUs to job-i."""
    genome = np.full(4, IDLE, dtype=np.int64)
    cursor = 0
    for idx, count in enumerate(counts):
        for _ in range(count):
            genome[cursor] = idx
            cursor += 1
    return Schedule(roster=context.roster, genome=genome)


class TestSampleProgress:
    def test_one_sample_per_job(self, context):
        samples = sample_progress(context.jobs, context.distributions, rng=0)
        assert set(samples) == set(context.jobs)
        assert all(0 < v < 1 for v in samples.values())

    def test_missing_distribution_uses_uniform(self, context):
        samples = sample_progress(context.jobs, {}, rng=0)
        assert len(samples) == len(context.jobs)


class TestCandidateScore:
    def test_score_is_finite_and_positive(self, context):
        schedule = _schedule(context, [2, 1, 1])
        progress = {j: 0.5 for j in context.roster}
        score = candidate_score(schedule, context.jobs, progress, context.throughput_fn)
        assert np.isfinite(score)
        assert score > 0

    def test_new_jobs_cost_nothing(self, context):
        """Eq. 8: a job with no processed samples contributes zero."""
        fresh_jobs = make_jobs(2)
        ctx = make_context(fresh_jobs, num_gpus=4)
        schedule = Schedule(roster=ctx.roster, genome=np.array([0, 1, IDLE, IDLE]))
        score = candidate_score(schedule, ctx.jobs, {j: 0.5 for j in ctx.roster}, ctx.throughput_fn)
        assert score == 0.0

    def test_lower_progress_means_higher_score(self, context):
        schedule = _schedule(context, [2, 1, 1])
        optimistic = {j: 0.9 for j in context.roster}
        pessimistic = {j: 0.1 for j in context.roster}
        assert candidate_score(
            schedule, context.jobs, pessimistic, context.throughput_fn
        ) > candidate_score(schedule, context.jobs, optimistic, context.throughput_fn)

    def test_score_candidates_vectorises(self, context):
        schedules = [_schedule(context, [2, 1, 1]), _schedule(context, [1, 2, 1])]
        progress = {j: 0.5 for j in context.roster}
        scores = score_candidates(schedules, context.jobs, progress, context.throughput_fn)
        assert scores.shape == (2,)


class TestProbabilitySample:
    def test_returns_best_candidate(self, context):
        good = _schedule(context, [2, 1, 1])
        # A candidate that leaves the heaviest job unscheduled scores lower
        # utilisation but probability_sample only compares what is given.
        candidates = [good, _schedule(context, [1, 1, 1])]
        best, score = probability_sample(
            candidates, context.jobs, context.distributions, context.throughput_fn, rng=1
        )
        assert best in candidates
        assert np.isfinite(score)

    def test_empty_candidates_rejected(self, context):
        with pytest.raises(ValueError):
            probability_sample([], context.jobs, context.distributions, context.throughput_fn)


class TestSelectTopK:
    def test_returns_k_sorted_unique(self, context):
        candidates = [
            _schedule(context, [2, 1, 1]),
            _schedule(context, [1, 2, 1]),
            _schedule(context, [1, 1, 2]),
            _schedule(context, [2, 1, 1]),  # duplicate genome
        ]
        survivors = select_top_k(
            candidates, context.jobs, context.distributions, context.throughput_fn, k=3, rng=2
        )
        assert len(survivors) == 3
        scores = [s for _, s in survivors]
        assert scores == sorted(scores)
        keys = {sched.key() for sched, _ in survivors}
        assert len(keys) == 3

    def test_k_larger_than_pool(self, context):
        candidates = [_schedule(context, [2, 1, 1])]
        survivors = select_top_k(
            candidates, context.jobs, context.distributions, context.throughput_fn, k=5, rng=2
        )
        assert len(survivors) == 1

    def test_invalid_k(self, context):
        with pytest.raises(ValueError):
            select_top_k([], context.jobs, context.distributions, context.throughput_fn, k=0)
