"""Tests for the scheduler registry (repro.experiments.registry)."""

import pytest

from repro.baselines.base import SchedulerCapabilities
from repro.baselines.fifo import FIFOScheduler
from repro.core.ones_scheduler import ONESScheduler
from repro.experiments import registry
from repro.experiments.registry import (
    UnknownSchedulerError,
    available_schedulers,
    capabilities_table,
    create_scheduler,
    is_registered,
    paper_schedulers,
    register_scheduler,
    resolve,
    unregister_scheduler,
)

DUMMY_CAPS = SchedulerCapabilities(
    strategy="greedy",
    allows_preemption=False,
    elastic_job_size=False,
    elastic_batch_size=False,
)


@pytest.fixture
def scratch_registration():
    """Track test registrations and remove them afterwards."""
    registered = []

    def track(name):
        registered.append(name)
        return name

    yield track
    for name in registered:
        if is_registered(name):
            unregister_scheduler(name)


class TestBuiltins:
    def test_all_schedulers_registered(self):
        assert set(available_schedulers()) == {
            "ONES", "ONES-hier", "DRL", "Tiresias", "Optimus", "Gandiva",
            "FIFO", "SRTF",
        }

    def test_paper_schedulers_are_the_fig15_four(self):
        assert paper_schedulers() == ("ONES", "DRL", "Tiresias", "Optimus")

    def test_lookup_is_case_insensitive(self):
        assert resolve("ones").name == "ONES"
        assert resolve("TIRESIAS").name == "Tiresias"

    def test_alias_lookup(self):
        assert resolve("srtf-oracle").name == "SRTF"

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownSchedulerError) as excinfo:
            resolve("SLAQ")
        assert "ONES" in str(excinfo.value)

    def test_create_scheduler_fresh_instances(self):
        a = create_scheduler("FIFO", 1)
        b = create_scheduler("FIFO", 1)
        assert isinstance(a, FIFOScheduler)
        assert a is not b

    def test_create_ones_with_options(self):
        scheduler = create_scheduler("ONES", 3, population_size=4, mutation_rate=0.5)
        assert isinstance(scheduler, ONESScheduler)
        assert scheduler.config.evolution.population_size == 4
        assert scheduler.config.evolution.mutation_rate == 0.5

    def test_capabilities_table_matches_table3(self):
        rows = {row["Scheduler"]: row for row in capabilities_table()}
        assert rows["ONES"]["Greedy/Dynamic Strategy"] == "Dynamic"
        assert rows["ONES"]["Elastic Batch Size"] == "Y"
        assert rows["Tiresias"]["Allow Preemption"] == "Y"
        assert rows["FIFO"]["Elastic Job Size"] == "N"


class TestRegistrationRoundTrip:
    def test_register_lookup_capabilities_row(self, scratch_registration):
        name = scratch_registration("TestPolicy")

        @register_scheduler(name, capabilities=DUMMY_CAPS, description="a test policy")
        def make(seed):
            return FIFOScheduler()

        entry = resolve("testpolicy")
        assert entry.name == name
        assert entry.description == "a test policy"
        assert entry.as_row()["Scheduler"] == name
        assert entry.as_row()["Greedy/Dynamic Strategy"] == "Greedy"
        assert isinstance(create_scheduler(name, 1), FIFOScheduler)
        assert name in available_schedulers()
        assert name not in paper_schedulers()

    def test_duplicate_registration_rejected(self, scratch_registration):
        name = scratch_registration("Duped")
        register_scheduler(name, capabilities=DUMMY_CAPS)(lambda seed: FIFOScheduler())
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(name, capabilities=DUMMY_CAPS)(lambda seed: FIFOScheduler())
        # ... including via an alias colliding with an existing name.
        other = scratch_registration("Other")
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(other, capabilities=DUMMY_CAPS, aliases=("duped",))(
                lambda seed: FIFOScheduler()
            )

    def test_replace_allows_override(self, scratch_registration):
        name = scratch_registration("Replaceable")
        register_scheduler(name, capabilities=DUMMY_CAPS)(lambda seed: FIFOScheduler())
        marker = []
        register_scheduler(name, capabilities=DUMMY_CAPS, replace=True)(
            lambda seed: (marker.append(seed), FIFOScheduler())[1]
        )
        create_scheduler(name, 5)
        assert marker == [5]

    def test_unregister(self, scratch_registration):
        name = scratch_registration("Ephemeral")
        register_scheduler(name, capabilities=DUMMY_CAPS, aliases=("eph",))(
            lambda seed: FIFOScheduler()
        )
        assert is_registered("eph")
        # Unregistering accepts any-case names and aliases, like resolve().
        unregister_scheduler("EPH")
        assert not is_registered(name)
        assert not is_registered("eph")
        with pytest.raises(UnknownSchedulerError):
            unregister_scheduler(name)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_scheduler("  ", capabilities=DUMMY_CAPS)

    def test_registry_state_is_consistent(self):
        # Every lookup key resolves to a registered canonical entry.
        for key, canonical in registry._LOOKUP.items():
            assert canonical in registry._REGISTRY
            assert resolve(key).name == canonical
