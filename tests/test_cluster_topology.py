"""Tests for repro.cluster.topology."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology, make_longhorn_cluster


class TestConstruction:
    def test_longhorn_64(self):
        cluster = make_longhorn_cluster(64)
        assert cluster.num_gpus == 64
        assert cluster.num_nodes == 16
        assert cluster.gpus_per_node == 4

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            make_longhorn_cluster(10)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology(0)


class TestLayout:
    def test_node_of_vectorised(self, small_topology):
        nodes = small_topology.node_of([0, 3, 4, 7])
        assert list(nodes) == [0, 0, 1, 1]

    def test_gpus_of_node(self, small_topology):
        assert list(small_topology.gpus_of_node(1)) == [4, 5, 6, 7]

    def test_gpu_handle(self, small_topology):
        handle = small_topology.gpu(5)
        assert handle.gpu_id == 5
        assert handle.node_id == 1

    def test_gpu_out_of_range(self, small_topology):
        with pytest.raises(IndexError):
            small_topology.gpu(100)

    def test_node_out_of_range(self, small_topology):
        with pytest.raises(IndexError):
            small_topology.gpus_of_node(5)

    def test_all_gpu_ids(self, small_topology):
        assert np.array_equal(small_topology.all_gpu_ids(), np.arange(8))


class TestBandwidth:
    def test_intra_node_faster_than_inter(self, small_topology):
        intra = small_topology.link_bandwidth(0, 0)
        inter = small_topology.link_bandwidth(0, 1)
        assert intra > inter

    def test_ring_bandwidth_single_node(self, small_topology):
        bw = small_topology.ring_bandwidth([0, 1, 2, 3])
        assert bw == pytest.approx(small_topology.node_spec.intra_node_bandwidth)

    def test_ring_bandwidth_cross_node_is_bottlenecked(self, small_topology):
        bw = small_topology.ring_bandwidth([0, 1, 4, 5])
        assert bw == pytest.approx(small_topology.node_spec.inter_node_bandwidth)

    def test_ring_bandwidth_empty_raises(self, small_topology):
        with pytest.raises(ValueError):
            small_topology.ring_bandwidth([])

    def test_ring_latency_grows_cross_node(self, small_topology):
        local = small_topology.ring_latency([0, 1])
        remote = small_topology.ring_latency([0, 4])
        assert remote > local


class TestSummaries:
    def test_nodes_spanned(self, small_topology):
        assert small_topology.nodes_spanned([0, 1]) == 1
        assert small_topology.nodes_spanned([0, 4]) == 2
        assert small_topology.nodes_spanned([]) == 0

    def test_describe(self, small_topology):
        info = small_topology.describe()
        assert info["gpus"] == 8
        assert info["nodes"] == 2
        assert info["gpu"] == "V100"
