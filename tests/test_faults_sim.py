"""Fault injection through the simulator: evictions, recovery, bit-identity.

Covers the kernel-side half of the subsystem: the ``NODE_DOWN`` /
``NODE_UP`` / ``GPU_DEGRADED`` handlers, the checkpoint/restart cost
model, node compaction for ONES, the zero-fault bit-identity guarantee
(nine scheduler/scale cells), and the end-to-end acceptance scenario
(every scheduler completes a faulted 64-GPU / 40-job run).
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.baselines.base import ClusterState
from repro.baselines.fifo import FIFOScheduler
from repro.cluster.allocation import Allocation
from repro.cluster.topology import make_longhorn_cluster
from repro.experiments.registry import available_schedulers, create_scheduler
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.faults.masking import compact_state, virtual_cluster
from repro.jobs.throughput import ThroughputModel
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator

warnings.filterwarnings("ignore", message="Covariance of the parameters")


def _trace(num_jobs=6, seed=17, patience=4, interval=15.0):
    config = TraceConfig(
        num_jobs=num_jobs, arrival_rate=1.0 / interval, convergence_patience=patience
    )
    return TraceGenerator(config, seed=seed).generate()


def _outage(node, start=60.0, end=600.0):
    """A single explicit outage window as a FaultConfig."""
    return FaultConfig(
        injections=(
            FaultInjection(start, FaultKind.NODE_DOWN, node),
            FaultInjection(end, FaultKind.NODE_UP, node),
        )
    )


def _run(scheduler_name, trace, num_gpus=16, faults=None, **options):
    scheduler = create_scheduler(scheduler_name, 2021, **options)
    simulator = ClusterSimulator(
        make_longhorn_cluster(num_gpus),
        scheduler,
        trace,
        config=SimulationConfig(faults=faults),
    )
    return simulator.run()


class TestNodeDownEviction:
    def _sim(self, faults):
        return ClusterSimulator(
            make_longhorn_cluster(8),
            FIFOScheduler(),
            _trace(num_jobs=4),
            config=SimulationConfig(faults=faults),
        )

    def test_outage_evicts_and_recovers(self):
        # Node 0 dies at t=60 while the first jobs are running; the run
        # must evict them, charge restart costs, and still finish.
        result = self._sim(_outage(0)).run()
        assert result.incomplete == []
        assert result.faults["node_down_events"] == 1
        assert result.faults["node_up_events"] == 1
        assert result.faults["evictions"] >= 1
        assert result.faults["restarts"] >= 1
        assert result.faults["restart_delay_seconds"] > 0
        assert result.faults["downtime_gpu_seconds"] > 0
        assert 0.0 < result.faults["goodput"] <= 1.0

    def test_no_allocation_ever_touches_a_down_node(self):
        simulator = self._sim(_outage(0, start=60.0, end=4000.0))
        dead = set(int(g) for g in simulator.topology.gpus_of_node(0))

        original = simulator._apply_allocation
        observed = []

        def checked(proposal):
            if simulator.faults.down_nodes:
                observed.append(set(proposal.used_gpus()) & dead)
            return original(proposal)

        simulator._apply_allocation = checked
        result = simulator.run()
        assert result.incomplete == []
        assert all(not overlap for overlap in observed)

    def test_lost_work_rolled_back_to_epoch_boundary(self):
        # With lost_work_fraction=1.0 the victim loses exactly its
        # progress since the last epoch boundary.
        faults = _outage(0, start=200.0, end=900.0)
        simulator = self._sim(faults)
        result = simulator.run()
        assert result.faults["lost_samples"] > 0
        assert result.faults["lost_gpu_seconds"] > 0

    def test_zero_lost_work_fraction_preserves_progress(self):
        import dataclasses

        gentle = dataclasses.replace(
            _outage(0, start=200.0, end=900.0), lost_work_fraction=0.0
        )
        result = self._sim(gentle).run()
        assert result.faults["lost_samples"] == 0.0
        assert result.faults["evictions"] >= 1

    def test_validate_proposal_rejects_down_gpus(self):
        simulator = self._sim(_outage(0, start=1.0, end=4000.0))
        simulator.run()
        # Re-mark node 0 down and try to deploy onto one of its GPUs.
        simulator.faults.mark_down(0)
        job = next(iter(simulator.jobs.values()))
        proposal = Allocation.from_job_map({job.job_id: [(0, 32)]})
        with pytest.raises(ValueError, match="unavailable"):
            simulator._validate_proposal(proposal)


class TestDegradedNodes:
    def test_straggler_slows_rates_and_recovers(self):
        slow = FaultConfig(
            injections=(
                FaultInjection(60.0, FaultKind.GPU_DEGRADED, 0, factor=0.25),
                FaultInjection(600.0, FaultKind.GPU_DEGRADED, 0, factor=1.0),
            )
        )
        clean = _run("FIFO", _trace(num_jobs=4), num_gpus=8)
        degraded = _run("FIFO", _trace(num_jobs=4), num_gpus=8, faults=slow)
        assert degraded.incomplete == []
        assert degraded.faults["degrade_events"] == 2
        # A straggler must cost wall-clock, never capacity.
        assert degraded.faults["evictions"] == 0
        assert degraded.makespan > clean.makespan

    def test_degrade_affects_only_placements_on_the_node(self):
        topology = make_longhorn_cluster(8)
        simulator = ClusterSimulator(
            topology,
            FIFOScheduler(),
            _trace(num_jobs=2),
            config=SimulationConfig(
                faults=FaultConfig(
                    injections=(
                        FaultInjection(60.0, FaultKind.GPU_DEGRADED, 0, factor=0.5),
                        FaultInjection(600.0, FaultKind.GPU_DEGRADED, 0, factor=1.0),
                    )
                )
            ),
        )
        simulator.run()
        runtime = simulator.faults
        assert runtime.placement_factor([0, 1]) == 1.0  # restored at t=600


class TestMasking:
    def _state(self, down_node=0):
        topology = make_longhorn_cluster(16)
        model = ThroughputModel(topology)
        unavailable = frozenset(int(g) for g in topology.gpus_of_node(down_node))
        return ClusterState(
            now=0.0,
            topology=topology,
            throughput_model=model,
            allocation=Allocation.empty(),
            jobs={},
            unavailable_gpus=unavailable,
        )

    def test_virtual_cluster_shrinks_by_whole_nodes(self):
        state = self._state()
        topology, model = virtual_cluster(state)
        assert topology.num_nodes == state.topology.num_nodes - 1
        assert topology.num_gpus == state.topology.num_gpus - state.topology.gpus_per_node
        assert model.allreduce_efficiency == state.throughput_model.allreduce_efficiency

    def test_mapping_round_trips_allocations(self):
        state = self._state(down_node=1)
        topology, model = virtual_cluster(state)
        view = compact_state(state, topology, model)
        # Virtual ids are dense and map to up-node GPUs only.
        assert sorted(view.from_real) == sorted(
            set(range(16)) - set(state.unavailable_gpus)
        )
        virtual_alloc = Allocation.from_job_map({"job-a": [(0, 32), (1, 32)]})
        real = view.expand(virtual_alloc)
        assert all(g not in state.unavailable_gpus for g in real.used_gpus())
        assert view.compress(real).as_dict() == virtual_alloc.as_dict()

    def test_locality_preserved_exactly(self):
        state = self._state(down_node=1)
        topology, model = virtual_cluster(state)
        view = compact_state(state, topology, model)
        per_node = state.topology.gpus_per_node
        for virtual_gpu in range(topology.num_gpus):
            real_gpu = int(view.to_real[virtual_gpu])
            # GPUs sharing a virtual node share a real node.
            assert int(topology.node_of(virtual_gpu)) == virtual_gpu // per_node
            assert int(state.topology.node_of(real_gpu)) != 1

    def test_partial_node_unavailability_rejected(self):
        state = self._state()
        state.unavailable_gpus = frozenset({0})  # half a node
        with pytest.raises(ValueError, match="whole nodes"):
            virtual_cluster(state)


#: The nine pinned scheduler/scale cells of the zero-fault identity test:
#: three schedulers x three (capacity, jobs) scales.  ONES runs with a
#: small population so the whole matrix stays fast.
NINE_CELLS = [
    (scheduler, num_gpus, num_jobs)
    for scheduler in ("ONES", "FIFO", "Tiresias")
    for num_gpus, num_jobs in ((8, 4), (16, 6), (16, 8))
]


class TestZeroFaultBitIdentity:
    """A disabled FaultConfig must not perturb a single trajectory."""

    @pytest.mark.parametrize("scheduler,num_gpus,num_jobs", NINE_CELLS)
    def test_disabled_faults_identical(self, scheduler, num_gpus, num_jobs):
        options = {"population_size": 4} if scheduler == "ONES" else {}
        trace = _trace(num_jobs=num_jobs)
        clean = _run(scheduler, trace, num_gpus, faults=None, **options)
        disabled = _run(
            scheduler, trace, num_gpus, faults=FaultConfig(profile="none"), **options
        )
        assert json.dumps(clean.to_dict(), sort_keys=True) == json.dumps(
            disabled.to_dict(), sort_keys=True
        )

    def test_nonzero_plan_changes_deterministically(self):
        trace = _trace(num_jobs=6)
        clean = _run("ONES", trace, 16, population_size=4)
        faulted_a = _run("ONES", trace, 16, faults=_outage(1), population_size=4)
        faulted_b = _run("ONES", trace, 16, faults=_outage(1), population_size=4)
        # The plan changes the trajectory...
        assert faulted_a.completed != clean.completed
        # ...but two faulted runs are bit-identical.
        assert json.dumps(faulted_a.to_dict(), sort_keys=True) == json.dumps(
            faulted_b.to_dict(), sort_keys=True
        )


class TestFaultedEndToEnd:
    """Acceptance: every scheduler survives a seeded fault profile."""

    @pytest.mark.parametrize("scheduler", sorted(available_schedulers()))
    def test_all_schedulers_complete_under_mtbf(self, scheduler):
        faults = FaultConfig(profile="mtbf", seed=3, mtbf_hours=0.5, repair_minutes=8)
        options = {"population_size": 4} if scheduler == "ONES" else {}
        result = _run(scheduler, _trace(num_jobs=6), 16, faults=faults, **options)
        assert result.incomplete == [], scheduler
        assert result.faults["node_down_events"] > 0, scheduler

    def test_paper_scale_faulted_scenario(self):
        # The ISSUE acceptance scenario: 64 GPUs / 40 jobs under a seeded
        # MTBF profile, ONES (scaled population) alongside every baseline.
        trace = _trace(num_jobs=40, seed=2021, patience=4, interval=30.0)
        faults = FaultConfig(profile="mtbf", seed=5, mtbf_hours=1.0, repair_minutes=10)
        for scheduler in sorted(available_schedulers()):
            options = (
                {"population_size": 8, "iterations_per_invocation": 1}
                if scheduler == "ONES"
                else {}
            )
            result = _run(scheduler, trace, 64, faults=faults, **options)
            assert result.incomplete == [], scheduler
            assert result.faults["node_down_events"] > 0, scheduler
            assert 0.0 < result.faults["goodput"] <= 1.0, scheduler
