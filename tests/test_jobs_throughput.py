"""Tests for repro.jobs.throughput."""

import numpy as np
import pytest

from repro.jobs.model_zoo import get_model
from repro.jobs.throughput import ThroughputModel, split_batch


class TestSplitBatch:
    def test_even(self):
        assert split_batch(128, 4) == [32, 32, 32, 32]

    def test_uneven_gives_extra_to_first(self):
        assert split_batch(10, 3) == [4, 3, 3]

    def test_total_preserved(self):
        for total in (1, 7, 63, 1024):
            for workers in (1, 3, 8):
                assert sum(split_batch(total, workers)) == total

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_batch(8, 0)
        with pytest.raises(ValueError):
            split_batch(-1, 2)


class TestStepTime:
    def test_compute_time_scales_with_batch(self, throughput_model):
        model = get_model("resnet50")
        assert throughput_model.compute_time(model, 128) > throughput_model.compute_time(model, 16)

    def test_zero_batch_zero_time(self, throughput_model):
        assert throughput_model.compute_time(get_model("resnet50"), 0) == 0.0

    def test_single_worker_has_no_comm(self, throughput_model):
        assert throughput_model.allreduce_time(get_model("resnet50"), [0]) == 0.0

    def test_cross_node_comm_slower(self, throughput_model):
        model = get_model("vgg16")
        intra = throughput_model.allreduce_time(model, [0, 1, 2, 3])
        inter = throughput_model.allreduce_time(model, [0, 1, 4, 5])
        assert inter > intra

    def test_step_time_breakdown(self, throughput_model):
        model = get_model("resnet50")
        breakdown = throughput_model.step_time(model, [64, 64], [0, 1])
        assert breakdown.compute_time > 0
        assert breakdown.communication_time > 0
        assert breakdown.total == pytest.approx(
            breakdown.compute_time + breakdown.communication_time
        )

    def test_step_time_mismatched_lengths(self, throughput_model):
        with pytest.raises(ValueError):
            throughput_model.step_time(get_model("resnet50"), [64], [0, 1])


class TestThroughput:
    def test_positive(self, throughput_model):
        assert throughput_model.throughput(get_model("resnet50"), [64], [0]) > 0

    def test_empty_config_is_zero(self, throughput_model):
        assert throughput_model.throughput(get_model("resnet50"), [], []) == 0.0

    def test_epoch_time(self, throughput_model):
        model = get_model("resnet50")
        rate = throughput_model.throughput(model, [64], [0])
        epoch = throughput_model.epoch_time(model, 6400, [64], [0])
        assert epoch == pytest.approx(6400 / rate)

    def test_epoch_time_unplaced_is_infinite(self, throughput_model):
        assert throughput_model.epoch_time(get_model("resnet50"), 6400, [], []) == float("inf")

    def test_invalid_efficiency(self, small_topology):
        with pytest.raises(ValueError):
            ThroughputModel(small_topology, allreduce_efficiency=1.5)


class TestFigure2Shape:
    """The qualitative behaviour behind Fig. 2."""

    def test_fixed_global_batch_saturates_and_degrades(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
        curve = model.scaling_curve(resnet_cifar, range(1, 9), global_batch=256)
        peak_at = int(np.argmax(curve)) + 1
        # The fixed-batch curve peaks within a single server and degrades
        # beyond it (Fig. 2's flattening-then-dropping curve).
        assert peak_at <= 4
        assert curve[-1] < curve.max()
        # Gains beyond 2 workers are marginal compared to the 1 -> 2 step.
        gain_1_to_2 = curve[1] / curve[0]
        gain_2_to_4 = curve[3] / curve[1]
        assert gain_2_to_4 < gain_1_to_2

    def test_elastic_batch_keeps_growing(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
        elastic = model.scaling_curve(resnet_cifar, range(1, 9), local_batch=256)
        # Throughput keeps growing with workers; a small dip is tolerated
        # at the node boundary (4 -> 5 workers crosses onto InfiniBand).
        assert np.all(elastic >= 0.93 * np.maximum.accumulate(elastic))
        assert elastic[-1] > 4.0 * elastic[0]
        assert np.all(np.diff(elastic[:4]) > 0)
        assert np.all(np.diff(elastic[4:]) > 0)

    def test_elastic_beats_fixed_at_eight_workers(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
        fixed = model.scaling_curve(resnet_cifar, [8], global_batch=256)[0]
        elastic = model.scaling_curve(resnet_cifar, [8], local_batch=256)[0]
        assert elastic > 2.0 * fixed

    def test_scaling_curve_requires_exactly_one_mode(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet = get_model("resnet50")
        with pytest.raises(ValueError):
            model.scaling_curve(resnet, [1, 2])
        with pytest.raises(ValueError):
            model.scaling_curve(resnet, [1, 2], global_batch=256, local_batch=64)
