"""Tests for repro.jobs.throughput."""

import numpy as np
import pytest

from repro.jobs.model_zoo import get_model
from repro.jobs.throughput import (
    BoundedMemo,
    ThroughputModel,
    ThroughputTable,
    derive_global_batch,
    split_batch,
)


class TestSplitBatch:
    def test_even(self):
        assert split_batch(128, 4) == [32, 32, 32, 32]

    def test_uneven_gives_extra_to_first(self):
        assert split_batch(10, 3) == [4, 3, 3]

    def test_total_preserved(self):
        for total in (1, 7, 63, 1024):
            for workers in (1, 3, 8):
                assert sum(split_batch(total, workers)) == total

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_batch(8, 0)
        with pytest.raises(ValueError):
            split_batch(-1, 2)


class TestStepTime:
    def test_compute_time_scales_with_batch(self, throughput_model):
        model = get_model("resnet50")
        assert throughput_model.compute_time(model, 128) > throughput_model.compute_time(model, 16)

    def test_zero_batch_zero_time(self, throughput_model):
        assert throughput_model.compute_time(get_model("resnet50"), 0) == 0.0

    def test_single_worker_has_no_comm(self, throughput_model):
        assert throughput_model.allreduce_time(get_model("resnet50"), [0]) == 0.0

    def test_cross_node_comm_slower(self, throughput_model):
        model = get_model("vgg16")
        intra = throughput_model.allreduce_time(model, [0, 1, 2, 3])
        inter = throughput_model.allreduce_time(model, [0, 1, 4, 5])
        assert inter > intra

    def test_step_time_breakdown(self, throughput_model):
        model = get_model("resnet50")
        breakdown = throughput_model.step_time(model, [64, 64], [0, 1])
        assert breakdown.compute_time > 0
        assert breakdown.communication_time > 0
        assert breakdown.total == pytest.approx(
            breakdown.compute_time + breakdown.communication_time
        )

    def test_step_time_mismatched_lengths(self, throughput_model):
        with pytest.raises(ValueError):
            throughput_model.step_time(get_model("resnet50"), [64], [0, 1])


class TestThroughput:
    def test_positive(self, throughput_model):
        assert throughput_model.throughput(get_model("resnet50"), [64], [0]) > 0

    def test_empty_config_is_zero(self, throughput_model):
        assert throughput_model.throughput(get_model("resnet50"), [], []) == 0.0

    def test_epoch_time(self, throughput_model):
        model = get_model("resnet50")
        rate = throughput_model.throughput(model, [64], [0])
        epoch = throughput_model.epoch_time(model, 6400, [64], [0])
        assert epoch == pytest.approx(6400 / rate)

    def test_epoch_time_unplaced_is_infinite(self, throughput_model):
        assert throughput_model.epoch_time(get_model("resnet50"), 6400, [], []) == float("inf")

    def test_invalid_efficiency(self, small_topology):
        with pytest.raises(ValueError):
            ThroughputModel(small_topology, allreduce_efficiency=1.5)


class TestFigure2Shape:
    """The qualitative behaviour behind Fig. 2."""

    def test_fixed_global_batch_saturates_and_degrades(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
        curve = model.scaling_curve(resnet_cifar, range(1, 9), global_batch=256)
        peak_at = int(np.argmax(curve)) + 1
        # The fixed-batch curve peaks within a single server and degrades
        # beyond it (Fig. 2's flattening-then-dropping curve).
        assert peak_at <= 4
        assert curve[-1] < curve.max()
        # Gains beyond 2 workers are marginal compared to the 1 -> 2 step.
        gain_1_to_2 = curve[1] / curve[0]
        gain_2_to_4 = curve[3] / curve[1]
        assert gain_2_to_4 < gain_1_to_2

    def test_elastic_batch_keeps_growing(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
        elastic = model.scaling_curve(resnet_cifar, range(1, 9), local_batch=256)
        # Throughput keeps growing with workers; a small dip is tolerated
        # at the node boundary (4 -> 5 workers crosses onto InfiniBand).
        assert np.all(elastic >= 0.93 * np.maximum.accumulate(elastic))
        assert elastic[-1] > 4.0 * elastic[0]
        assert np.all(np.diff(elastic[:4]) > 0)
        assert np.all(np.diff(elastic[4:]) > 0)

    def test_elastic_beats_fixed_at_eight_workers(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet_cifar = get_model("resnet50").scaled(0.12, "@cifar10")
        fixed = model.scaling_curve(resnet_cifar, [8], global_batch=256)[0]
        elastic = model.scaling_curve(resnet_cifar, [8], local_batch=256)[0]
        assert elastic > 2.0 * fixed

    def test_scaling_curve_requires_exactly_one_mode(self, small_topology):
        model = ThroughputModel(small_topology)
        resnet = get_model("resnet50")
        with pytest.raises(ValueError):
            model.scaling_curve(resnet, [1, 2])
        with pytest.raises(ValueError):
            model.scaling_curve(resnet, [1, 2], global_batch=256, local_batch=64)


class TestDeriveGlobalBatch:
    def test_zero_for_no_gpus(self):
        assert derive_global_batch(0, 64, 512, 4000) == 0

    def test_limited_by_memory_limit_and_dataset(self):
        # natural = count * max_local_batch caps the batch...
        assert derive_global_batch(2, 64, 512, 4000) == 128
        # ...the limit R_j caps it next...
        assert derive_global_batch(8, 64, 300, 4000) == 300
        # ...and the dataset size caps everything.
        assert derive_global_batch(8, 64, 512, 100) == 100

    def test_at_least_one_sample_per_worker(self):
        assert derive_global_batch(8, 64, 2, 4000) == 8

    def test_matches_schedule_derivation(self):
        from repro.core.schedule import IDLE, Schedule
        from tests._core_helpers import make_jobs

        jobs = make_jobs(2)
        roster = tuple(sorted(jobs))
        schedule = Schedule(
            roster=roster, genome=np.array([0, 0, 1, IDLE], dtype=np.int64)
        )
        for job_id, job in jobs.items():
            assert schedule.global_batch(job, 256) == derive_global_batch(
                schedule.gpu_count(job_id), job.spec.max_local_batch, 256,
                job.dataset_size,
            )


class TestBoundedMemo:
    def test_bounded_with_lru_eviction(self):
        memo = BoundedMemo(max_entries=3)
        for key in "abc":
            memo[key] = 1.0
        memo.get("a")  # refresh 'a' so 'b' is the least recently used
        memo["d"] = 4.0
        assert len(memo) == 3
        assert "a" in memo and "b" not in memo

    def test_hit_miss_counters(self):
        memo = BoundedMemo(max_entries=8)
        memo["k"] = 2.0
        assert memo.get("k") == 2.0
        assert memo.get("missing") is None
        assert memo.hits == 1 and memo.misses == 1

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            BoundedMemo(max_entries=0)


class TestThroughputTable:
    def _fixture(self, num_gpus=8, num_jobs=3):
        from repro.cluster.topology import make_longhorn_cluster
        from tests._core_helpers import make_jobs

        jobs = make_jobs(num_jobs)
        topology = make_longhorn_cluster(num_gpus)
        model = ThroughputModel(topology)
        limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
        return jobs, model, limits, num_gpus

    def test_matches_canonical_model_evaluation(self):
        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        for job_id, job in jobs.items():
            for count in (1, 3, num_gpus):
                expected = model.throughput_even(
                    job.spec.model,
                    derive_global_batch(
                        count, job.spec.max_local_batch, limits[job_id],
                        job.dataset_size,
                    ),
                    range(count),
                )
                assert table.throughput(job_id, count) == expected

    def test_lazy_fill_is_bounded(self):
        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        # The zero-count column of both locality planes starts filled.
        assert table.filled_entries == 2 * len(jobs)
        table.throughput("job-0", 4)
        assert table.filled_entries == 2 * len(jobs) + 1
        table.matrix()
        assert table.filled_entries == table.capacity
        assert table.capacity == len(jobs) * (num_gpus + 1) * 2

    def test_vectorised_lookup_matches_scalar(self):
        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        roster = table.roster
        counts = np.array([[1, 0, 5], [2, 2, 2], [0, 0, 8]], dtype=np.int64)
        values = table.lookup(counts)
        for k in range(counts.shape[0]):
            for j, job_id in enumerate(roster):
                assert values[k, j] == table.throughput(job_id, int(counts[k, j]))

    def test_lookup_validates_shape(self):
        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        with pytest.raises(ValueError):
            table.lookup(np.zeros((2, 99), dtype=np.int64))

    def test_count_out_of_range_rejected(self):
        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        with pytest.raises(ValueError):
            table.throughput("job-0", num_gpus + 1)

    def test_shared_memo_avoids_repeat_model_calls(self):
        jobs, model, limits, num_gpus = self._fixture()
        memo = BoundedMemo(max_entries=1024)
        first = ThroughputTable(model, jobs, limits, num_gpus, memo=memo)
        first.matrix()
        assert first.model_calls > 0
        second = ThroughputTable(model, jobs, limits, num_gpus, memo=memo)
        second.matrix()
        assert second.model_calls == 0  # every entry came from the memo

    def test_as_throughput_fn_adapter(self):
        from repro.core.schedule import IDLE, Schedule

        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        fn = table.as_throughput_fn()
        roster = table.roster
        genome = np.full(num_gpus, IDLE, dtype=np.int64)
        genome[:2] = 0
        schedule = Schedule(roster=roster, genome=genome)
        assert fn(jobs[roster[0]], schedule) == table.throughput(roster[0], 2)
        assert fn(jobs[roster[1]], schedule) == 0.0

    def test_from_matrix_is_frozen(self):
        table = ThroughputTable.from_matrix(("a", "b"), np.ones((2, 4)))
        assert table.throughput("a", 3) == 1.0
        with pytest.raises(ValueError):
            ThroughputTable.from_matrix(("a",), np.ones((2, 4)))
        sparse = np.ones((1, 4))
        sparse[0, 2] = np.nan
        frozen = ThroughputTable.from_matrix(("a",), sparse)
        with pytest.raises(RuntimeError):
            frozen.throughput("a", 2)

    def test_adapter_matches_placement_aware_model(self):
        """The locality planes restore the seed's placement sensitivity:
        the table agrees with the analytic model on ANY placement, packed
        or node-straddling, on the uniform star topology."""
        from repro.core.schedule import IDLE, Schedule
        from tests._core_helpers import make_jobs

        jobs, model, limits, num_gpus = self._fixture(num_gpus=16, num_jobs=3)
        table = ThroughputTable(model, jobs, limits, num_gpus)
        fn = table.as_throughput_fn()
        roster = table.roster
        rng = np.random.default_rng(0)
        for _ in range(20):
            genome = rng.integers(0, len(roster), size=num_gpus).astype(np.int64)
            genome[rng.random(num_gpus) < 0.4] = IDLE
            schedule = Schedule(roster=roster, genome=genome)
            for job_id in schedule.placed_jobs():
                job = jobs[job_id]
                direct = model.throughput_even(
                    job.spec.model,
                    schedule.global_batch(job, limits[job_id]),
                    schedule.gpus_of(job_id),
                )
                assert fn(job, schedule) == pytest.approx(direct)

    def test_planes_differ_across_node_boundary(self):
        """A 2-GPU placement inside one server must beat the same count
        straddling two servers (NVLink vs InfiniBand ring)."""
        jobs, model, limits, num_gpus = self._fixture()
        table = ThroughputTable(model, jobs, limits, num_gpus)
        intra = table.throughput("job-0", 2, crosses_nodes=False)
        inter = table.throughput("job-0", 2, crosses_nodes=True)
        assert intra > inter > 0
