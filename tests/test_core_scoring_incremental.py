"""Differential fuzz suite for the incremental delta-scoring kernel.

Parity contract (see :mod:`repro.core.scoring_incremental`): with
``EvolutionConfig.incremental_scoring`` on, every generation — and hence
every simulated trajectory — must be **bit-identical** to the batched
baseline (itself pinned against the scalar operators by
``test_core_evolution_batched.py``).  This suite fuzzes that contract at
three levels:

* decomposition algebra: ``build_decomposition`` /
  ``rescore_delta`` / ``rebuild_rows`` against fresh rebuilds over
  random genomes and random edit masks;
* operator parity: ``fill_idle_decomposed`` / ``reorder_decomposed``
  against the baseline batched operators from identical state, with the
  maintained decomposition re-validated after every op;
* trajectory parity: seeded multi-event simulations (unfaulted, faulted
  with node compaction mid-search, and hierarchical with partition-view
  swaps) run incremental-on vs incremental-off vs scalar, compared on
  the full per-job completion record.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig
from repro.core.evolution_batched import (
    fill_idle_population,
    refresh_population,
    reorder_population,
    run_generation,
)
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.core.scoring import population_gpu_counts, population_node_crossings
from repro.core.scoring_incremental import (
    IncrementalScoringEngine,
    ScoreDecomposition,
    build_decomposition,
    fill_idle_decomposed,
    reorder_decomposed,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import create_scheduler
from repro.experiments.runner import generate_trace, run_single
from repro.faults import FaultConfig, FaultInjection, FaultKind
from repro.jobs.throughput import ThroughputModel, ThroughputTable
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig
from tests._core_helpers import make_context, make_jobs

IDLE = -1

CASES = [(8, 3, 0), (8, 5, 1), (16, 7, 2), (16, 12, 3), (32, 20, 4)]


def _table_workload(num_gpus, num_jobs, seed, never_started=()):
    """Randomised cluster snapshot + factory for table-backed contexts."""
    jobs = make_jobs(num_jobs)
    rng = np.random.default_rng(seed)
    for i, (job_id, job) in enumerate(jobs.items()):
        if job_id in never_started or rng.random() > 0.8:
            continue
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(int(rng.integers(500, 5000)), 10.0)
    model = ThroughputModel(make_longhorn_cluster(num_gpus))
    limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    base = make_context(
        jobs, num_gpus=num_gpus, limits=limits, seed=seed, never_started=never_started
    )

    def fresh_ctx(rng_seed):
        table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
        return replace(
            base,
            throughput_fn=None,
            throughput_table=table,
            rng=np.random.default_rng(rng_seed),
        )

    return roster, fresh_ctx


def _random_genomes(roster, num_gpus, rows, seed, idle_fraction=0.35):
    rng = np.random.default_rng(seed)
    genomes = rng.integers(0, len(roster), size=(rows, num_gpus)).astype(np.int64)
    genomes[rng.random(genomes.shape) < idle_fraction] = IDLE
    return genomes


def _desired_remaining(ctx):
    from repro.core.evolution_batched import _desired_vector, _remaining_vector

    return _desired_vector(ctx), _remaining_vector(ctx)


def _assert_decomp_fresh(decomp, genomes, node_of):
    """The maintained decomposition equals a from-scratch rebuild."""
    fresh = build_decomposition(genomes, decomp.num_jobs, node_of)
    np.testing.assert_array_equal(decomp.counts, fresh.counts)
    np.testing.assert_array_equal(decomp.crosses, fresh.crosses)
    np.testing.assert_array_equal(decomp.sole_node, fresh.sole_node)


# --- decomposition algebra -----------------------------------------------------------------------


class TestDecomposition:
    @pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
    def test_build_matches_scoring_primitives(self, num_gpus, num_jobs, seed):
        roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
        ctx = fresh_ctx(seed)
        node_of = np.asarray(ctx.throughput_table.node_of, dtype=np.int64)
        genomes = _random_genomes(roster, num_gpus, 16, seed + 10)
        decomp = build_decomposition(genomes, num_jobs, node_of)
        np.testing.assert_array_equal(
            decomp.counts, population_gpu_counts(genomes, num_jobs)
        )
        np.testing.assert_array_equal(
            decomp.crosses, population_node_crossings(genomes, num_jobs, node_of)
        )
        assert decomp.matches(genomes)
        # sole_node: defined exactly on non-crossing placed jobs.
        placed = decomp.counts > 0
        assert np.all((decomp.sole_node >= 0) == (placed & ~decomp.crosses))

    @pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
    def test_rescore_delta_tracks_random_edits(self, num_gpus, num_jobs, seed):
        roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
        node_of = np.asarray(fresh_ctx(seed).throughput_table.node_of, dtype=np.int64)
        genomes = _random_genomes(roster, num_gpus, 20, seed + 20)
        decomp = build_decomposition(genomes, num_jobs, node_of)
        rng = np.random.default_rng(seed + 30)
        for _ in range(5):
            changed = rng.random(genomes.shape) < 0.15
            edits = rng.integers(-1, num_jobs, size=genomes.shape).astype(np.int64)
            genomes[changed] = edits[changed]
            rebuilt = decomp.rescore_delta(genomes, changed)
            assert rebuilt == int(changed.any(axis=1).sum())
            _assert_decomp_fresh(decomp, genomes, node_of)

    def test_rescore_delta_rejects_shape_mismatch(self):
        roster, fresh_ctx = _table_workload(8, 3, 0)
        node_of = np.asarray(fresh_ctx(0).throughput_table.node_of, dtype=np.int64)
        genomes = _random_genomes(roster, 8, 4, 1)
        decomp = build_decomposition(genomes, 3, node_of)
        with pytest.raises(ValueError):
            decomp.rescore_delta(genomes, np.zeros((5, 8), dtype=bool))

    def test_take_and_concatenate_roundtrip(self):
        roster, fresh_ctx = _table_workload(16, 7, 2)
        node_of = np.asarray(fresh_ctx(2).throughput_table.node_of, dtype=np.int64)
        genomes = _random_genomes(roster, 16, 10, 3)
        decomp = build_decomposition(genomes, 7, node_of)
        order = np.array([4, 0, 9, 2])
        taken = decomp.take(order)
        _assert_decomp_fresh(taken, genomes[order], node_of)
        merged = ScoreDecomposition.concatenate([taken, decomp])
        _assert_decomp_fresh(merged, np.concatenate([genomes[order], genomes]), node_of)


# --- operator parity -----------------------------------------------------------------------------


class TestOperatorParity:
    @pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
    def test_fill_decomposed_bit_identical(self, num_gpus, num_jobs, seed):
        roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
        genomes = _random_genomes(roster, num_gpus, 12, seed + 40, idle_fraction=0.5)
        ctx_a, ctx_b = fresh_ctx(9), fresh_ctx(9)
        baseline = fill_idle_population(genomes, ctx_a)
        desired, remaining = _desired_remaining(ctx_b)
        node_of = np.asarray(ctx_b.throughput_table.node_of, dtype=np.int64)
        work = genomes.copy()
        decomp = build_decomposition(work, num_jobs, node_of)
        filled = fill_idle_decomposed(work, ctx_b, decomp, desired, remaining)
        np.testing.assert_array_equal(baseline, filled)
        _assert_decomp_fresh(decomp, filled, node_of)

    @pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
    def test_reorder_decomposed_bit_identical(self, num_gpus, num_jobs, seed):
        roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
        node_of = np.asarray(fresh_ctx(seed).throughput_table.node_of, dtype=np.int64)
        genomes = _random_genomes(roster, num_gpus, 15, seed + 50)
        decomp = build_decomposition(genomes, num_jobs, node_of)
        monotone = bool(np.all(np.diff(node_of) >= 0))
        reordered = reorder_decomposed(genomes.copy(), decomp, monotone)
        np.testing.assert_array_equal(reorder_population(genomes), reordered)
        _assert_decomp_fresh(decomp, reordered, node_of)

    def test_reorder_decomposed_non_monotone_fallback(self):
        """A shuffled GPU→server map must route through rebuild_rows."""
        roster, fresh_ctx = _table_workload(16, 7, 2)
        node_of = np.asarray(fresh_ctx(2).throughput_table.node_of, dtype=np.int64)
        perm = np.random.default_rng(0).permutation(node_of.size)
        shuffled = node_of[perm]
        genomes = _random_genomes(roster, 16, 12, 6)
        decomp = build_decomposition(genomes, 7, shuffled)
        reordered = reorder_decomposed(genomes.copy(), decomp, False)
        np.testing.assert_array_equal(reorder_population(genomes), reordered)
        _assert_decomp_fresh(decomp, reordered, shuffled)

    @pytest.mark.parametrize("num_gpus,num_jobs,seed", CASES)
    def test_generation_bit_identical(self, num_gpus, num_jobs, seed):
        """Chained generations: engine path == baseline path, including RNG."""
        roster, fresh_ctx = _table_workload(num_gpus, num_jobs, seed)
        genomes = _random_genomes(roster, num_gpus, 10, seed + 60)
        config_off = EvolutionConfig(incremental_scoring=False)
        config_on = EvolutionConfig(incremental_scoring=True)
        engine = IncrementalScoringEngine()
        ctx_a, ctx_b = fresh_ctx(11), fresh_ctx(11)
        base, inc = genomes.copy(), genomes.copy()
        for _ in range(4):
            res_a = run_generation(base, ctx_a, config_off)
            res_b = run_generation(inc, ctx_b, config_on, engine=engine)
            np.testing.assert_array_equal(res_a.population, res_b.population)
            np.testing.assert_array_equal(res_a.scores, res_b.scores)
            base, inc = res_a.population, res_b.population
        stats = engine.stats()
        assert stats["full_rebuilds"] == 1  # cold start only
        assert stats["delta_generations"] == 3  # cache hits thereafter


# --- engine cache lifecycle ----------------------------------------------------------------------


class TestEngineLifecycle:
    def _setup(self, seed=2):
        roster, fresh_ctx = _table_workload(16, 7, seed)
        ctx = fresh_ctx(seed)
        genomes = _random_genomes(roster, 16, 8, seed + 70)
        return ctx, genomes

    def test_population_identity_invalidates(self):
        ctx, genomes = self._setup()
        engine = IncrementalScoringEngine()
        config = EvolutionConfig(incremental_scoring=True)
        res = run_generation(genomes, ctx, config, engine=engine)
        # A copied survivor matrix (different array object) forces a rebuild.
        run_generation(res.population.copy(), ctx, config, engine=engine)
        assert engine.stats()["full_rebuilds"] == 2

    def test_explicit_invalidate_forces_rebuild(self):
        ctx, genomes = self._setup()
        engine = IncrementalScoringEngine()
        config = EvolutionConfig(incremental_scoring=True)
        res = run_generation(genomes, ctx, config, engine=engine)
        engine.invalidate()
        run_generation(res.population, ctx, config, engine=engine)
        assert engine.stats()["full_rebuilds"] == 2
        assert engine.stats()["delta_generations"] == 0

    def test_table_swap_is_counted_but_keeps_cache(self):
        """A fresh table over the same cluster reuses the decomposition —
        table values feed the score gather, never the decomposition."""
        roster, fresh_ctx = _table_workload(16, 7, 3)
        genomes = _random_genomes(roster, 16, 8, 73)
        engine = IncrementalScoringEngine()
        config = EvolutionConfig(incremental_scoring=True)
        res = run_generation(genomes, fresh_ctx(5), config, engine=engine)
        run_generation(res.population, fresh_ctx(5), config, engine=engine)
        stats = engine.stats()
        assert stats["table_swaps"] == 1
        assert stats["delta_generations"] == 1


# --- throughput-table versioning -----------------------------------------------------------------


class TestTableVersioning:
    def test_versions_are_unique_and_invalidatable(self):
        jobs = make_jobs(3)
        model = ThroughputModel(make_longhorn_cluster(8))
        limits = {j: job.spec.base_batch for j, job in jobs.items()}
        a = ThroughputTable(model, jobs, limits, 8, roster=tuple(sorted(jobs)))
        b = ThroughputTable(model, jobs, limits, 8, roster=tuple(sorted(jobs)))
        assert a.version != b.version
        before = a.version
        a.invalidate()
        assert a.version != before
        assert a.version != b.version

    def test_scheduler_reuses_table_between_limit_changes(self):
        config = ExperimentConfig(
            num_gpus=16, trace=TraceConfig(num_jobs=8, arrival_rate=1.0 / 20.0), seed=11
        )
        trace = generate_trace(config)
        sched = ONESScheduler(ONESConfig(), seed=11)
        run_single(sched, trace, config)
        assert sched.num_table_reuses > 0


# --- trajectory parity ---------------------------------------------------------------------------


def _trajectory(scheduler, trace, config):
    result = run_single(scheduler, trace, config)
    return dict(result.completed), result.incomplete, result.makespan, result.events_processed


class TestTrajectoryParity:
    @pytest.mark.parametrize("seed", [7, 19, 42])
    def test_unfaulted_incremental_off_scalar(self, seed):
        config = ExperimentConfig(
            num_gpus=16,
            trace=TraceConfig(num_jobs=10, arrival_rate=1.0 / 20.0),
            seed=seed,
        )
        trace = generate_trace(config)

        def run(batched, incremental):
            sched = ONESScheduler(
                ONESConfig(
                    evolution=EvolutionConfig(
                        batched_operators=batched, incremental_scoring=incremental
                    )
                ),
                seed=seed,
            )
            return _trajectory(sched, trace, config)

        on = run(True, True)
        assert on == run(True, False)
        assert on == run(False, False)

    @pytest.mark.parametrize("seed", [5, 23])
    def test_faulted_node_compaction_parity(self, seed):
        """Node outage mid-search masks the cluster view — the engine must
        rebuild on the compacted genome width and stay bit-identical."""
        faults = FaultConfig(
            injections=(
                FaultInjection(60.0, FaultKind.NODE_DOWN, 1),
                FaultInjection(500.0, FaultKind.NODE_UP, 1),
            )
        )
        config = ExperimentConfig(
            num_gpus=16,
            trace=TraceConfig(num_jobs=8, arrival_rate=1.0 / 15.0),
            simulation=SimulationConfig(faults=faults),
            seed=seed,
        )
        trace = generate_trace(config)

        def run(incremental):
            sched = ONESScheduler(
                ONESConfig(
                    evolution=EvolutionConfig(incremental_scoring=incremental)
                ),
                seed=seed,
            )
            return _trajectory(sched, trace, config)

        assert run(True) == run(False)

    @pytest.mark.parametrize("seed", [9, 31])
    def test_hierarchical_partition_view_parity(self, seed):
        """ones-hier swaps per-partition views every event — each shard's
        engine must invalidate/rebuild correctly and match non-incremental."""
        config = ExperimentConfig(
            num_gpus=32,
            trace=TraceConfig(num_jobs=12, arrival_rate=1.0 / 15.0),
            seed=seed,
        )
        trace = generate_trace(config)

        def run(incremental):
            sched = create_scheduler(
                "ONES-hier", seed, partition_size=16, incremental_scoring=incremental
            )
            return _trajectory(sched, trace, config), sched

        on, sched_on = run(True)
        off, _ = run(False)
        assert on == off
        state = sched_on.describe_state()
        assert state["scoring_delta_generations"] > 0
