"""Tests for repro.baselines.base."""

import pytest

from repro.baselines.base import (
    ClusterState,
    SchedulerCapabilities,
    allocation_with_job,
    allocation_without_jobs,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.jobs.throughput import ThroughputModel
from tests.conftest import make_job, make_running_job


def _state(jobs, topology, allocation=None, now=0.0):
    return ClusterState(
        now=now,
        topology=topology,
        throughput_model=ThroughputModel(topology),
        allocation=allocation or Allocation.empty(),
        jobs=jobs,
    )


class TestCapabilities:
    def test_row_rendering(self):
        caps = SchedulerCapabilities("dynamic", True, True, False)
        row = caps.as_row()
        assert row["Greedy/Dynamic Strategy"] == "Dynamic"
        assert row["Allow Preemption"] == "Y"
        assert row["Elastic Batch Size"] == "N"

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            SchedulerCapabilities("random", True, True, True)


class TestClusterState:
    def test_job_views(self, small_topology):
        running = make_running_job(job_id="run", now=0.0)
        pending = make_job(job_id="wait", arrival_time=1.0)
        future = make_job(job_id="future", arrival_time=100.0)
        done = make_running_job(job_id="done")
        done.mark_completed(2.0)
        jobs = {"run": running, "wait": pending, "future": future, "done": done}
        state = _state(jobs, small_topology, now=5.0)
        assert set(state.active_jobs()) == {"run", "wait"}
        assert set(state.running_jobs()) == {"run"}
        assert list(state.pending_jobs()) == ["wait"]

    def test_free_gpus(self, small_topology, simple_allocation):
        state = _state({}, small_topology, simple_allocation)
        assert state.free_gpus() == [4, 5, 6, 7]

    def test_throughput_estimates(self, small_topology):
        job = make_running_job(job_id="run", gpu_ids=(0,), local_batches=(64,))
        state = _state({"run": job}, small_topology)
        estimate = state.estimate_throughput(job, [0, 1], 128)
        assert estimate > 0
        assert state.estimate_throughput(job, [], 0) == 0.0

    def test_observed_or_estimated_prefers_measurements(self, small_topology):
        job = make_running_job(job_id="run")
        job.advance(1000, 2.0)  # measured 500 samples/s
        state = _state({"run": job}, small_topology)
        assert state.observed_or_estimated_throughput(job) == pytest.approx(500.0)

    def test_observed_or_estimated_falls_back_to_model(self, small_topology):
        job = make_job(job_id="wait")
        state = _state({"wait": job}, small_topology)
        assert state.observed_or_estimated_throughput(job) > 0


class TestHelpers:
    def test_user_local_batch(self):
        job = make_job(base_batch=256, requested_gpus=4)
        assert user_local_batch(job) == 64

    def test_user_local_batch_capped_by_memory(self):
        job = make_job(model_name="vgg16", base_batch=512, requested_gpus=1, dataset_size=4000)
        assert user_local_batch(job) == job.spec.max_local_batch

    def test_pick_gpus_packed_prefers_one_node(self, small_topology):
        chosen = pick_gpus_packed(small_topology, range(8), 4)
        assert small_topology.nodes_spanned(chosen) == 1

    def test_pick_gpus_packed_prefers_fuller_node(self, small_topology):
        # Node 0 has 2 free GPUs, node 1 has 3: a 3-GPU job should land on node 1.
        free = [0, 1, 5, 6, 7]
        chosen = pick_gpus_packed(small_topology, free, 3)
        assert chosen == [5, 6, 7]

    def test_pick_gpus_packed_handles_shortage(self, small_topology):
        assert pick_gpus_packed(small_topology, [3], 4) == [3]
        assert pick_gpus_packed(small_topology, [], 4) == []
        assert pick_gpus_packed(small_topology, [1, 2], 0) == []

    def test_allocation_with_job(self, simple_allocation):
        job = make_job(job_id="job-c")
        new = allocation_with_job(simple_allocation, job, [4, 5], [16, 16])
        assert new.num_gpus("job-c") == 2
        assert new.num_gpus("job-a") == 2

    def test_allocation_with_job_replaces_existing_workers(self, simple_allocation):
        job = make_job(job_id="job-a")
        new = allocation_with_job(simple_allocation, job, [6], [32])
        assert new.gpus_of("job-a") == [6]

    def test_allocation_with_job_rejects_busy_gpu(self, simple_allocation):
        job = make_job(job_id="job-c")
        with pytest.raises(ValueError):
            allocation_with_job(simple_allocation, job, [0], [16])

    def test_allocation_without_jobs(self, simple_allocation):
        new = allocation_without_jobs(simple_allocation, ["job-a"])
        assert new.jobs() == {"job-b"}
