"""Tests for repro.prediction.blr."""

import numpy as np
import pytest

from repro.prediction.blr import BayesianLinearRegression


@pytest.fixture
def linear_data(rng):
    X = rng.normal(size=(120, 3))
    weights = np.array([2.0, -1.0, 0.5])
    y = 1.5 + X @ weights + rng.normal(scale=0.05, size=120)
    return X, y, weights


class TestFit:
    def test_recovers_linear_weights(self, linear_data):
        X, y, weights = linear_data
        model = BayesianLinearRegression().fit(X, y)
        assert model.is_fitted
        fitted = model.weights
        assert fitted[0] == pytest.approx(1.5, abs=0.1)
        assert np.allclose(fitted[1:], weights, atol=0.1)

    def test_log_marginal_likelihood_finite(self, linear_data):
        X, y, _ = linear_data
        model = BayesianLinearRegression().fit(X, y)
        assert np.isfinite(model.log_marginal_likelihood_)

    def test_better_fit_has_higher_evidence(self, rng):
        X = rng.normal(size=(80, 2))
        y_structured = X @ np.array([3.0, -2.0])
        y_noise = rng.normal(size=80) * 5.0
        good = BayesianLinearRegression().fit(X, y_structured)
        bad = BayesianLinearRegression().fit(X, y_noise)
        assert good.log_marginal_likelihood_ > bad.log_marginal_likelihood_

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.empty((0, 2)), np.empty(0))


class TestPredict:
    def test_prediction_accuracy(self, linear_data):
        X, y, _ = linear_data
        model = BayesianLinearRegression().fit(X[:100], y[:100])
        pred = model.predict(X[100:])
        assert np.mean(np.abs(pred - y[100:])) < 0.2

    def test_predictive_std_positive(self, linear_data):
        X, y, _ = linear_data
        model = BayesianLinearRegression().fit(X, y)
        mean, std = model.predict(X[:5], return_std=True)
        assert mean.shape == (5,)
        assert np.all(std > 0)

    def test_uncertainty_larger_far_from_data(self, linear_data):
        X, y, _ = linear_data
        model = BayesianLinearRegression().fit(X, y)
        _, near = model.predict(np.zeros((1, 3)), return_std=True)
        _, far = model.predict(np.full((1, 3), 20.0), return_std=True)
        assert far[0] > near[0]

    def test_predict_one(self, linear_data):
        X, y, _ = linear_data
        model = BayesianLinearRegression().fit(X, y)
        mean, std = model.predict_one(X[0])
        assert isinstance(mean, float) and isinstance(std, float)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BayesianLinearRegression().predict(np.zeros((1, 3)))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression(max_evidence_iterations=0)
