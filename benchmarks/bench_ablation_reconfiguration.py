"""Ablation — elastic scaling vs checkpoint-based execution inside ONES.

ONES's decisions are only cheap to act on because re-configuration is
checkpoint-free (§3.3, Fig. 16).  This ablation runs the same ONES policy
but charges checkpoint-based migration costs for every re-configuration,
quantifying how much of the end-to-end win comes from the mechanism.
"""

from repro.analysis.reporting import format_table
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import generate_trace, run_single
from repro.scaling.overhead import ReconfigurationKind
from repro.workload.trace import TraceConfig

from benchmarks._shared import SEED, write_report


class CheckpointONESScheduler(ONESScheduler):
    """ONES policy executed with checkpoint-based re-configuration."""

    name = "ONES-checkpoint"
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        num_gpus=16,
        trace=TraceConfig(num_jobs=14, arrival_rate=1.0 / 20.0),
        seed=SEED + 3,
    )


def _run_all():
    config = _config()
    trace = generate_trace(config)
    evolution = EvolutionConfig(population_size=12)
    elastic = run_single(
        ONESScheduler(ONESConfig(evolution=evolution), seed=SEED), trace, config
    )
    checkpoint = run_single(
        CheckpointONESScheduler(ONESConfig(evolution=evolution), seed=SEED), trace, config
    )
    return {"elastic": elastic, "checkpoint": checkpoint}


def test_ablation_reconfiguration_mechanism(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for label, result in outcomes.items():
        total_overhead = sum(m["reconfig_overhead"] for m in result.completed.values())
        rows.append(
            {
                "mechanism": label,
                "avg JCT (s)": round(result.average_jct, 1),
                "avg exec (s)": round(result.average_execution_time, 1),
                "reconfigs": result.num_reconfigurations,
                "total reconfig overhead (s)": round(total_overhead, 1),
            }
        )
    write_report(
        "ablation_reconfiguration",
        "Ablation: elastic vs checkpoint-based execution of ONES decisions\n"
        + format_table(rows),
    )
    elastic, checkpoint = outcomes["elastic"], outcomes["checkpoint"]
    assert not elastic.incomplete and not checkpoint.incomplete
    elastic_overhead = sum(m["reconfig_overhead"] for m in elastic.completed.values())
    checkpoint_overhead = sum(m["reconfig_overhead"] for m in checkpoint.completed.values())
    # The same policy pays far more overhead when it has to checkpoint.
    assert checkpoint_overhead > 3.0 * elastic_overhead
    # And that overhead shows up in completion time.
    assert elastic.average_jct <= checkpoint.average_jct
