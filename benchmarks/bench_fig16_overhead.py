"""Figure 16 — elastic batch-size scaling vs checkpoint-based migration overhead."""

from repro.analysis.reporting import format_table
from repro.experiments import figures

from benchmarks._shared import write_report


def test_fig16_scaling_overheads(benchmark):
    table = benchmark(figures.figure16_overheads)
    rows = [
        {
            "model": name,
            "elastic (s)": round(row["elastic"], 2),
            "checkpoint (s)": round(row["checkpoint"], 2),
            "checkpoint / elastic": round(row["checkpoint"] / row["elastic"], 1),
        }
        for name, row in table.items()
    ]
    write_report(
        "fig16_overheads",
        "Figure 16: re-configuration overhead, elastic vs checkpoint-based migration\n"
        + format_table(rows)
        + "\n(paper: elastic 0.27-1.13 s, checkpoint-based 10.3-22.2 s)",
    )
    for name, row in table.items():
        # Shape: elastic is order-1 second, checkpointing tens of seconds,
        # at least 5x more expensive for every model.
        assert row["elastic"] < 3.0, name
        assert 5.0 < row["checkpoint"] < 60.0, name
        assert row["checkpoint"] > 5.0 * row["elastic"], name
