"""Figure 17 — average JCT as the cluster grows (16 → 64 GPUs)."""

from repro.analysis.reporting import ascii_series

from benchmarks._shared import PARAMS, scalability_sweep, write_report


def test_fig17_scalability(benchmark):
    sweep = benchmark.pedantic(scalability_sweep, rounds=1, iterations=1)
    capacities = sorted(sweep)
    series = {}
    for capacity in capacities:
        for name, value in sweep[capacity].averages("jct").items():
            series.setdefault(name, []).append(round(value, 1))
    write_report(
        "fig17_scalability",
        "Figure 17: average JCT (s) vs cluster capacity\n"
        + ascii_series(capacities, series, x_label="# GPUs"),
    )
    # Shape: every scheduler's average JCT decreases as GPUs are added,
    # and ONES stays the best at every capacity.
    for name, values in series.items():
        assert values[-1] < values[0], name
    for capacity in capacities:
        averages = sweep[capacity].averages("jct")
        assert averages["ONES"] == min(averages.values()), capacity
