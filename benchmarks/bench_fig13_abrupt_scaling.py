"""Figure 13 — abrupt batch-size scaling (256 → 4096 at epoch 30) spikes the loss."""

import numpy as np

from repro.analysis.reporting import ascii_series
from repro.experiments import figures

from benchmarks._shared import write_report


def _render(data) -> str:
    switch = int(data["switch_epoch"][0])
    checkpoints = [4, switch - 1, switch, switch + 1, switch + 4, switch + 14, len(data["epochs"]) - 1]
    table = ascii_series(
        [int(data["epochs"][c]) for c in checkpoints],
        {
            "scaled batch loss": [round(float(data["scaled_batch"][c]), 3) for c in checkpoints],
            "fixed batch loss": [round(float(data["fixed_batch"][c]), 3) for c in checkpoints],
        },
        x_label="epoch",
    )
    return (
        "Figure 13: loss when scaling the batch 256 -> 4096 at epoch "
        f"{switch} vs a fixed batch of 256\n" + table
    )


def test_fig13_abrupt_scaling(benchmark):
    data = benchmark(figures.figure13_abrupt_scaling)
    write_report("fig13_abrupt_scaling", _render(data))
    switch = int(data["switch_epoch"][0])
    # The scaled curve spikes right after the switch while the fixed curve
    # keeps decreasing, then the gap narrows again.
    assert data["scaled_batch"][switch] > data["scaled_batch"][switch - 1]
    assert data["scaled_batch"][switch] > data["fixed_batch"][switch]
    assert np.all(np.diff(data["fixed_batch"]) <= 1e-12)
    late_gap = data["scaled_batch"][-1] - data["fixed_batch"][-1]
    spike_gap = data["scaled_batch"][switch] - data["fixed_batch"][switch]
    assert late_gap < spike_gap
