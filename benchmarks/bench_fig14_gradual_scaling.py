"""Figure 14 — gradual batch-size growth (256 → 1024 → 4096) keeps the loss smooth."""

import numpy as np

from repro.analysis.reporting import ascii_series
from repro.experiments import figures

from benchmarks._shared import write_report


def _render(data) -> str:
    boundaries = [int(b) for b in data["stage_boundaries"]]
    checkpoints = sorted({4, boundaries[0] - 1, boundaries[0], boundaries[0] + 1,
                          boundaries[1] - 1, boundaries[1], boundaries[1] + 1,
                          len(data["loss"]) - 1})
    table = ascii_series(
        [int(data["epochs"][c]) for c in checkpoints],
        {"loss": [round(float(data["loss"][c]), 3) for c in checkpoints]},
        x_label="epoch",
    )
    stages = " -> ".join(str(int(b)) for b in data["stage_batches"])
    return f"Figure 14: loss when growing the batch gradually ({stages})\n" + table


def test_fig14_gradual_scaling(benchmark):
    data = benchmark(figures.figure14_gradual_scaling)
    write_report("fig14_gradual_scaling", _render(data))
    # No visible loss spike at the stage boundaries: the loss never jumps
    # upwards by a meaningful amount anywhere in the schedule.
    assert float(np.max(np.diff(data["loss"]))) < 0.05
    assert data["loss"][-1] < data["loss"][0]
