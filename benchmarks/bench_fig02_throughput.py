"""Figure 2 — training speed, elastic vs fixed global batch size.

The paper plots ResNet50/CIFAR10 throughput against the number of
workers: with a fixed global batch of 256 the curve saturates and drops,
while an elastic batch (growing to 2048) keeps improving.
"""

import numpy as np

from repro.analysis.reporting import ascii_series
from repro.experiments import figures

from benchmarks._shared import write_report


def _render(data) -> str:
    table = ascii_series(
        [int(w) for w in data["workers"]],
        {
            "fixed batch (B=256) img/s": [round(v, 1) for v in data["fixed_batch"]],
            "elastic batch (256->2048) img/s": [round(v, 1) for v in data["elastic_batch"]],
        },
        x_label="# workers",
    )
    ratio = data["elastic_batch"][-1] / data["fixed_batch"][-1]
    return (
        "Figure 2: ResNet50/CIFAR10 training speed vs number of workers\n"
        f"{table}\n"
        f"Elastic / fixed throughput at 8 workers: {ratio:.1f}x\n"
        f"Fixed-batch curve peaks at {int(np.argmax(data['fixed_batch'])) + 1} workers."
    )


def test_fig02_throughput_scaling(benchmark):
    data = benchmark(figures.figure2_throughput_scaling)
    report = _render(data)
    write_report("fig02_throughput", report)
    # Shape assertions: elastic keeps winning, fixed saturates.
    assert data["elastic_batch"][-1] > 2.0 * data["fixed_batch"][-1]
    assert np.argmax(data["fixed_batch"]) < len(data["fixed_batch"]) - 1
