"""Microbenchmark — simulator throughput (events/second).

Times a complete small-trace simulation under a cheap scheduler, which
bounds how quickly the harness can sweep configurations (Fig. 17/18 style
studies are dozens of such runs).
"""

from repro.baselines.tiresias import TiresiasScheduler
from repro.cluster.topology import make_longhorn_cluster
from repro.sim.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import TraceConfig, TraceGenerator

from benchmarks._shared import SEED


def _run_once():
    trace = TraceGenerator(
        TraceConfig(num_jobs=20, arrival_rate=1.0 / 15.0), seed=SEED
    ).generate()
    topology = make_longhorn_cluster(16)
    simulator = ClusterSimulator(
        topology, TiresiasScheduler(), trace, config=SimulationConfig()
    )
    return simulator.run()


class TestSimulatorThroughput:
    def test_full_simulation_tiresias(self, benchmark):
        result = benchmark(_run_once)
        assert not result.incomplete
        assert result.events_processed > 100
