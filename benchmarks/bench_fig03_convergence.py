"""Figure 3 — convergence with a fixed local batch of 256 and 1/2/4/8 GPUs.

Adding GPUs at a fixed per-GPU batch inflates the global batch; without
learning-rate re-scaling the job needs more epochs to reach the same
accuracy.
"""

import numpy as np

from repro.analysis.reporting import ascii_series
from repro.experiments import figures

from benchmarks._shared import write_report


def _render(data) -> str:
    checkpoints = [24, 49, 99, 149, 199]
    checkpoints = [c for c in checkpoints if c < len(data["epochs"])]
    table = ascii_series(
        [int(data["epochs"][c]) for c in checkpoints],
        {
            key: [round(float(data[key][c]), 3) for c in checkpoints]
            for key in ("1_gpus", "2_gpus", "4_gpus", "8_gpus")
        },
        x_label="epoch",
    )
    return (
        "Figure 3: accuracy vs epochs, fixed local batch 256, no LR re-scaling\n"
        + table
    )


def test_fig03_convergence_vs_gpus(benchmark):
    data = benchmark(figures.figure3_convergence_vs_gpus)
    write_report("fig03_convergence", _render(data))
    # More GPUs (larger global batch) converge slower at every checkpoint.
    mid = len(data["epochs"]) // 2
    assert data["1_gpus"][mid] > data["2_gpus"][mid] > data["4_gpus"][mid] > data["8_gpus"][mid]
    # All curves are monotone non-decreasing.
    for key in ("1_gpus", "2_gpus", "4_gpus", "8_gpus"):
        assert np.all(np.diff(data[key]) >= -1e-12)
