"""Figure 6 — online prediction of training progress with uncertainty.

The progress predictor is fitted on the training logs of completed jobs
and then queried for a held-out job: the report shows the mean predicted
progress and the 90% credible interval as a function of processed
samples, together with the job's observed progress.
"""

import numpy as np

from repro.analysis.reporting import ascii_series
from repro.experiments import figures

from benchmarks._shared import write_report


def _render(data) -> str:
    points = np.linspace(0, len(data["samples_processed"]) - 1, 8).astype(int)
    table = ascii_series(
        [int(data["samples_processed"][i]) for i in points],
        {
            "mean progress": [round(float(data["mean"][i]), 3) for i in points],
            "ci low": [round(float(data["ci_low"][i]), 3) for i in points],
            "ci high": [round(float(data["ci_high"][i]), 3) for i in points],
        },
        x_label="# processed samples",
    )
    return "Figure 6: online progress prediction with 90% credible interval\n" + table


def test_fig06_online_prediction(benchmark):
    data = benchmark.pedantic(
        figures.figure6_prediction_example, rounds=1, iterations=1
    )
    write_report("fig06_prediction", _render(data))
    # The predictive mean grows with processed samples and the credible
    # interval brackets it.
    assert data["mean"][-1] > data["mean"][0]
    assert np.all(data["ci_low"] <= data["mean"] + 1e-9)
    assert np.all(data["mean"] <= data["ci_high"] + 1e-9)
