"""Ablation — progress-predictor backend: Gaussian process vs Bayesian linear.

Footnote 1 of the paper describes a GPR predictor while Eq. 6 writes the
literal linear form ``β = max(Ax + b, 1)``.  Both are implemented; this
benchmark compares (a) their predictive error for epochs-remaining on
held-out jobs and (b) the end-to-end average JCT when plugged into ONES.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import generate_trace, run_single
from repro.prediction.history import examples_from_job
from repro.prediction.predictor import PredictorConfig, ProgressPredictor
from repro.workload.trace import TraceConfig

from benchmarks._shared import SEED, write_report


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        num_gpus=16,
        trace=TraceConfig(num_jobs=14, arrival_rate=1.0 / 20.0),
        seed=SEED + 1,
    )


def _run_backend(backend: str):
    config = _config()
    trace = generate_trace(config)
    scheduler = ONESScheduler(
        ONESConfig(
            evolution=EvolutionConfig(population_size=12),
            predictor=PredictorConfig(backend=backend),
        ),
        seed=SEED,
    )
    result = run_single(scheduler, trace, config)

    # Predictive accuracy: train on the first half of completed jobs,
    # evaluate epochs-remaining error on the second half.
    completed = [result.jobs[j] for j in sorted(result.completed)]
    split = len(completed) // 2
    predictor = ProgressPredictor(PredictorConfig(backend=backend), seed=SEED)
    for job in completed[:split]:
        predictor.observe_completion(job)
    errors = []
    for job in completed[split:]:
        for example in examples_from_job(job):
            x = np.asarray(example.features)
            mean, _ = predictor._model.predict_one(predictor._scaler.transform(x))
            errors.append(abs(max(mean, 0.0) - example.epochs_remaining))
    mae = float(np.mean(errors)) if errors else float("nan")
    return result, mae


def _run_all():
    return {backend: _run_backend(backend) for backend in ("gpr", "blr")}


def test_ablation_predictor_backend(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for backend, (result, mae) in outcomes.items():
        rows.append(
            {
                "backend": backend,
                "epochs-remaining MAE": round(mae, 2),
                "avg JCT (s)": round(result.average_jct, 1),
                "avg exec (s)": round(result.average_execution_time, 1),
            }
        )
    write_report(
        "ablation_predictor",
        "Ablation: GPR vs Bayesian-linear progress predictor\n" + format_table(rows),
    )
    for backend, (result, mae) in outcomes.items():
        assert not result.incomplete, backend
        assert np.isfinite(mae), backend
        # Both backends should predict within a usable error band
        # (epochs-remaining is a few tens at most on this trace).
        assert mae < 40.0, backend
