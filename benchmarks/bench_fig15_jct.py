"""Figure 15 — the main comparison: JCT, execution time and queuing time.

Runs the shared Table-2 trace under ONES, DRL, Tiresias and Optimus on
the same simulated cluster and reports, per scheduler:

* average job completion time (Fig. 15a),
* average execution time (Fig. 15b),
* average queuing time (Fig. 15c),
* box-plot style distribution summaries (Fig. 15d-f),
* cumulative-frequency checkpoints (Fig. 15g-i),
* the fraction of jobs completed within 200 s (§4.2).
"""

import numpy as np

from repro.analysis.metrics import compare_results, completion_fraction_within
from repro.analysis.reporting import ascii_bar_chart, ascii_cdf, format_table

from benchmarks._shared import main_comparison, write_report


def _distribution_rows(summaries):
    rows = []
    for name, summary in summaries.items():
        stats = summary.stats
        rows.append(
            {
                "scheduler": name,
                "mean": stats.mean,
                "p25": stats.p25,
                "median": stats.median,
                "p75": stats.p75,
                "max": stats.maximum,
            }
        )
    return rows


def test_fig15_main_comparison(benchmark):
    comparison = benchmark.pedantic(main_comparison, rounds=1, iterations=1)
    results = list(comparison.results.values())

    sections = []
    for metric, title in [
        ("jct", "Figure 15a: average completion time (s)"),
        ("execution_time", "Figure 15b: average execution time (s)"),
        ("queuing_time", "Figure 15c: average queuing time (s)"),
    ]:
        sections.append(title)
        sections.append(ascii_bar_chart(comparison.averages(metric), unit="s"))
        summaries = compare_results(results, metric)
        sections.append("distributions (Fig. 15d-f):")
        sections.append(format_table(_distribution_rows(summaries)))
        curves = {name: s.cdf(log_space=True) for name, s in summaries.items()}
        thresholds = [50, 100, 200, 500, 1000, 2000, 5000]
        sections.append("cumulative frequency (Fig. 15g-i):")
        sections.append(ascii_cdf(curves, thresholds, label=f"{metric} <= (s)"))
        sections.append("")

    fractions = completion_fraction_within(results, 200.0)
    sections.append("Fraction of jobs completed within 200 s (paper: ONES 86%, baselines 60-80%):")
    sections.append(ascii_bar_chart({k: 100 * v for k, v in fractions.items()}, unit="%"))

    improvements = comparison.improvements("ONES", "jct")
    sections.append("")
    sections.append("ONES average-JCT reduction vs baselines "
                    "(paper: 26.9% DRL, 45.6% Tiresias, 41.7% Optimus):")
    for name, value in improvements.items():
        sections.append(f"  vs {name:10s}: {100 * value:5.1f}%")

    write_report("fig15_main_comparison", "\n".join(sections))

    averages = comparison.averages("jct")
    # Headline shape: ONES achieves the smallest average JCT, with a
    # meaningful (>15%) margin over every baseline.
    assert averages["ONES"] == min(averages.values())
    for name, value in improvements.items():
        assert value > 0.15, (name, value)
    # ONES also wins on execution time (elastic batch scaling trains faster).
    exec_avg = comparison.averages("execution_time")
    assert exec_avg["ONES"] == min(exec_avg.values())
    # Every scheduler completed the whole trace.
    for result in results:
        assert not result.incomplete
