"""Figure 18 — JCT of each baseline relative to ONES across cluster capacities."""

from repro.analysis.reporting import ascii_series

from benchmarks._shared import scalability_sweep, write_report


def _relative_series(sweep):
    capacities = sorted(sweep)
    series = {}
    for capacity in capacities:
        for name, value in sweep[capacity].relative_jct("ONES").items():
            series.setdefault(name, []).append(round(value, 2))
    return capacities, series


def test_fig18_relative_jct(benchmark):
    sweep = scalability_sweep()
    capacities, series = benchmark(_relative_series, sweep)
    write_report(
        "fig18_relative_jct",
        "Figure 18: average JCT normalised to ONES (ONES = 1.0)\n"
        + ascii_series(capacities, series, x_label="# GPUs")
        + "\n(paper at 64 GPUs: DRL 1.37, Tiresias 1.84, Optimus 1.72)",
    )
    # ONES is the reference and every baseline is above 1 at every capacity.
    assert all(v == 1.0 for v in series["ONES"])
    for name, values in series.items():
        if name == "ONES":
            continue
        assert all(v > 1.0 for v in values), name
    # At the largest capacity the baselines remain >= 15% worse than ONES.
    largest = capacities[-1]
    rel = sweep[largest].relative_jct("ONES")
    for name, value in rel.items():
        if name != "ONES":
            assert value > 1.15, (name, value)
