"""Table 4 — Wilcoxon significance tests of ONES against each baseline."""

from repro.analysis.reporting import format_table
from repro.analysis.stats import significance_table

from benchmarks._shared import main_comparison, write_report


def test_table4_wilcoxon(benchmark):
    comparison = main_comparison()
    ones = comparison.results["ONES"]
    baselines = [r for name, r in comparison.results.items() if name != "ONES"]

    table = benchmark(significance_table, ones, baselines)

    rows = [report.as_row() for report in table.values()]
    write_report(
        "table4_significance",
        "Table 4: Wilcoxon significance tests of per-job JCT (ONES vs baselines)\n"
        + format_table(rows)
        + "\nInterpretation: two-sided p << 0.05 rejects equivalence; the one-sided"
        "\n'negative' p close to 1 accepts that ONES's JCTs are smaller.",
    )

    for name, report in table.items():
        # Same pattern as the paper's Table 4: equivalence rejected and the
        # one-sided negative test strongly in ONES's favour.
        assert report.p_two_sided < 0.05, name
        assert report.p_one_sided_greater > 0.95, name
        assert report.ours_is_smaller, name
