"""Extension — sensitivity of the ONES advantage to the arrival pattern.

The paper evaluates a single Poisson-like trace; production traces show
diurnal and bursty arrivals.  This benchmark re-runs ONES vs Tiresias
under three arrival processes (same workload mix, same total jobs) and
checks that ONES's advantage is not an artefact of smooth arrivals.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.tiresias import TiresiasScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.jobs.job import JobSpec
from repro.workload.arrivals import BurstyArrivals, DiurnalArrivals, PoissonArrivals
from repro.workload.trace import TraceConfig, TraceGenerator

from benchmarks._shared import SEED, write_report

NUM_JOBS = 14
PROCESSES = {
    "poisson": PoissonArrivals(rate=1.0 / 20.0),
    "diurnal": DiurnalArrivals(base_rate=1.0 / 20.0, amplitude=0.8, period=1200.0),
    "bursty": BurstyArrivals(
        quiet_rate=1.0 / 60.0, burst_rate=1.0 / 6.0,
        mean_quiet_duration=300.0, mean_burst_duration=90.0,
    ),
}


def _retime(trace, times):
    """Replace a trace's arrival times with the given timestamps."""
    retimed = []
    for spec, t in zip(sorted(trace, key=lambda s: s.arrival_time), np.sort(times)):
        retimed.append(
            JobSpec(
                job_id=spec.job_id,
                task=spec.task,
                model=spec.model,
                dataset=spec.dataset,
                dataset_size=spec.dataset_size,
                num_classes=spec.num_classes,
                convergence=spec.convergence,
                base_batch=spec.base_batch,
                base_lr=spec.base_lr,
                requested_gpus=spec.requested_gpus,
                arrival_time=float(t),
                convergence_patience=spec.convergence_patience,
            )
        )
    return retimed


def _run_all():
    config = ExperimentConfig(
        num_gpus=16,
        trace=TraceConfig(num_jobs=NUM_JOBS, arrival_rate=1.0 / 20.0),
        seed=SEED + 5,
    )
    base_trace = TraceGenerator(config.trace, seed=config.seed).generate()
    outcomes = {}
    for label, process in PROCESSES.items():
        times = process.generate(NUM_JOBS, rng=config.seed)
        trace = _retime(base_trace, times)
        ones = run_single(
            ONESScheduler(ONESConfig(evolution=EvolutionConfig(population_size=12)), seed=SEED),
            trace,
            config,
        )
        tiresias = run_single(TiresiasScheduler(), trace, config)
        outcomes[label] = (ones, tiresias)
    return outcomes


def test_ablation_arrival_patterns(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for label, (ones, tiresias) in outcomes.items():
        rows.append(
            {
                "arrival pattern": label,
                "ONES JCT (s)": round(ones.average_jct, 1),
                "Tiresias JCT (s)": round(tiresias.average_jct, 1),
                "ONES improvement": f"{100 * (1 - ones.average_jct / tiresias.average_jct):.1f}%",
            }
        )
    write_report(
        "ablation_arrivals",
        "Extension: ONES vs Tiresias under different arrival processes\n" + format_table(rows),
    )
    for label, (ones, tiresias) in outcomes.items():
        assert not ones.incomplete and not tiresias.incomplete, label
        # ONES stays ahead (or at worst within 5%) under every pattern.
        assert ones.average_jct <= tiresias.average_jct * 1.05, label
