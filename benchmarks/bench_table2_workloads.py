"""Table 2 — the evaluation workload catalogue (50 workloads)."""

from repro.analysis.reporting import format_table
from repro.experiments import figures
from repro.workload.tasks import build_workload_catalog

from benchmarks._shared import write_report


def _render(summary, catalog) -> str:
    rows = [
        {"task/dataset": key, "# workloads": count}
        for key, count in sorted(summary.items())
        if key != "total"
    ]
    rows.append({"task/dataset": "total", "# workloads": summary["total"]})
    models = sorted({t.model_name for t in catalog})
    sizes = f"{min(t.dataset_size for t in catalog)}..{max(t.dataset_size for t in catalog)}"
    return (
        "Table 2: workloads in the evaluation trace\n"
        + format_table(rows)
        + f"\nModels: {', '.join(models)}\nDataset sizes: {sizes} samples"
    )


def test_table2_workload_catalog(benchmark):
    summary = benchmark(figures.table2_workload_catalog)
    catalog = build_workload_catalog()
    write_report("table2_workloads", _render(summary, catalog))
    assert summary["total"] == 50
    assert summary["cv/imagenet"] == 24
    assert summary["cv/cifar10"] == 15
    assert summary["nlp/cola"] + summary["nlp/mrpc"] + summary["nlp/sst2"] == 11
