"""Ablation — the scale-down (convoy-effect) policy σ.

§3.3.2 suggests σ = λ (the job arrival rate).  Taken literally that
collapses every job's batch limit; the reproduction damps σ by a
configurable factor (see DESIGN.md).  This benchmark sweeps the damping
factor to show its effect on JCT and on how large batches are allowed to
grow.
"""

from repro.analysis.reporting import format_table
from repro.core.batch_limit import BatchLimitConfig
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import generate_trace, run_single
from repro.workload.trace import TraceConfig

from benchmarks._shared import SEED, write_report

DAMPING_VALUES = (1.0, 10.0, 100.0)


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        num_gpus=16,
        trace=TraceConfig(num_jobs=14, arrival_rate=1.0 / 15.0),
        seed=SEED + 2,
    )


def _run_all():
    config = _config()
    trace = generate_trace(config)
    outcomes = {}
    for damping in DAMPING_VALUES:
        scheduler = ONESScheduler(
            ONESConfig(
                evolution=EvolutionConfig(population_size=12),
                batch_limits=BatchLimitConfig(sigma_damping=damping),
            ),
            seed=SEED,
        )
        result = run_single(scheduler, trace, config)
        max_batches = [
            max((b for _, b in job.batch_history), default=0)
            for job in result.jobs.values()
        ]
        outcomes[damping] = (result, max(max_batches))
    return outcomes


def test_ablation_scaledown_sigma(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [
        {
            "sigma damping": damping,
            "avg JCT (s)": round(result.average_jct, 1),
            "avg queue (s)": round(result.average_queuing_time, 1),
            "largest batch reached": largest,
        }
        for damping, (result, largest) in outcomes.items()
    ]
    write_report(
        "ablation_scaledown",
        "Ablation: convoy-effect scale-down aggressiveness (sigma = lambda / damping)\n"
        + format_table(rows),
    )
    for damping, (result, largest) in outcomes.items():
        assert not result.incomplete
    # A weaker penalty (larger damping) lets batches grow at least as large.
    assert outcomes[100.0][1] >= outcomes[1.0][1]
