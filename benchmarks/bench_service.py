"""Benchmark — scheduler-as-a-service decision-latency SLOs.

The acceptance gate of the service subsystem: a live
:class:`~repro.service.engine.SchedulerService` must sustain at least
1,000 online submissions across two tenants at each measured cluster
size, with per-decision latency (the wall-clock cost of the arrival's
scheduling step), submissions/second, queue depth and per-tenant goodput
pinned into ``BENCH_service.json``.

Load is deterministic: each tenant drives an independent seeded arrival
stream (tenant-a Poisson, tenant-b diurnal) over the Table-2 catalogue,
so the virtual workload is identical across machines — only the
wall-clock latencies vary with the host.

Run directly (``python benchmarks/bench_service.py``) or through pytest
(the ``TestServiceSLOs`` gates assert the subsystem's acceptance
criteria with generous machine-noise headroom).
"""

from __future__ import annotations

import os
from dataclasses import replace
from functools import lru_cache
from time import perf_counter
from typing import Dict

from repro.service.engine import SchedulerService
from repro.service.load import arrival_summary, generate_submissions
from repro.service.schemas import ServiceConfig, TenantQuota
from repro.workload.arrivals import ArrivalConfig

from benchmarks._shared import SEED, write_perf_record, write_report

#: Cluster sizes the SLOs are pinned at (the paper's 64 plus a 4x scale-up).
CAPACITIES = (64, 256)
#: The hierarchical tier: ONES-hier serving a 1024-GPU cluster (the
#: ROADMAP scale-out target).  Runs only under ``REPRO_BENCH_FULL_SCALE=1``
#: so the CI service-smoke stays cheap; its numbers are pinned in
#: ``BENCH_service.json`` under the ``"1024-hier"`` key.
HIER_CAPACITY = 1024
HIER_PARTITION_SIZE = 64
TENANTS = ("tenant-a", "tenant-b")
SUBMISSIONS_PER_TENANT = int(os.environ.get("REPRO_BENCH_SERVICE_JOBS", "500"))


def _measure(num_gpus: int, scheduler: str = "ONES", **options) -> Dict[str, object]:
    service = SchedulerService(
        ServiceConfig(
            num_gpus=num_gpus,
            scheduler=scheduler,
            seed=SEED,
            mode="virtual",
            tenants=tuple(TenantQuota(tenant=name) for name in TENANTS),
            scheduler_options=options,
        )
    )
    base = ArrivalConfig(rate=1.0 / 30.0, seed=SEED)
    # Two different profiles: steady Poisson vs a day/night cycle.
    load = generate_submissions(
        [TENANTS[0]], SUBMISSIONS_PER_TENANT, arrivals=base
    ) + generate_submissions(
        [TENANTS[1]], SUBMISSIONS_PER_TENANT,
        arrivals=replace(base, profile="diurnal"),
    )
    load.sort(key=lambda s: (s.arrival_time, s.tenant))

    queue_depth_max = 0
    statuses = {"placed": 0, "queued": 0, "rejected": 0}
    wall_start = perf_counter()
    for submission in load:
        decision = service.submit(submission)
        statuses[decision.status] += 1
        queue_depth_max = max(queue_depth_max, decision.queue_depth)
    submit_wall = perf_counter() - wall_start

    metrics = service.metrics()
    drain_start = perf_counter()
    result = service.drain()
    drain_wall = perf_counter() - drain_start

    return {
        "num_gpus": num_gpus,
        "scheduler": scheduler,
        "load": arrival_summary(load),
        "statuses": statuses,
        "decision_latency": metrics["decision_latency"],
        "decision_latency_by_tenant": metrics["decision_latency_by_tenant"],
        "submissions_per_second": metrics["submissions_per_second"],
        "queue_depth_max": queue_depth_max,
        "goodput_by_tenant": {
            name: state.as_dict() for name, state in sorted(service.tenants.items())
        },
        "virtual_hours": round(service.now / 3600.0, 2),
        "submit_wall_s": round(submit_wall, 2),
        "drain_wall_s": round(drain_wall, 2),
        "completed": len(result.completed),
        "incomplete": len(result.incomplete),
        "events_processed": result.events_processed,
    }


@lru_cache(maxsize=1)
def run() -> Dict[str, Dict[str, object]]:
    """Measure every capacity once per session; write report + perf record."""
    results = {str(capacity): _measure(capacity) for capacity in CAPACITIES}
    if os.environ.get("REPRO_BENCH_FULL_SCALE"):
        results["1024-hier"] = _measure(
            HIER_CAPACITY, scheduler="ONES-hier", partition_size=HIER_PARTITION_SIZE
        )
    lines = [
        "Scheduler service SLOs (2 tenants, "
        f"{2 * SUBMISSIONS_PER_TENANT} submissions per capacity)",
        "",
        f"{'cell':>10} {'GPUs':>5} {'placed':>7} {'queued':>7} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'sub/s':>8} {'max queue':>10} {'completed':>10}",
    ]
    for key, row in results.items():
        latency = row["decision_latency"]
        lines.append(
            f"{key:>10} {row['num_gpus']:>5} {row['statuses']['placed']:>7} "
            f"{row['statuses']['queued']:>7} {latency['p50_ms']:>8.2f} "
            f"{latency['p99_ms']:>8.2f} {row['submissions_per_second']:>8.0f} "
            f"{row['queue_depth_max']:>10} {row['completed']:>10}"
        )
    if "1024-hier" not in results:
        lines.append(
            "(1024-GPU ONES-hier tier skipped; set REPRO_BENCH_FULL_SCALE=1 to run it)"
        )
    write_report("service_slos", "\n".join(lines))
    write_perf_record("service", {"capacities": results})
    return results


class TestServiceSLOs:
    def test_sustains_thousand_submissions_per_capacity(self):
        for capacity, row in run().items():
            total = sum(row["statuses"].values())
            assert total >= 1000, (capacity, total)
            assert row["statuses"]["rejected"] == 0
            assert set(row["decision_latency_by_tenant"]) == set(TENANTS)

    def test_every_decision_latency_is_recorded(self):
        for row in run().values():
            assert row["decision_latency"]["count"] == float(
                row["statuses"]["placed"] + row["statuses"]["queued"]
            )

    def test_throughput_slo(self):
        # Generous machine-noise bound: the service must clear 10
        # decisions/second even at 256 GPUs (observed: hundreds).
        for row in run().values():
            assert row["submissions_per_second"] >= 10.0

    def test_jobs_complete_after_drain(self):
        for row in run().values():
            assert row["completed"] > 0
            assert row["completed"] + row["incomplete"] == sum(
                row["statuses"][k] for k in ("placed", "queued")
            )


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2))
