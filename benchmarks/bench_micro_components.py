"""Microbenchmarks of the scheduler's hot components.

These are classic pytest-benchmark timings (many rounds) of the pieces
that run on every scheduling event: the throughput model, candidate
scoring, one evolutionary-search iteration, the progress predictor's
fit, and the event queue.  They bound the decision latency of ONES —
the paper argues evolutionary search has "relatively fast iterative
speed", and these numbers quantify it for this implementation.
"""

import numpy as np

from repro.cluster.events import Event, EventKind, EventQueue
from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.scoring import score_candidates
from repro.core.population import initial_population
from repro.jobs.model_zoo import get_model
from repro.jobs.throughput import ThroughputModel
from repro.prediction.gpr import GaussianProcessRegression

from tests._core_helpers import make_context, make_jobs


def _busy_context(num_jobs=12, num_gpus=32):
    jobs = make_jobs(num_jobs)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(1500 * (i + 1), 10.0)
    return make_context(jobs, num_gpus=num_gpus)


class TestThroughputModel:
    def test_throughput_query(self, benchmark):
        topology = make_longhorn_cluster(64)
        model = ThroughputModel(topology)
        resnet = get_model("resnet50")
        result = benchmark(model.throughput, resnet, [64] * 8, list(range(8)))
        assert result > 0


class TestScoring:
    def test_score_population(self, benchmark):
        ctx = _busy_context()
        population = initial_population(ctx, size=16, seed=0)
        progress = {job_id: 0.5 for job_id in ctx.roster}
        scores = benchmark(
            score_candidates, list(population), ctx.jobs, progress, ctx.throughput_fn
        )
        assert np.all(np.isfinite(scores))


class TestEvolutionStep:
    def test_single_iteration(self, benchmark):
        ctx = _busy_context()
        search = EvolutionarySearch(EvolutionConfig(population_size=16), seed=0)
        search.step(ctx)  # warm up / initialise the population

        def one_step():
            return search.step(ctx)

        best, score = benchmark(one_step)
        assert np.isfinite(score)


class TestPredictorFit:
    def test_gpr_fit_128_points(self, benchmark, rng=np.random.default_rng(0)):
        X = rng.normal(size=(128, 5))
        y = X @ np.array([3.0, -1.0, 0.5, 2.0, 0.0]) + rng.normal(scale=0.2, size=128)

        def fit():
            return GaussianProcessRegression(random_state=0).fit(X, y)

        model = benchmark(fit)
        assert model.is_fitted


class TestEventQueue:
    def test_push_pop_throughput(self, benchmark):
        def churn():
            queue = EventQueue()
            for i in range(2000):
                queue.push(Event(time=float((i * 7919) % 1000), kind=EventKind.EPOCH_END))
            count = 0
            while queue:
                queue.pop()
                count += 1
            return count

        assert benchmark(churn) == 2000
