"""Ablation — how much does the evolutionary search contribute?

DESIGN.md calls out the evolutionary search (vs a greedy/degenerate
search) as the central design choice.  This benchmark runs ONES with:

* the full search (population, crossover, mutation, reorder),
* a degenerate population of size 1 (hill climbing),
* crossover and mutation disabled (refresh + reorder only),

on the same trace and compares average JCT.
"""

from repro.analysis.reporting import format_table
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import generate_trace, run_single
from repro.workload.trace import TraceConfig

from benchmarks._shared import SEED, write_report

VARIANTS = {
    "full evolutionary search": EvolutionConfig(population_size=16),
    "population of 1 (hill climbing)": EvolutionConfig(population_size=1),
    "no crossover / no mutation": EvolutionConfig(
        population_size=16, enable_crossover=False, enable_mutation=False
    ),
}


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        num_gpus=16,
        trace=TraceConfig(num_jobs=16, arrival_rate=1.0 / 20.0),
        seed=SEED,
    )


def _run_all():
    config = _config()
    trace = generate_trace(config)
    outcomes = {}
    for label, evolution in VARIANTS.items():
        scheduler = ONESScheduler(ONESConfig(evolution=evolution), seed=SEED)
        outcomes[label] = run_single(scheduler, trace, config)
    return outcomes


def test_ablation_evolution_operators(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [
        {
            "variant": label,
            "avg JCT (s)": round(result.average_jct, 1),
            "avg exec (s)": round(result.average_execution_time, 1),
            "avg queue (s)": round(result.average_queuing_time, 1),
            "reconfigs": result.num_reconfigurations,
        }
        for label, result in outcomes.items()
    ]
    write_report(
        "ablation_operators",
        "Ablation: contribution of the evolutionary search components\n" + format_table(rows),
    )
    full = outcomes["full evolutionary search"]
    for label, result in outcomes.items():
        assert not result.incomplete, label
    # The full search should never be meaningfully worse than the ablated
    # variants (ties are acceptable on a small trace).
    for label, result in outcomes.items():
        assert full.average_jct <= result.average_jct * 1.10, label
