"""Extension — ONES against additional reference schedulers.

Beyond the paper's three baselines, the repository ships FIFO, an oracle
SRTF and a Gandiva-style time-slicing scheduler (related-work §5).  This
benchmark places ONES in that wider field on a moderate trace.
"""

from repro.analysis.reporting import format_table
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.gandiva import GandivaScheduler
from repro.baselines.srtf import SRTFScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison
from repro.workload.trace import TraceConfig

from benchmarks._shared import SEED, write_report


def _comparison():
    config = ExperimentConfig(
        num_gpus=16,
        trace=TraceConfig(num_jobs=16, arrival_rate=1.0 / 20.0),
        seed=SEED + 4,
        schedulers={
            "ONES": lambda seed: ONESScheduler(
                ONESConfig(evolution=EvolutionConfig(population_size=12)), seed=seed
            ),
            "Gandiva": lambda seed: GandivaScheduler(),
            "FIFO": lambda seed: FIFOScheduler(),
            "SRTF-oracle": lambda seed: SRTFScheduler(),
        },
    )
    return run_comparison(config)


def test_extra_baselines(benchmark):
    comparison = benchmark.pedantic(_comparison, rounds=1, iterations=1)
    rows = []
    for name, result in comparison.results.items():
        rows.append(
            {
                "scheduler": name,
                "avg JCT (s)": round(result.average_jct, 1),
                "avg exec (s)": round(result.average_execution_time, 1),
                "avg queue (s)": round(result.average_queuing_time, 1),
                "utilisation": round(result.gpu_utilization, 2),
            }
        )
    write_report(
        "extra_baselines",
        "Extension: ONES vs FIFO / SRTF-oracle / Gandiva time-slicing\n" + format_table(rows),
    )
    averages = comparison.averages("jct")
    for name, result in comparison.results.items():
        assert not result.incomplete, name
    # ONES beats the fixed-configuration schedulers.
    assert averages["ONES"] < averages["FIFO"]
    assert averages["ONES"] < averages["Gandiva"]
