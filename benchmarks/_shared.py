"""Shared configuration and caching for the benchmark harness.

The main comparison (Fig. 15 / Table 4) and the scalability sweep
(Fig. 17 / 18) are expensive; several benchmark files consume the same
runs, so they are computed once per pytest session and cached here.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:

* ``paper``  — the paper's setup: 64 GPUs, 50 jobs, capacities 16–64.
* ``medium`` — (default) 64 GPUs, 50 jobs, but a two-point scalability
  sweep, keeping the whole benchmark suite within a few minutes.
* ``small``  — 16 GPUs, 12 jobs, for smoke-testing the harness.
"""

from __future__ import annotations

import json
import os
import platform
from functools import lru_cache
from pathlib import Path
from typing import Dict, Sequence, Tuple

from repro.baselines.drl import DRLScheduler, PolicyNetwork, ReinforceTrainer
from repro.baselines.optimus import OptimusScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.core.evolution import EvolutionConfig
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ComparisonResult, run_comparison, run_scalability_sweep
from repro.workload.trace import TraceConfig

#: Where benchmark reports are written (in addition to being printed).
OUTPUT_DIR = Path(__file__).resolve().parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "medium").lower()
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2021"))

#: All benchmark scales, public so perf benches can sweep every scale in
#: one run (machine-readable perf records report each of them).
SCALES = {
    "paper": {"num_gpus": 64, "num_jobs": 50, "capacities": (16, 32, 48, 64)},
    "medium": {"num_gpus": 64, "num_jobs": 50, "capacities": (16, 64)},
    "small": {"num_gpus": 16, "num_jobs": 12, "capacities": (8, 16)},
}
if SCALE not in SCALES:
    raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {SCALE!r}")

PARAMS = SCALES[SCALE]


def write_report(name: str, text: str) -> Path:
    """Print a benchmark report and persist it under ``benchmarks/results``."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    return path


def write_perf_record(name: str, payload: Dict) -> Path:
    """Persist a machine-readable perf record as ``BENCH_<name>.json``.

    The payload is wrapped with the seed and platform metadata so the
    perf trajectory stays comparable across future PRs.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    record = {
        "bench": name,
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    path = OUTPUT_DIR / f"BENCH_{name}.json"
    path.write_text(text)
    # Mirror at the repo root so the perf trajectory is easy to diff
    # across PRs without digging into benchmarks/results.
    (Path(__file__).resolve().parent.parent / f"BENCH_{name}.json").write_text(text)
    return path


@lru_cache(maxsize=1)
def trained_drl_policy() -> PolicyNetwork:
    """Train the DRL baseline's policy once per session (offline phase)."""
    trainer = ReinforceTrainer(episodes=20, jobs_per_episode=10, num_gpus=16, seed=SEED)
    return trainer.train()


def scheduler_factories() -> Dict[str, object]:
    """The four evaluated schedulers, mirroring Table 3."""
    policy = trained_drl_policy()
    return {
        "ONES": lambda seed: ONESScheduler(ONESConfig(evolution=EvolutionConfig()), seed=seed),
        "DRL": lambda seed: DRLScheduler(policy=policy, seed=seed, greedy=True),
        "Tiresias": lambda seed: TiresiasScheduler(),
        "Optimus": lambda seed: OptimusScheduler(),
    }


def main_experiment_config(num_gpus: int | None = None) -> ExperimentConfig:
    """The Fig. 15 experiment configuration at the selected benchmark scale."""
    return ExperimentConfig(
        num_gpus=int(num_gpus or PARAMS["num_gpus"]),
        trace=TraceConfig(num_jobs=int(PARAMS["num_jobs"]), arrival_rate=1.0 / 30.0),
        seed=SEED,
        schedulers=scheduler_factories(),
    )


@lru_cache(maxsize=1)
def main_comparison() -> ComparisonResult:
    """The shared Fig. 15 / Table 4 run (cached per session)."""
    return run_comparison(main_experiment_config())


@lru_cache(maxsize=1)
def scalability_sweep() -> Dict[int, ComparisonResult]:
    """The shared Fig. 17 / 18 sweep (cached per session)."""
    return run_scalability_sweep(
        capacities=tuple(PARAMS["capacities"]),
        base_config=main_experiment_config(),
        schedulers=scheduler_factories(),
    )
