"""Table 3 — capability comparison of ONES and the baseline schedulers."""

from repro.analysis.reporting import format_table
from repro.experiments import figures

from benchmarks._shared import write_report


def test_table3_capabilities(benchmark):
    rows = benchmark(figures.table3_capabilities)
    write_report(
        "table3_capabilities",
        "Table 3: comparison of ONES and the state-of-the-art DL schedulers\n"
        + format_table(rows),
    )
    by_name = {row["Scheduler"]: row for row in rows}
    # ONES is the only scheduler with an elastic batch size.
    assert by_name["ONES"]["Elastic Batch Size"] == "Y"
    assert all(
        by_name[name]["Elastic Batch Size"] == "N" for name in ("DRL", "Tiresias", "Optimus")
    )
    # DRL cannot preempt; Tiresias cannot resize jobs.
    assert by_name["DRL"]["Allow Preemption"] == "N"
    assert by_name["Tiresias"]["Elastic Job Size"] == "N"
    # ONES and DRL are dynamic, Tiresias and Optimus greedy.
    assert by_name["ONES"]["Greedy/Dynamic Strategy"] == "Dynamic"
    assert by_name["Optimus"]["Greedy/Dynamic Strategy"] == "Greedy"
