"""Serial vs process-pool execution of an experiment grid.

The Fig. 15/17 sweeps are embarrassingly parallel across (scheduler,
capacity, seed) cells; the declarative Runner exploits that with its
process-pool backend.  This bench runs the same scaled-down grid through
the serial backend and a 2-worker pool, asserts the artifacts are
bit-identical, and records the wall-clock of both paths (plus a resumed
run served entirely from the cell cache) in ``BENCH_runner.json``.

Run with ``PYTHONPATH=src python -m benchmarks.bench_parallel_runner``
or through pytest.
"""

from __future__ import annotations

import os
import tempfile
from time import perf_counter
from typing import Dict

from benchmarks._shared import SCALES, SEED, write_perf_record, write_report

from repro.experiments.orchestrator import Runner
from repro.experiments.spec import ExperimentSpec
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig

WORKERS = 2


def _grid(scale: Dict) -> ExperimentSpec:
    return ExperimentSpec(
        schedulers=("ONES", "Tiresias", "Optimus", "FIFO"),
        capacities=tuple(scale["capacities"]),
        seeds=(SEED, SEED + 1),
        traces=(TraceConfig(num_jobs=scale["num_jobs"], arrival_rate=1.0 / 15.0,
                            convergence_patience=5),),
        simulation=SimulationConfig(max_time=24 * 3600.0),
        scheduler_options={"ONES": {"population_size": 8}},
    )


def run_bench(scale_name: str = "small") -> Dict:
    """Time the grid on both backends; returns the machine-readable record."""
    spec = _grid(SCALES[scale_name])

    start = perf_counter()
    serial = Runner(backend="serial").run(spec)
    serial_time = perf_counter() - start

    with tempfile.TemporaryDirectory() as cache_dir:
        pool_runner = Runner(backend="process", workers=WORKERS, cache_dir=cache_dir)
        start = perf_counter()
        parallel = pool_runner.run(spec)
        parallel_time = perf_counter() - start

        start = perf_counter()
        resumed = pool_runner.run(spec, resume=True)
        resumed_time = perf_counter() - start
        cells_resumed_from_cache = pool_runner.stats.cached_cells

    if serial.runs != parallel.runs or serial.runs != resumed.runs:
        raise AssertionError("process-pool/resumed artifacts diverged from serial")

    return {
        "scale": scale_name,
        "cells": spec.num_cells,
        "workers": WORKERS,
        # Pool speedup requires actual cores; on a 1-CPU machine the
        # parallel wall-clock is expected to match serial (+/- overhead).
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial_time, 3),
        "parallel_seconds": round(parallel_time, 3),
        "speedup": round(serial_time / parallel_time, 2) if parallel_time > 0 else None,
        "resume_seconds": round(resumed_time, 3),
        "cells_resumed_from_cache": cells_resumed_from_cache,
        "bit_identical": True,
    }


def test_parallel_runner_benchmark():
    """Pytest entry point (small scale so the benchmark suite stays fast)."""
    record = run_bench("small")
    assert record["bit_identical"]
    assert record["cells_resumed_from_cache"] == record["cells"]


def main() -> None:
    record = run_bench("small")
    write_perf_record("runner", record)
    lines = [
        "Parallel experiment runner (serial vs process-pool backend)",
        "-----------------------------------------------------------",
        f"grid: {record['cells']} cells, {record['workers']} workers, "
        f"{record['cpus']} CPUs",
        f"serial    : {record['serial_seconds']:.2f}s",
        f"parallel  : {record['parallel_seconds']:.2f}s  (speedup {record['speedup']}x)",
        f"resume    : {record['resume_seconds']:.2f}s  "
        f"({record['cells_resumed_from_cache']}/{record['cells']} cells from cache)",
        "artifacts : bit-identical across backends",
    ]
    write_report("parallel_runner", "\n".join(lines))


if __name__ == "__main__":
    main()
