"""Serial vs process-pool vs durable-queue execution of an experiment grid.

The Fig. 15/17 sweeps are embarrassingly parallel across (scheduler,
capacity, seed) cells; the declarative Runner exploits that with its
process-pool backend.  This bench runs the same scaled-down grid through
the serial backend and a 2-worker pool, asserts the artifacts are
bit-identical, and records the wall-clock of both paths (plus a resumed
run served entirely from the cell cache) in ``BENCH_runner.json``.

The ``queue`` section measures the durable lease-based queue backend:
per-cell enqueue and claim overhead (the fixed price of crash safety —
an fsynced log append plus an exclusive lease-file create), a full
queue-backed sweep checked bit-identical against serial, and the
recovery latency after a worker is SIGKILLed mid-cell (kill to finished
artifact, dominated by the lease TTL).

Run with ``PYTHONPATH=src python -m benchmarks.bench_parallel_runner``
or through pytest.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from time import perf_counter
from typing import Dict

from benchmarks._shared import SCALES, SEED, write_perf_record, write_report

import repro
from repro.experiments.backends import ExecutionPolicy
from repro.experiments.orchestrator import Runner
from repro.experiments.queue import WorkQueue
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig

WORKERS = 2


def _grid(scale: Dict) -> ExperimentSpec:
    return ExperimentSpec(
        schedulers=("ONES", "Tiresias", "Optimus", "FIFO"),
        capacities=tuple(scale["capacities"]),
        seeds=(SEED, SEED + 1),
        traces=(TraceConfig(num_jobs=scale["num_jobs"], arrival_rate=1.0 / 15.0,
                            convergence_patience=5),),
        simulation=SimulationConfig(max_time=24 * 3600.0),
        scheduler_options={"ONES": {"population_size": 8}},
    )


def run_bench(scale_name: str = "small") -> Dict:
    """Time the grid on both backends; returns the machine-readable record."""
    spec = _grid(SCALES[scale_name])

    start = perf_counter()
    serial = Runner(backend="serial").run(spec)
    serial_time = perf_counter() - start

    with tempfile.TemporaryDirectory() as cache_dir:
        pool_runner = Runner(backend="process", workers=WORKERS, cache_dir=cache_dir)
        start = perf_counter()
        parallel = pool_runner.run(spec)
        parallel_time = perf_counter() - start

        start = perf_counter()
        resumed = pool_runner.run(spec, resume=True)
        resumed_time = perf_counter() - start
        cells_resumed_from_cache = pool_runner.stats.cached_cells

    if serial.runs != parallel.runs or serial.runs != resumed.runs:
        raise AssertionError("process-pool/resumed artifacts diverged from serial")

    return {
        "scale": scale_name,
        "cells": spec.num_cells,
        "workers": WORKERS,
        # Pool speedup requires actual cores; on a 1-CPU machine the
        # parallel wall-clock is expected to match serial (+/- overhead).
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial_time, 3),
        "parallel_seconds": round(parallel_time, 3),
        "speedup": round(serial_time / parallel_time, 2) if parallel_time > 0 else None,
        "resume_seconds": round(resumed_time, 3),
        "cells_resumed_from_cache": cells_resumed_from_cache,
        "bit_identical": True,
    }


def _spawn_bench_worker(queue_dir: str, *extra: str) -> subprocess.Popen:
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.worker", queue_dir, "--quiet", *extra],
        env=env,
    )


def _wait_for_claim(queue_dir: str, timeout: float = 60.0) -> None:
    log = Path(queue_dir) / "log.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if log.exists():
            for line in log.read_text().splitlines():
                try:
                    if json.loads(line).get("event") == "claimed":
                        return
                except json.JSONDecodeError:
                    continue
        time.sleep(0.05)
    raise AssertionError("bench worker never claimed its cell")


def run_queue_bench(scale_name: str = "small") -> Dict:
    """Queue backend: protocol overhead, sweep parity, recovery latency."""
    spec = _grid(SCALES[scale_name])
    cells = spec.expand()

    with tempfile.TemporaryDirectory() as tmp:
        # Protocol overhead, isolated from simulation cost: enqueue every
        # cell (fsynced log append + spec write) then claim every cell
        # (log tail + exclusive lease create).
        protocol = WorkQueue(os.path.join(tmp, "protocol"), lease_ttl=300.0)
        start = perf_counter()
        protocol.enqueue_all(cells)
        enqueue_seconds = perf_counter() - start
        start = perf_counter()
        claimed = 0
        while protocol.claim("bench-worker") is not None:
            claimed += 1
        claim_seconds = perf_counter() - start
        if claimed != len(cells):
            raise AssertionError(f"claimed {claimed} of {len(cells)} enqueued cells")

        # Full sweep through the Runner, checked against serial.
        serial = Runner(backend="serial").run(spec)
        start = perf_counter()
        queue_runner = Runner(backend="queue", queue_dir=os.path.join(tmp, "sweep"),
                              workers=WORKERS, lease_ttl=60.0)
        queued = queue_runner.run(spec)
        queue_seconds = perf_counter() - start
        if queued.to_json() != serial.to_json():
            raise AssertionError("queue-backed sweep diverged from serial")

        # Recovery drill: a worker is SIGKILLed mid-cell; measure kill ->
        # finished artifact (lease expiry + re-claim + execution).
        drill_dir = os.path.join(tmp, "drill")
        drill_spec: RunSpec = cells[0]
        drill = WorkQueue(drill_dir, lease_ttl=1.0,
                          policy=ExecutionPolicy(max_retries=3))
        (drill_key,) = drill.enqueue_all([drill_spec])
        victim = _spawn_bench_worker(drill_dir, "--hold-s", "120",
                                     "--worker-id", "victim")
        try:
            _wait_for_claim(drill_dir)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
            killed_at = perf_counter()
            rescuer = _spawn_bench_worker(drill_dir, "--exit-when-done",
                                          "--worker-id", "rescuer")
            try:
                rescuer.wait(timeout=120)
                recovery_seconds = perf_counter() - killed_at
            finally:
                if rescuer.poll() is None:
                    rescuer.kill()
        finally:
            if victim.poll() is None:
                victim.kill()
        if drill.load_result(drill_key) is None:
            raise AssertionError("recovery drill did not produce the artifact")

    return {
        "cells": len(cells),
        "workers": WORKERS,
        "enqueue_seconds_per_cell": round(enqueue_seconds / len(cells), 5),
        "claim_seconds_per_cell": round(claim_seconds / len(cells), 5),
        "sweep_seconds": round(queue_seconds, 3),
        "bit_identical": True,
        "recovery_lease_ttl": 1.0,
        "recovery_seconds_after_kill": round(recovery_seconds, 3),
    }


def test_parallel_runner_benchmark():
    """Pytest entry point (small scale so the benchmark suite stays fast)."""
    record = run_bench("small")
    assert record["bit_identical"]
    assert record["cells_resumed_from_cache"] == record["cells"]


def test_queue_backend_benchmark():
    """The queue section doubles as an integration gate: parity + recovery."""
    record = run_queue_bench("small")
    assert record["bit_identical"]
    assert record["recovery_seconds_after_kill"] > 0


def main() -> None:
    record = run_bench("small")
    record["queue"] = run_queue_bench("small")
    write_perf_record("runner", record)
    queue = record["queue"]
    lines = [
        "Parallel experiment runner (serial vs process-pool vs queue backend)",
        "--------------------------------------------------------------------",
        f"grid: {record['cells']} cells, {record['workers']} workers, "
        f"{record['cpus']} CPUs",
        f"serial    : {record['serial_seconds']:.2f}s",
        f"parallel  : {record['parallel_seconds']:.2f}s  (speedup {record['speedup']}x)",
        f"resume    : {record['resume_seconds']:.2f}s  "
        f"({record['cells_resumed_from_cache']}/{record['cells']} cells from cache)",
        f"queue     : {queue['sweep_seconds']:.2f}s sweep, "
        f"{1000 * queue['enqueue_seconds_per_cell']:.1f}ms enqueue + "
        f"{1000 * queue['claim_seconds_per_cell']:.1f}ms claim per cell",
        f"recovery  : {queue['recovery_seconds_after_kill']:.2f}s from SIGKILL to "
        f"finished artifact (lease TTL {queue['recovery_lease_ttl']:.0f}s)",
        "artifacts : bit-identical across backends",
    ]
    write_report("parallel_runner", "\n".join(lines))


if __name__ == "__main__":
    main()
