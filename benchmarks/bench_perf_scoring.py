"""Scalar vs batched engines on the two ONES hot paths: scoring + operators.

The SRUF objective (Eq. 8) is evaluated for every candidate of the
population at every simulator event, and the evolution *operators*
(refresh, crossover repair, mutation refill, reorder, selection) run a
whole generation around it — together they bound how large a population
(and how busy a cluster) the scheduler can afford.  This bench drives
identical workloads through

* the scalar reference paths (one Python loop per candidate, one
  throughput lookup per (job, candidate) pair, one Schedule per
  intermediate), and
* the batched engines (one ``bincount`` + one ``ThroughputTable``
  gather for scoring; array ops over the stacked ``(K, num_gpus)``
  genome matrix for the generation loop),

at every benchmark scale, plus one small end-to-end ONES simulation per
engine, and writes the ops/sec of all paths to ``BENCH_scoring.json``
so the perf trajectory is machine-readable across PRs.  Both engines
are bit-identical (asserted here and in the parity suites), so every
speedup is free.  Run with ``PYTHONPATH=src python -m
benchmarks.bench_perf_scoring`` or through pytest.
"""

from __future__ import annotations

import os
from dataclasses import replace
from functools import lru_cache
from time import perf_counter
from typing import Dict

import numpy as np

from benchmarks._shared import SCALES, SEED, write_perf_record, write_report

from repro.cluster.topology import make_longhorn_cluster
from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.core.operators import reorder
from repro.core.schedule import IDLE, Schedule, stack_genomes
from repro.core.scoring import score_candidates, score_population
from repro.experiments.backends import simulate_trace
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import create_scheduler
from repro.experiments.runner import generate_trace, run_single
from repro.faults import FaultConfig
from repro.jobs.throughput import ThroughputModel, ThroughputTable
from repro.sim.simulator import SimulationConfig
from repro.workload.trace import TraceConfig

from tests._core_helpers import make_context, make_jobs

#: Fraction of GPUs knocked idle per candidate so the workload includes
#: idle genes (the engine must handle them, and real populations do).
IDLE_FRACTION = 0.1


def _scoring_workload(num_gpus: int, num_jobs: int, seed: int):
    """A busy cluster snapshot plus a population of K = num_gpus candidates."""
    jobs = make_jobs(num_jobs)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(1500 * (i + 1), 10.0)
    topology = make_longhorn_cluster(num_gpus)
    model = ThroughputModel(topology)
    limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    rng = np.random.default_rng(seed)
    candidates = []
    for _ in range(num_gpus):  # the paper's K = cluster size
        genome = rng.integers(0, num_jobs, size=num_gpus).astype(np.int64)
        genome[rng.random(num_gpus) < IDLE_FRACTION] = IDLE
        candidates.append(reorder(Schedule(roster=roster, genome=genome)))
    table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
    progress = {
        job_id: float(rho)
        for job_id, rho in zip(roster, rng.uniform(0.05, 0.95, size=len(roster)))
    }
    return jobs, candidates, table, progress


def _candidates_per_sec(fn, num_candidates: int, min_time: float = 0.2) -> float:
    """Candidates scored per second (repeat until ``min_time`` elapsed)."""
    fn()  # warm-up: fills the throughput table / caches
    reps = 0
    start = perf_counter()
    elapsed = 0.0
    while elapsed < min_time:
        fn()
        reps += 1
        elapsed = perf_counter() - start
    return reps * num_candidates / elapsed


def _evolution_workload(num_gpus: int, num_jobs: int, seed: int):
    """A busy snapshot plus a factory for identically-seeded contexts."""
    jobs = make_jobs(num_jobs)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(1500 * (i + 1), 10.0)
    model = ThroughputModel(make_longhorn_cluster(num_gpus))
    limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    base = make_context(jobs, num_gpus=num_gpus, limits=limits, seed=seed)
    table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)

    def fresh_ctx(rng_seed: int):
        return replace(
            base,
            throughput_fn=None,
            throughput_table=table,
            rng=np.random.default_rng(rng_seed),
        )

    return fresh_ctx


def _generations_per_sec(search, ctx, min_time: float = 0.4) -> float:
    """Full evolution generations per second (steady-state stepping)."""
    search.step(ctx)  # initialise the population / warm the table
    reps = 0
    start = perf_counter()
    elapsed = 0.0
    while elapsed < min_time:
        search.step(ctx)
        reps += 1
        elapsed = perf_counter() - start
    return reps / elapsed


def _bench_operator_loop(num_gpus: int, num_jobs: int) -> Dict:
    """Scalar vs batched generation loop at one scale (K = paper size)."""
    fresh_ctx = _evolution_workload(num_gpus, num_jobs, SEED)

    def search(batched: bool) -> EvolutionarySearch:
        return EvolutionarySearch(
            EvolutionConfig(batched_operators=batched), seed=SEED
        )

    # Parity guard: identical seeds must yield identical trajectories.
    scalar_probe, batched_probe = search(False), search(True)
    ctx_a, ctx_b = fresh_ctx(SEED + 1), fresh_ctx(SEED + 1)
    for _ in range(2):
        best_a, score_a = scalar_probe.step(ctx_a)
        best_b, score_b = batched_probe.step(ctx_b)
        if score_a != score_b or not np.array_equal(best_a.genome, best_b.genome):
            raise AssertionError("scalar and batched generations disagree")
    if not np.array_equal(
        stack_genomes(scalar_probe.population.members),
        stack_genomes(batched_probe.population.members),
    ):
        raise AssertionError("scalar and batched populations disagree")

    scalar_ops = _generations_per_sec(search(False), fresh_ctx(SEED + 2))
    batched_ops = _generations_per_sec(search(True), fresh_ctx(SEED + 2))
    population = EvolutionConfig().resolved_population_size(num_gpus)
    return {
        "num_gpus": num_gpus,
        "num_jobs": num_jobs,
        "population": population,
        "scalar_generations_per_sec": round(scalar_ops, 2),
        "batched_generations_per_sec": round(batched_ops, 2),
        "speedup": round(batched_ops / scalar_ops, 2),
    }


#: Full-simulation configurations timed per engine: a small smoke scale
#: and the 64-GPU cluster the ROADMAP end-to-end numbers come from.
END_TO_END_CONFIGS = ((16, 10), (64, 40))


def _bench_end_to_end() -> Dict[str, Dict]:
    """Full ONES simulations per engine (trajectories must be identical)."""
    records: Dict[str, Dict] = {}
    for num_gpus, num_jobs in END_TO_END_CONFIGS:
        config = ExperimentConfig(
            num_gpus=num_gpus,
            trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 30.0),
            seed=SEED,
        )
        trace = generate_trace(config)
        timings: Dict[str, float] = {}
        results = {}
        for label, batched in (("scalar", False), ("batched", True)):
            scheduler = ONESScheduler(
                ONESConfig(evolution=EvolutionConfig(batched_operators=batched)),
                seed=SEED,
            )
            start = perf_counter()
            results[label] = run_single(scheduler, trace, config)
            timings[label] = perf_counter() - start
        if results["scalar"].completed != results["batched"].completed:
            raise AssertionError("end-to-end trajectories diverged between engines")
        records[f"{num_gpus}x{num_jobs}"] = {
            "num_gpus": num_gpus,
            "num_jobs": num_jobs,
            "scalar_seconds": round(timings["scalar"], 3),
            "batched_seconds": round(timings["batched"], 3),
            "speedup": round(timings["scalar"] / timings["batched"], 2),
        }
    return records


#: Event-loop configurations: the 16-GPU smoke scale and the 64-GPU
#: cluster the acceptance numbers come from.
EVENT_LOOP_CONFIGS = ((16, 10), (64, 40))


def _bench_event_loop() -> Dict[str, Dict]:
    """Kernel + GPR-policy wall-clock of full ONES simulations.

    Times the simulation engine end to end under the two predictor
    policies: ``default`` is the paper-faithful full-refit-per-completion
    path (trajectory-pinned to the PR 3 baseline by the golden-trace and
    differential parity suites — only faster), ``incremental_gpr`` is the
    rank-1-update policy (``refit_policy="incremental"``), which trades
    bounded predictor staleness for long-trace throughput.  Profiling is
    on, so the GPR-refit share of every run is recorded.
    """
    records: Dict[str, Dict] = {}
    for num_gpus, num_jobs in EVENT_LOOP_CONFIGS:
        config = ExperimentConfig(
            num_gpus=num_gpus,
            trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 30.0),
            seed=SEED,
        )
        trace = generate_trace(config)
        row: Dict[str, Dict] = {}
        for label, options in (
            ("default", {}),
            ("incremental_gpr", {"refit_policy": "incremental"}),
        ):
            scheduler = create_scheduler("ONES", SEED, **options)
            start = perf_counter()
            result = simulate_trace(
                scheduler, trace, num_gpus, SimulationConfig(collect_profile=True)
            )
            elapsed = perf_counter() - start
            # Total GPR cost = full refits + rank-1 appends, so the share
            # is honest for the incremental policy too.
            refit = result.profile.get("gpr_refit_seconds", 0.0) + result.profile.get(
                "gpr_partial_fit_seconds", 0.0
            )
            row[label] = {
                "seconds": round(elapsed, 3),
                "events": result.events_processed,
                "events_per_sec": round(result.events_processed / elapsed, 1),
                "gpr_refit_seconds": round(refit, 3),
                "gpr_refit_share": round(refit / elapsed, 3),
                "gpr_full_fits": scheduler.predictor.fit_count,
                "gpr_partial_fits": scheduler.predictor.partial_fit_count,
                "completed": len(result.completed),
                "average_jct": round(result.average_jct, 1),
            }
        records[f"{num_gpus}x{num_jobs}"] = {
            "num_gpus": num_gpus,
            "num_jobs": num_jobs,
            **row,
            "speedup": round(row["default"]["seconds"] / row["incremental_gpr"]["seconds"], 2),
        }
    return records


def _bench_faults() -> Dict:
    """Fault-subsystem cost: dormant-config overhead + one chaotic run.

    The zero-fault contract is that merely *shipping* the fault
    subsystem (handler registration, availability checks on the advance
    and allocation paths, the runtime's empty-state queries) costs the
    event loop nothing measurable.  ``disabled_overhead`` compares a run
    with no fault config against a run whose config is enabled but
    dormant (an MTBF so large no failure lands inside the horizon) —
    the two trajectories must be identical and the wall-clock within a
    few percent (gated <5% below).  A genuinely faulted run is recorded
    alongside for the perf trajectory of recovery itself.
    """
    num_gpus, num_jobs = 16, 10
    config = ExperimentConfig(
        num_gpus=num_gpus,
        trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / 30.0),
        seed=SEED,
    )
    trace = generate_trace(config)

    def timed_run(faults):
        scheduler = create_scheduler("ONES", SEED)
        start = perf_counter()
        result = simulate_trace(
            scheduler, trace, num_gpus, SimulationConfig(faults=faults)
        )
        return result, perf_counter() - start

    # Enabled but dormant: the first exponential failure draw lands ~1e6
    # hours out, far beyond the simulation horizon, so zero events fire.
    dormant = FaultConfig(profile="mtbf", seed=SEED, mtbf_hours=1e6)
    baseline_times, dormant_times = [], []
    baseline_result = dormant_result = None
    for _ in range(3):  # interleaved, best-of-3 per side (noise control)
        baseline_result, elapsed = timed_run(None)
        baseline_times.append(elapsed)
        dormant_result, elapsed = timed_run(dormant)
        dormant_times.append(elapsed)
    if baseline_result.completed != dormant_result.completed:
        raise AssertionError("a dormant fault config changed the trajectory")
    baseline_s, dormant_s = min(baseline_times), min(dormant_times)

    chaotic = FaultConfig(
        profile="mtbf", seed=SEED, mtbf_hours=0.5, repair_minutes=10
    )
    faulted_result, faulted_s = timed_run(chaotic)
    return {
        "num_gpus": num_gpus,
        "num_jobs": num_jobs,
        "baseline_seconds": round(baseline_s, 3),
        "dormant_seconds": round(dormant_s, 3),
        "disabled_overhead": round(dormant_s / baseline_s - 1.0, 4),
        "baseline_events_per_sec": round(
            baseline_result.events_processed / baseline_s, 1
        ),
        "faulted": {
            "seconds": round(faulted_s, 3),
            "events": faulted_result.events_processed,
            "completed": len(faulted_result.completed),
            "evictions": faulted_result.faults.get("evictions", 0.0),
            "restarts": faulted_result.faults.get("restarts", 0.0),
            "goodput": round(faulted_result.faults.get("goodput", 0.0), 3),
        },
    }


#: Incremental-scoring tiers: ``(num_gpus, num_jobs)`` for the
#: delta-scoring generation kernel.  The paper scale and the CI quick
#: tier always run; the 1024-GPU / 1000-job acceptance tier only under
#: ``REPRO_BENCH_FULL_SCALE=1`` (one baseline generation alone takes
#: seconds there).
INCREMENTAL_TIERS = {
    "64x40": (64, 40),
    "256x120": (256, 120),
    "1024x1000": (1024, 1000),
}


def _bench_incremental_scoring() -> Dict[str, Dict]:
    """Generation throughput with the decomposition cache on vs off.

    Both sides run the batched engine (the PR 3 baseline); the only
    difference is ``EvolutionConfig.incremental_scoring`` — the
    per-candidate :class:`~repro.core.scoring_incremental.ScoreDecomposition`
    maintained through the operators instead of re-derived per
    generation.  A parity probe pins the two trajectories bit-identical
    before timing, so the speedup is free.
    """
    tiers = ["64x40", "256x120"]
    if os.environ.get("REPRO_BENCH_FULL_SCALE"):
        tiers.append("1024x1000")
    records: Dict[str, Dict] = {}
    for tier in tiers:
        num_gpus, num_jobs = INCREMENTAL_TIERS[tier]
        fresh_ctx = _evolution_workload(num_gpus, num_jobs, SEED)

        def search(incremental: bool) -> EvolutionarySearch:
            return EvolutionarySearch(
                EvolutionConfig(
                    batched_operators=True, incremental_scoring=incremental
                ),
                seed=SEED,
            )

        # Parity guard: identical seeds must yield identical trajectories.
        probe_off, probe_on = search(False), search(True)
        ctx_a, ctx_b = fresh_ctx(SEED + 1), fresh_ctx(SEED + 1)
        for _ in range(2):
            best_a, score_a = probe_off.step(ctx_a)
            best_b, score_b = probe_on.step(ctx_b)
            if score_a != score_b or not np.array_equal(
                best_a.genome, best_b.genome
            ):
                raise AssertionError("incremental scoring diverged from baseline")
        if not np.array_equal(
            stack_genomes(probe_off.population.members),
            stack_genomes(probe_on.population.members),
        ):
            raise AssertionError("incremental scoring diverged from baseline")

        baseline_ops = _generations_per_sec(search(False), fresh_ctx(SEED + 2))
        timed_on = search(True)
        incremental_ops = _generations_per_sec(timed_on, fresh_ctx(SEED + 2))
        if timed_on.scoring_engine.stats()["delta_generations"] == 0:
            raise AssertionError("timed run never hit the decomposition cache")
        population = EvolutionConfig().resolved_population_size(num_gpus)
        records[tier] = {
            "num_gpus": num_gpus,
            "num_jobs": num_jobs,
            "population": population,
            "baseline_generations_per_sec": round(baseline_ops, 2),
            "incremental_generations_per_sec": round(incremental_ops, 2),
            "baseline_ns_per_candidate": round(1e9 / (baseline_ops * population), 1),
            "incremental_ns_per_candidate": round(
                1e9 / (incremental_ops * population), 1
            ),
            "speedup": round(incremental_ops / baseline_ops, 2),
        }
    return records


#: Hierarchical-scheduler scale tiers: ``(num_gpus, num_jobs,
#: partition_size, mean arrival interval)``.  The quick tier always runs
#: (it is the CI ``scale-smoke`` budget gate); the full tier is the
#: ISSUE acceptance scenario — 1024 GPUs / 1000 jobs, minutes not hours
#: — and only runs when ``REPRO_BENCH_FULL_SCALE`` is set, so its
#: numbers land in ``BENCH_scoring.json`` without taxing every CI run.
SCALE_TIERS = {
    "quick": (256, 120, 64, 10.0),
    "full": (1024, 1000, 64, 5.0),
}


def _bench_hierarchical_scale() -> Dict[str, Dict]:
    """Wall-clock of the partitioned scheduler at post-paper cluster sizes.

    Flat ONES is superlinear in cluster size (genome length = GPU count,
    population = cluster size), so these tiers run only the hierarchical
    configuration — the flat side of the story is covered at 64 GPUs by
    the ``end_to_end`` section and pinned bit-identical to ``ONES-hier``
    with ``partitions=1`` by the differential parity suite.
    """
    tiers = ["quick"]
    if os.environ.get("REPRO_BENCH_FULL_SCALE"):
        tiers.append("full")
    records: Dict[str, Dict] = {}
    for tier in tiers:
        num_gpus, num_jobs, partition_size, interval = SCALE_TIERS[tier]
        config = ExperimentConfig(
            num_gpus=num_gpus,
            trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / interval),
            seed=SEED,
        )
        trace = generate_trace(config)
        scheduler = create_scheduler("ONES-hier", SEED, partition_size=partition_size)
        start = perf_counter()
        result = simulate_trace(scheduler, trace, num_gpus, SimulationConfig())
        elapsed = perf_counter() - start
        summary = scheduler.describe_state()
        records[tier] = {
            "num_gpus": num_gpus,
            "num_jobs": num_jobs,
            "partition_size": partition_size,
            "partitions": summary["partitions"],
            "seconds": round(elapsed, 1),
            "events": result.events_processed,
            "events_per_sec": round(result.events_processed / elapsed, 1),
            "completed": len(result.completed),
            "incomplete": len(result.incomplete),
            "wide_placements": summary.get("wide_placements", 0),
            "makespan": round(result.makespan, 1),
            "average_jct": round(result.average_jct, 1),
        }
    return records


def _bench_observability() -> Dict:
    """Trace-recorder cost at the 256x120 smoke tier: dormant + recording.

    The observability contract mirrors the fault subsystem's: merely
    *shipping* the tracer hooks (the ``active_tracer()`` global read +
    branch on every instrumentation site, the kernel's per-event
    ``enabled`` check) must cost the traced-off event loop nothing
    measurable.  ``disabled_overhead`` compares a run with no recorder
    installed against a run with a recorder installed but *disabled* —
    trajectories must be identical and the wall-clock within a few
    percent (gated <3% below).  One fully-traced run is recorded
    alongside so the cost of tracing-on (and the record volume it buys)
    stays in the perf trajectory.

    The horizon is capped at the first 600 virtual seconds of the tier's
    trace: a ~3 s measured run instead of ~12 s buys five interleaved
    rounds per side, and best-of-N over short interleaved runs is far
    more robust to background machine noise than best-of-3 over long
    ones — the dormant delta under test is a global read and a branch
    per instrumentation site, far below long-run noise amplitude.
    """
    from repro.obs.trace import TraceRecorder, install_tracer, uninstall_tracer

    num_gpus, num_jobs, partition_size, interval = SCALE_TIERS["quick"]
    config = ExperimentConfig(
        num_gpus=num_gpus,
        trace=TraceConfig(num_jobs=num_jobs, arrival_rate=1.0 / interval),
        seed=SEED,
    )
    trace = generate_trace(config)
    sim_config = SimulationConfig(max_time=600.0)

    def timed_run():
        scheduler = create_scheduler("ONES-hier", SEED, partition_size=partition_size)
        start = perf_counter()
        result = simulate_trace(scheduler, trace, num_gpus, sim_config)
        return result, perf_counter() - start

    uninstall_tracer()
    timed_run()  # warm-up: throughput-table and numpy caches
    # Per-round pairwise ratios, then the median across rounds: pairing
    # adjacent-in-time runs cancels slow machine drift that poisons
    # min-of-N over independent series, and the median sheds the rounds
    # a background burst landed in.
    dormant_ratios, tracing_ratios = [], []
    baseline_times, dormant_times = [], []
    baseline_result = dormant_result = traced_result = None
    recorder = None
    for round_index in range(6):
        # Alternate which side runs first so within-round drift cannot
        # systematically favour either side.
        dormant_first = bool(round_index % 2)
        if dormant_first:
            install_tracer(TraceRecorder(enabled=False))
            dormant_result, dormant_elapsed = timed_run()
            uninstall_tracer()
            baseline_result, baseline_elapsed = timed_run()
        else:
            baseline_result, baseline_elapsed = timed_run()
            install_tracer(TraceRecorder(enabled=False))
            dormant_result, dormant_elapsed = timed_run()
            uninstall_tracer()
        baseline_times.append(baseline_elapsed)
        dormant_times.append(dormant_elapsed)
        recorder = install_tracer(TraceRecorder(capacity=1 << 20))
        traced_result, traced_elapsed = timed_run()
        uninstall_tracer()
        dormant_ratios.append(dormant_elapsed / baseline_elapsed)
        tracing_ratios.append(traced_elapsed / baseline_elapsed)
    if baseline_result.completed != dormant_result.completed:
        raise AssertionError("a dormant trace recorder changed the trajectory")
    if traced_result.completed != baseline_result.completed:
        raise AssertionError("an enabled trace recorder changed the trajectory")
    return {
        "num_gpus": num_gpus,
        "num_jobs": num_jobs,
        "baseline_seconds": round(min(baseline_times), 3),
        "dormant_seconds": round(min(dormant_times), 3),
        "disabled_overhead": round(float(np.median(dormant_ratios)) - 1.0, 4),
        "tracing_overhead": round(float(np.median(tracing_ratios)) - 1.0, 4),
        "trace_records": len(recorder),
        "trace_records_dropped": recorder.dropped,
    }


@lru_cache(maxsize=1)
def run() -> Dict:
    """Benchmark every scale and persist the BENCH_scoring.json record."""
    results: Dict[str, Dict] = {}
    for scale_name, params in SCALES.items():
        num_gpus = int(params["num_gpus"])
        num_jobs = int(params["num_jobs"])
        jobs, candidates, table, progress = _scoring_workload(
            num_gpus, num_jobs, SEED
        )
        scalar_fn = table.as_throughput_fn()

        build_start = perf_counter()
        scalar_scores = score_candidates(candidates, jobs, progress, scalar_fn)
        table_build_seconds = perf_counter() - build_start

        vector_scores = score_population(candidates, jobs, progress, table)
        if not np.array_equal(scalar_scores, vector_scores):
            raise AssertionError("scalar and vectorised scores disagree")

        scalar_ops = _candidates_per_sec(
            lambda: score_candidates(candidates, jobs, progress, scalar_fn),
            len(candidates),
        )
        vector_ops = _candidates_per_sec(
            lambda: score_population(candidates, jobs, progress, table),
            len(candidates),
        )
        results[scale_name] = {
            "num_gpus": num_gpus,
            "num_jobs": num_jobs,
            "population": len(candidates),
            "scalar_candidates_per_sec": round(scalar_ops, 1),
            "vectorized_candidates_per_sec": round(vector_ops, 1),
            "speedup": round(vector_ops / scalar_ops, 2),
            "table_entries": table.filled_entries,
            "table_capacity": table.capacity,
            "first_scoring_pass_seconds": round(table_build_seconds, 6),
        }

    evolution: Dict[str, Dict] = {}
    for scale_name, params in SCALES.items():
        evolution[scale_name] = _bench_operator_loop(
            int(params["num_gpus"]), int(params["num_jobs"])
        )
    end_to_end = _bench_end_to_end()
    event_loop = _bench_event_loop()
    faults = _bench_faults()
    incremental = _bench_incremental_scoring()
    scale = _bench_hierarchical_scale()
    observability = _bench_observability()

    lines = ["Population scoring: scalar reference vs vectorised engine", ""]
    lines.append(
        f"{'scale':<8} {'GPUs':>5} {'jobs':>5} {'K':>4} "
        f"{'scalar cand/s':>14} {'vector cand/s':>14} {'speedup':>8}"
    )
    for scale_name, row in results.items():
        lines.append(
            f"{scale_name:<8} {row['num_gpus']:>5} {row['num_jobs']:>5} "
            f"{row['population']:>4} {row['scalar_candidates_per_sec']:>14,.0f} "
            f"{row['vectorized_candidates_per_sec']:>14,.0f} "
            f"{row['speedup']:>7.1f}x"
        )
    lines += ["", "Evolution operator loop: scalar reference vs batched engine", ""]
    lines.append(
        f"{'scale':<8} {'GPUs':>5} {'jobs':>5} {'K':>4} "
        f"{'scalar gen/s':>13} {'batched gen/s':>14} {'speedup':>8}"
    )
    for scale_name, row in evolution.items():
        lines.append(
            f"{scale_name:<8} {row['num_gpus']:>5} {row['num_jobs']:>5} "
            f"{row['population']:>4} {row['scalar_generations_per_sec']:>13,.1f} "
            f"{row['batched_generations_per_sec']:>14,.1f} "
            f"{row['speedup']:>7.1f}x"
        )
    lines.append("")
    for row in end_to_end.values():
        lines.append(
            f"End-to-end ONES simulation ({row['num_gpus']} GPUs, "
            f"{row['num_jobs']} jobs): scalar {row['scalar_seconds']}s "
            f"vs batched {row['batched_seconds']}s "
            f"({row['speedup']}x, identical trajectories)"
        )
    lines += ["", "Event loop: default (paper-exact) vs incremental-GPR policy", ""]
    lines.append(
        f"{'scale':<8} {'default ev/s':>13} {'incr ev/s':>10} "
        f"{'refit share':>12} {'-> share':>9} {'speedup':>8}"
    )
    for key, row in event_loop.items():
        lines.append(
            f"{key:<8} {row['default']['events_per_sec']:>13,.0f} "
            f"{row['incremental_gpr']['events_per_sec']:>10,.0f} "
            f"{row['default']['gpr_refit_share']:>11.0%} "
            f"{row['incremental_gpr']['gpr_refit_share']:>8.0%} "
            f"{row['speedup']:>7.1f}x"
        )
    lines += [
        "",
        f"Fault subsystem ({faults['num_gpus']} GPUs, {faults['num_jobs']} jobs): "
        f"disabled-injection overhead {100 * faults['disabled_overhead']:+.1f}% "
        f"({faults['baseline_seconds']}s -> {faults['dormant_seconds']}s, "
        f"identical trajectories); chaotic MTBF run: "
        f"{faults['faulted']['evictions']:.0f} evictions, "
        f"goodput {faults['faulted']['goodput']:.0%} "
        f"in {faults['faulted']['seconds']}s",
    ]
    lines += ["", "Incremental delta-scoring kernel vs per-generation rescoring", ""]
    lines.append(
        f"{'tier':<10} {'GPUs':>5} {'jobs':>5} {'K':>5} "
        f"{'base gen/s':>11} {'incr gen/s':>11} {'incr ns/cand':>13} {'speedup':>8}"
    )
    for tier, row in incremental.items():
        lines.append(
            f"{tier:<10} {row['num_gpus']:>5} {row['num_jobs']:>5} "
            f"{row['population']:>5} {row['baseline_generations_per_sec']:>11,.1f} "
            f"{row['incremental_generations_per_sec']:>11,.1f} "
            f"{row['incremental_ns_per_candidate']:>13,.0f} "
            f"{row['speedup']:>7.1f}x"
        )
    if "1024x1000" not in incremental:
        lines.append(
            "(full 1024-GPU / 1000-job tier skipped; set "
            "REPRO_BENCH_FULL_SCALE=1 to run it)"
        )
    lines += ["", "Hierarchical partitioned ONES at scale (ONES-hier)", ""]
    lines.append(
        f"{'tier':<8} {'GPUs':>5} {'jobs':>5} {'parts':>6} "
        f"{'seconds':>8} {'ev/s':>8} {'wide':>5} {'avg JCT':>9}"
    )
    for tier, row in scale.items():
        lines.append(
            f"{tier:<8} {row['num_gpus']:>5} {row['num_jobs']:>5} "
            f"{row['partitions']:>6} {row['seconds']:>8,.1f} "
            f"{row['events_per_sec']:>8,.1f} {row['wide_placements']:>5} "
            f"{row['average_jct']:>9,.1f}"
        )
    if "full" not in scale:
        lines.append(
            "(full 1024-GPU / 1000-job tier skipped; set "
            "REPRO_BENCH_FULL_SCALE=1 to run it)"
        )
    lines += [
        "",
        f"Trace recorder ({observability['num_gpus']} GPUs, "
        f"{observability['num_jobs']} jobs, ONES-hier): "
        f"dormant overhead {100 * observability['disabled_overhead']:+.1f}% "
        f"({observability['baseline_seconds']}s -> "
        f"{observability['dormant_seconds']}s, identical trajectories); "
        f"tracing on: {observability['trace_records']:,} records "
        f"at {100 * observability['tracing_overhead']:+.1f}%",
    ]
    write_report("perf_scoring", "\n".join(lines))
    record = {
        "scales": results,
        "evolution": evolution,
        "end_to_end": end_to_end,
        "event_loop": event_loop,
        "faults": faults,
        "incremental_scoring": incremental,
        "scale": scale,
        "observability": observability,
    }
    write_perf_record("scoring", record)
    return record


class TestScoringPerf:
    def test_vectorized_scoring_speedup(self):
        results = run()["scales"]
        # The acceptance target: >= 10x on medium-scale population scoring.
        assert results["medium"]["speedup"] >= 10.0
        for row in results.values():
            assert row["table_entries"] <= row["table_capacity"]

    def test_batched_operator_loop_speedup(self):
        record = run()
        # PR 3 acceptance: >= 3x on the generation loop at the paper
        # scale (64 GPUs / 50 jobs / K = 64).
        assert record["evolution"]["paper"]["speedup"] >= 3.0
        # End-to-end at the 64-GPU scale must not regress (trajectory
        # identity is the hard guard, asserted inside the bench itself;
        # the wall-clock gate tolerates machine noise).
        assert record["end_to_end"]["64x40"]["speedup"] >= 0.8

    def test_event_loop_incremental_gpr_speedup(self):
        row = run()["event_loop"]["64x40"]
        # PR 4 acceptance: the incremental-GPR policy doubles end-to-end
        # ONES wall-clock at 64 GPUs / 40 jobs.  The "default" side is
        # the PR 3 trajectory (pinned bit-identical by the parity
        # suites), itself already faster than the PR 3 build — so this
        # in-bench ratio *understates* the speedup vs the true PR 3
        # baseline.  Gated below 2.0 only for machine noise.
        assert row["speedup"] >= 1.7
        # The GPR-refit share must drop measurably.
        assert (
            row["incremental_gpr"]["gpr_refit_share"]
            < 0.5 * row["default"]["gpr_refit_share"]
        )
        # Both runs finish the whole trace.
        assert row["default"]["completed"] == row["num_jobs"]
        assert row["incremental_gpr"]["completed"] == row["num_jobs"]

    def test_incremental_scoring_speedup(self):
        rows = run()["incremental_scoring"]
        # PR 9 acceptance: the delta-scoring kernel at the CI quick tier
        # (256 GPUs / 120 jobs / K = 256) is >= 2x generations/s over
        # full per-generation rescoring, bit-identical (parity asserted
        # inside the bench itself).
        assert rows["256x120"]["speedup"] >= 2.0
        # At the paper scale it must at least not regress.
        assert rows["64x40"]["speedup"] >= 0.9

    def test_hierarchical_scale_budget(self):
        row = run()["scale"]["quick"]
        # The scale-smoke gate: a 256-GPU / 120-job partitioned trace
        # must finish the whole trace inside a generous wall-clock
        # budget (observed ~14 s locally; the bound absorbs CI-runner
        # noise while still catching superlinear regressions).
        assert row["incomplete"] == 0
        assert row["completed"] == row["num_jobs"]
        assert row["partitions"] == 4
        assert row["seconds"] < 180.0

    def test_observability_dormant_overhead(self):
        row = run()["observability"]
        # PR 10 acceptance: shipping the trace-recorder hooks costs the
        # tracing-off event loop <3% at the 256x120 smoke tier (the
        # dormant run has a recorder installed but disabled, so every
        # instrumentation site takes its guard branch; trajectory
        # identity — tracing on AND off — is asserted inside the bench).
        assert row["disabled_overhead"] < 0.03
        # The traced run actually recorded the simulation.
        assert row["trace_records"] > 0
        assert row["trace_records_dropped"] == 0

    def test_fault_subsystem_disabled_overhead(self):
        row = run()["faults"]
        # PR 5 acceptance: shipping the fault subsystem costs the
        # zero-fault event loop <5% (the dormant-config run performs the
        # same work as the no-config run plus the subsystem's empty-state
        # checks; trajectory identity is asserted inside the bench).
        assert row["disabled_overhead"] < 0.05
        # The chaotic run actually exercises recovery and still finishes.
        assert row["faulted"]["completed"] == row["num_jobs"]
        assert row["faulted"]["evictions"] >= 1
        assert 0.0 < row["faulted"]["goodput"] <= 1.0


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2))
