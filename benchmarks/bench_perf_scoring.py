"""Scalar vs vectorised population scoring (the ONES hot path).

The SRUF objective (Eq. 8) is evaluated for every candidate of the
population at every simulator event, so its cost bounds how large a
population (and how busy a cluster) the scheduler can afford.  This
bench scores an identical population through

* the scalar reference path (one Python loop per candidate, one
  throughput lookup per (job, candidate) pair), and
* the vectorised engine (one ``bincount`` + one ``ThroughputTable``
  gather for the whole population),

at every benchmark scale, and writes the ops/sec of both paths to
``BENCH_scoring.json`` so the perf trajectory is machine-readable
across PRs.  Run with ``PYTHONPATH=src python -m
benchmarks.bench_perf_scoring`` or through pytest.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

import numpy as np

from benchmarks._shared import SCALES, SEED, write_perf_record, write_report

from repro.cluster.topology import make_longhorn_cluster
from repro.core.operators import reorder
from repro.core.schedule import IDLE, Schedule
from repro.core.scoring import score_candidates, score_population
from repro.jobs.throughput import ThroughputModel, ThroughputTable

from tests._core_helpers import make_jobs

#: Fraction of GPUs knocked idle per candidate so the workload includes
#: idle genes (the engine must handle them, and real populations do).
IDLE_FRACTION = 0.1


def _scoring_workload(num_gpus: int, num_jobs: int, seed: int):
    """A busy cluster snapshot plus a population of K = num_gpus candidates."""
    jobs = make_jobs(num_jobs)
    for i, job in enumerate(jobs.values()):
        job.start_running(0.0, [i % num_gpus], [64])
        job.advance(1500 * (i + 1), 10.0)
    topology = make_longhorn_cluster(num_gpus)
    model = ThroughputModel(topology)
    limits = {job_id: job.spec.base_batch * 4 for job_id, job in jobs.items()}
    roster = tuple(sorted(jobs))
    rng = np.random.default_rng(seed)
    candidates = []
    for _ in range(num_gpus):  # the paper's K = cluster size
        genome = rng.integers(0, num_jobs, size=num_gpus).astype(np.int64)
        genome[rng.random(num_gpus) < IDLE_FRACTION] = IDLE
        candidates.append(reorder(Schedule(roster=roster, genome=genome)))
    table = ThroughputTable(model, jobs, limits, num_gpus, roster=roster)
    progress = {
        job_id: float(rho)
        for job_id, rho in zip(roster, rng.uniform(0.05, 0.95, size=len(roster)))
    }
    return jobs, candidates, table, progress


def _candidates_per_sec(fn, num_candidates: int, min_time: float = 0.2) -> float:
    """Candidates scored per second (repeat until ``min_time`` elapsed)."""
    fn()  # warm-up: fills the throughput table / caches
    reps = 0
    start = perf_counter()
    elapsed = 0.0
    while elapsed < min_time:
        fn()
        reps += 1
        elapsed = perf_counter() - start
    return reps * num_candidates / elapsed


def run() -> Dict:
    """Benchmark every scale and persist the BENCH_scoring.json record."""
    results: Dict[str, Dict] = {}
    for scale_name, params in SCALES.items():
        num_gpus = int(params["num_gpus"])
        num_jobs = int(params["num_jobs"])
        jobs, candidates, table, progress = _scoring_workload(
            num_gpus, num_jobs, SEED
        )
        scalar_fn = table.as_throughput_fn()

        build_start = perf_counter()
        scalar_scores = score_candidates(candidates, jobs, progress, scalar_fn)
        table_build_seconds = perf_counter() - build_start

        vector_scores = score_population(candidates, jobs, progress, table)
        if not np.array_equal(scalar_scores, vector_scores):
            raise AssertionError("scalar and vectorised scores disagree")

        scalar_ops = _candidates_per_sec(
            lambda: score_candidates(candidates, jobs, progress, scalar_fn),
            len(candidates),
        )
        vector_ops = _candidates_per_sec(
            lambda: score_population(candidates, jobs, progress, table),
            len(candidates),
        )
        results[scale_name] = {
            "num_gpus": num_gpus,
            "num_jobs": num_jobs,
            "population": len(candidates),
            "scalar_candidates_per_sec": round(scalar_ops, 1),
            "vectorized_candidates_per_sec": round(vector_ops, 1),
            "speedup": round(vector_ops / scalar_ops, 2),
            "table_entries": table.filled_entries,
            "table_capacity": table.capacity,
            "first_scoring_pass_seconds": round(table_build_seconds, 6),
        }

    lines = ["Population scoring: scalar reference vs vectorised engine", ""]
    lines.append(
        f"{'scale':<8} {'GPUs':>5} {'jobs':>5} {'K':>4} "
        f"{'scalar cand/s':>14} {'vector cand/s':>14} {'speedup':>8}"
    )
    for scale_name, row in results.items():
        lines.append(
            f"{scale_name:<8} {row['num_gpus']:>5} {row['num_jobs']:>5} "
            f"{row['population']:>4} {row['scalar_candidates_per_sec']:>14,.0f} "
            f"{row['vectorized_candidates_per_sec']:>14,.0f} "
            f"{row['speedup']:>7.1f}x"
        )
    write_report("perf_scoring", "\n".join(lines))
    write_perf_record("scoring", {"scales": results})
    return results


class TestScoringPerf:
    def test_vectorized_scoring_speedup(self):
        results = run()
        # The acceptance target: >= 10x on medium-scale population scoring.
        assert results["medium"]["speedup"] >= 10.0
        for row in results.values():
            assert row["table_entries"] <= row["table_capacity"]


if __name__ == "__main__":
    for name, row in run().items():
        print(name, row)
