"""repro — a reproduction of ONES (SC'21).

*Online Evolutionary Batch Size Orchestration for Scheduling Deep
Learning Workloads in GPU Clusters* (Bian, Li, Wang, You — SC 2021).

The package layers, bottom-up:

* :mod:`repro.utils` — RNG, units, validation, summary statistics.
* :mod:`repro.cluster` — the simulated GPU cluster (devices, topology,
  allocations, events).
* :mod:`repro.jobs` — analytic throughput/convergence models of DL
  training jobs and their runtime state.
* :mod:`repro.workload` — the Table-2 workload catalogue and trace
  generation.
* :mod:`repro.prediction` — the online progress predictor (Beta
  distributions over training progress, GPR / Bayesian-linear backends).
* :mod:`repro.scaling` — elastic batch-size scaling: protocol state
  machines and the overhead model.
* :mod:`repro.core` — ONES itself: schedule genomes, SRUF scoring,
  batch-size limits, evolution operators and the scheduler.
* :mod:`repro.baselines` — DRL, Tiresias, Optimus (and reference FIFO /
  SRTF policies) behind a common scheduler interface.
* :mod:`repro.sim` — the discrete-event cluster simulator.
* :mod:`repro.analysis` — metrics, Wilcoxon tests, text reporting.
* :mod:`repro.experiments` — runners and figure/table generators.

Quickstart
----------
>>> from repro.experiments import ExperimentConfig, run_comparison
>>> config = ExperimentConfig.small(num_gpus=16, num_jobs=8)
>>> comparison = run_comparison(config)          # doctest: +SKIP
>>> comparison.averages("jct")                   # doctest: +SKIP
"""

__version__ = "1.0.0"

from repro.cluster.topology import ClusterTopology, make_longhorn_cluster
from repro.core.ones_scheduler import ONESConfig, ONESScheduler
from repro.baselines import (
    DRLScheduler,
    FIFOScheduler,
    OptimusScheduler,
    SRTFScheduler,
    TiresiasScheduler,
)
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.workload.trace import TraceConfig, TraceGenerator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison, run_scalability_sweep, run_single

__all__ = [
    "__version__",
    "ClusterTopology",
    "make_longhorn_cluster",
    "ONESConfig",
    "ONESScheduler",
    "DRLScheduler",
    "FIFOScheduler",
    "OptimusScheduler",
    "SRTFScheduler",
    "TiresiasScheduler",
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "TraceConfig",
    "TraceGenerator",
    "ExperimentConfig",
    "run_comparison",
    "run_scalability_sweep",
    "run_single",
]
