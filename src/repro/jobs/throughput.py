"""Data-parallel training throughput model.

The training speed of a distributed DL job is the quantity every
scheduler in the paper reasons about.  A synchronous data-parallel step
costs

``step time = max_i(compute time of worker i) + all-reduce time``

* Per-worker compute time grows with the local batch but the GPU is only
  efficient once the local batch is large enough
  (:meth:`repro.cluster.devices.GPUSpec.effective_flops`).
* The all-reduce follows the standard ring cost model:
  ``2 (c-1)/c · gradient_bytes / bottleneck_bandwidth`` plus per-hop
  latency, where the bottleneck bandwidth depends on whether the ring
  stays inside one server (NVLink) or crosses the network (InfiniBand).

Together these produce the behaviour of Fig. 2: with a *fixed* global
batch, adding workers shrinks the local batch (losing GPU efficiency)
while the communication term grows, so throughput peaks at a small
worker count and then degrades; with an *elastic* global batch the local
batch stays large and throughput keeps improving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Callable,
    Hashable,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cluster.devices import GPUSpec
from repro.cluster.topology import ClusterTopology
from repro.jobs.model_zoo import ModelSpec
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class StepTimeBreakdown:
    """Decomposition of one synchronous training step (seconds)."""

    compute_time: float
    communication_time: float

    @property
    def total(self) -> float:
        """End-to-end step time."""
        return self.compute_time + self.communication_time


class ThroughputModel:
    """Analytic throughput model for synchronous data-parallel training.

    Parameters
    ----------
    topology:
        The cluster the job runs on; provides per-GPU specs and the
        bandwidth of the all-reduce ring for a given placement.
    allreduce_efficiency:
        Fraction of the theoretical ring bandwidth NCCL achieves in
        practice (protocol overheads, imperfect overlap).
    """

    def __init__(
        self, topology: ClusterTopology, allreduce_efficiency: float = 0.7
    ) -> None:
        check_positive(allreduce_efficiency, "allreduce_efficiency")
        if allreduce_efficiency > 1.0:
            raise ValueError("allreduce_efficiency must be <= 1")
        self._topology = topology
        self._allreduce_efficiency = float(allreduce_efficiency)

    @property
    def topology(self) -> ClusterTopology:
        """The cluster this model evaluates placements against."""
        return self._topology

    @property
    def allreduce_efficiency(self) -> float:
        """The achieved fraction of theoretical ring bandwidth."""
        return self._allreduce_efficiency

    # -- elementary costs ----------------------------------------------------------

    def compute_time(
        self, model: ModelSpec, local_batch: int, gpu: Optional[GPUSpec] = None
    ) -> float:
        """Forward+backward time of one worker for ``local_batch`` samples."""
        if local_batch <= 0:
            return 0.0
        gpu = gpu or self._topology.gpu_spec
        flops = model.flops_per_sample * local_batch
        return flops / gpu.effective_flops(local_batch) + gpu.kernel_overhead

    def allreduce_time(self, model: ModelSpec, gpu_ids: Sequence[int]) -> float:
        """Ring all-reduce time of one gradient over ``gpu_ids``."""
        gpu_ids = list(gpu_ids)
        num_workers = len(gpu_ids)
        if num_workers <= 1:
            return 0.0
        bandwidth = self._topology.ring_bandwidth(gpu_ids) * self._allreduce_efficiency
        latency = self._topology.ring_latency(gpu_ids)
        volume_term = 2.0 * (num_workers - 1) / num_workers * model.gradient_bytes
        return volume_term / bandwidth + 2.0 * (num_workers - 1) * latency

    # -- step time / throughput -----------------------------------------------------

    def step_time(
        self,
        model: ModelSpec,
        local_batches: Sequence[int],
        gpu_ids: Sequence[int],
    ) -> StepTimeBreakdown:
        """Time of one synchronous step for the given worker configuration.

        ``local_batches[i]`` is the batch handled by the worker on
        ``gpu_ids[i]``; the slowest worker gates the step (stragglers).
        """
        if len(local_batches) != len(gpu_ids):
            raise ValueError(
                f"local_batches ({len(local_batches)}) and gpu_ids ({len(gpu_ids)}) "
                "must have the same length"
            )
        if len(gpu_ids) == 0 or sum(local_batches) <= 0:
            return StepTimeBreakdown(0.0, 0.0)
        compute = max(
            self.compute_time(model, b, self._topology.gpu(int(g)).spec)
            for b, g in zip(local_batches, gpu_ids)
        )
        comm = self.allreduce_time(model, gpu_ids)
        return StepTimeBreakdown(compute_time=compute, communication_time=comm)

    def throughput(
        self,
        model: ModelSpec,
        local_batches: Sequence[int],
        gpu_ids: Sequence[int],
    ) -> float:
        """Global training throughput in samples/second for a configuration."""
        breakdown = self.step_time(model, local_batches, gpu_ids)
        global_batch = float(sum(local_batches))
        if global_batch <= 0 or breakdown.total <= 0:
            return 0.0
        return global_batch / breakdown.total

    def throughput_even(
        self, model: ModelSpec, global_batch: int, gpu_ids: Sequence[int]
    ) -> float:
        """Throughput when ``global_batch`` is split as evenly as possible."""
        gpu_ids = list(gpu_ids)
        if not gpu_ids or global_batch <= 0:
            return 0.0
        local = split_batch(global_batch, len(gpu_ids))
        return self.throughput(model, local, gpu_ids)

    # -- derived helpers ---------------------------------------------------------------

    def epoch_time(
        self,
        model: ModelSpec,
        dataset_size: int,
        local_batches: Sequence[int],
        gpu_ids: Sequence[int],
    ) -> float:
        """Wall-clock time of one epoch over ``dataset_size`` samples."""
        rate = self.throughput(model, local_batches, gpu_ids)
        if rate <= 0:
            return float("inf")
        return dataset_size / rate

    def scaling_curve(
        self,
        model: ModelSpec,
        worker_counts: Sequence[int],
        global_batch: Optional[int] = None,
        local_batch: Optional[int] = None,
    ) -> np.ndarray:
        """Throughput across worker counts (Fig. 2 generator).

        Exactly one of ``global_batch`` (fixed-global-batch curve) or
        ``local_batch`` (elastic curve: global batch grows with workers)
        must be provided.  Workers are packed onto GPUs 0..c-1, matching
        the locality-aware placement of a well-packed job.
        """
        if (global_batch is None) == (local_batch is None):
            raise ValueError("provide exactly one of global_batch / local_batch")
        rates = []
        for count in worker_counts:
            count = int(count)
            if count < 1:
                raise ValueError("worker counts must be >= 1")
            gpu_ids = list(range(count))
            if global_batch is not None:
                rates.append(self.throughput_even(model, int(global_batch), gpu_ids))
            else:
                rates.append(
                    self.throughput(model, [int(local_batch)] * count, gpu_ids)
                )
        return np.asarray(rates, dtype=float)


def split_batch(global_batch: int, num_workers: int) -> list[int]:
    """Split ``global_batch`` across ``num_workers`` as evenly as possible.

    The first ``global_batch % num_workers`` workers receive one extra
    sample.  Every worker receives at least 0; callers that require ≥1
    sample per worker should not ask for more workers than samples.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if global_batch < 0:
        raise ValueError(f"global_batch must be >= 0, got {global_batch}")
    base, extra = divmod(int(global_batch), num_workers)
    return [base + (1 if i < extra else 0) for i in range(num_workers)]


def derive_global_batch(
    count: int, max_local_batch: int, limit: int, dataset_size: int
) -> int:
    """Derived global batch ``B_j`` of a job holding ``count`` GPUs (Eq. 1–2).

    The job uses the largest batch its limit ``R_j`` (and device memory)
    allows for the GPUs it holds, never less than one sample per worker.
    This is the single definition shared by :class:`~repro.core.schedule.Schedule`
    and :class:`ThroughputTable`.
    """
    if count <= 0:
        return 0
    natural = count * int(max_local_batch)
    batch = min(natural, int(limit), int(dataset_size))
    return max(batch, count)


class BoundedMemo(MutableMapping):
    """A small LRU-evicting mapping used to bound throughput memoisation.

    The ONES scheduler previously memoised candidate throughputs in a
    plain dict that grew for the lifetime of a simulation; this mapping
    keeps the most recently used ``max_entries`` only.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        check_positive_int(max_entries, "max_entries")
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[Hashable, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: Hashable) -> bool:
        # Membership tests neither count as hits nor refresh recency.
        return key in self._data

    def __getitem__(self, key: Hashable) -> float:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            raise
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: Hashable, value: float) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)

    def __delitem__(self, key: Hashable) -> None:
        del self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default=None):
        try:
            return self[key]
        except KeyError:
            return default


class ThroughputTable:
    """Per-invocation lookup table of job throughput by GPU count.

    Scoring (Eq. 8) evaluates the same jobs at the same handful of GPU
    counts for every candidate of every evolution iteration, so instead
    of one analytic-model call per (job, candidate) pair the table keeps
    one row per job with ``X_j(c)`` for ``c = 0..num_gpus``:

    * The global batch at count ``c`` is fully determined by the job's
      batch-size limit ``R_j`` (see :func:`derive_global_batch`), so a
      row is valid for the whole scheduler invocation.
    * On a homogeneous star-interconnect cluster the placement affects
      throughput only through whether the ring stays inside one server,
      so each row keeps two planes — intra-node and cross-node — each
      evaluated at a canonical representative placement.  Entries are
      therefore exactly the analytic model's value for *any* placement
      of that (count, locality) class; topologies with non-uniform
      inter-node links (subclassed :class:`ClusterTopology`) would make
      this an approximation.

    Entries are filled lazily — only the (job, count, locality) triples
    scoring actually visits are evaluated — and the table is
    hard-bounded at ``num_jobs × (num_gpus + 1) × 2`` entries, which is
    what lets it replace the scheduler's previous unbounded memoisation
    dict.  An optional shared ``memo`` (see :class:`BoundedMemo`)
    carries model evaluations across invocations, keyed by
    ``(model, global batch, count, crosses nodes)``.

    Every table carries a monotonically-increasing :attr:`version`
    stamped at construction (and re-stamped by :meth:`invalidate`).
    Downstream caches keyed on a table's values — the scheduler-level
    table reuse in :class:`~repro.core.ones_scheduler.ONESScheduler`,
    the delta-scoring engine's attribution counters — compare versions
    instead of array contents: a different version means "treat every
    cached row as dirty".
    """

    _version_counter = 0

    @classmethod
    def _next_version(cls) -> int:
        ThroughputTable._version_counter += 1
        return ThroughputTable._version_counter

    def __init__(
        self,
        model: ThroughputModel,
        jobs: Mapping[str, "object"],
        limits: Mapping[str, int],
        num_gpus: int,
        roster: Optional[Sequence[str]] = None,
        memo: Optional[MutableMapping] = None,
    ) -> None:
        check_positive_int(num_gpus, "num_gpus")
        self._model = model
        self._roster: Tuple[str, ...] = (
            tuple(roster) if roster is not None else tuple(sorted(jobs))
        )
        missing = [job_id for job_id in self._roster if job_id not in jobs]
        if missing:
            raise KeyError(f"roster references unknown jobs: {missing}")
        self._jobs = {job_id: jobs[job_id] for job_id in self._roster}
        self._limits = {
            job_id: int(limits.get(job_id, self._jobs[job_id].spec.base_batch))
            for job_id in self._roster
        }
        self._num_gpus = int(num_gpus)
        self._index = {job_id: i for i, job_id in enumerate(self._roster)}
        self._memo = memo
        topology = model.topology
        self._gpus_per_node = int(topology.gpus_per_node)
        self._node_of = np.asarray(
            topology.node_of(np.arange(self._num_gpus)), dtype=np.int64
        )
        self._multi_node_cluster = bool(self._node_of.size) and (
            int(self._node_of[-1]) > 0
        )
        # NaN marks a (job, count, locality) triple that has not been
        # evaluated yet; zero GPUs always means zero throughput.
        self._table = np.full((len(self._roster), self._num_gpus + 1, 2), np.nan)
        if self._table.size:
            self._table[:, 0, :] = 0.0
        self.model_calls = 0
        self._version = self._next_version()

    @classmethod
    def from_matrix(
        cls, roster: Sequence[str], matrix: np.ndarray
    ) -> "ThroughputTable":
        """Build a fully-specified table from a raw array — for tests and
        synthetic what-if studies (no model calls).

        ``matrix`` is ``(num_jobs, num_gpus+1)`` (the same curve for both
        locality planes) or ``(num_jobs, num_gpus+1, 2)``.
        """
        matrix = np.asarray(matrix, dtype=float)
        roster = tuple(roster)
        if matrix.ndim == 2:
            matrix = np.repeat(matrix[:, :, None], 2, axis=2)
        if matrix.ndim != 3 or matrix.shape[0] != len(roster) or matrix.shape[2] != 2:
            raise ValueError(
                f"matrix must have shape (num_jobs={len(roster)}, num_gpus+1[, 2]), "
                f"got {matrix.shape}"
            )
        table = cls.__new__(cls)
        table._model = None
        table._jobs = {}
        table._limits = {}
        table._memo = None
        table._roster = roster
        table._index = {job_id: i for i, job_id in enumerate(roster)}
        table._num_gpus = matrix.shape[1] - 1
        table._gpus_per_node = max(1, table._num_gpus)
        table._node_of = np.zeros(table._num_gpus, dtype=np.int64)
        table._multi_node_cluster = False
        table._table = matrix.copy()
        table.model_calls = 0
        table._version = cls._next_version()
        return table

    # -- introspection ------------------------------------------------------------

    @property
    def roster(self) -> Tuple[str, ...]:
        """Job ids the table rows correspond to."""
        return self._roster

    @property
    def num_gpus(self) -> int:
        """Cluster size the table covers (columns are counts 0..num_gpus)."""
        return self._num_gpus

    @property
    def node_of(self) -> np.ndarray:
        """Vectorised GPU-id → node-id map of the underlying topology."""
        return self._node_of

    @property
    def version(self) -> int:
        """Monotone cache-invalidation stamp (see the class docstring)."""
        return self._version

    def invalidate(self) -> None:
        """Re-stamp :attr:`version`, marking every dependent cache dirty.

        The table's own entries stay (they are still correct for its
        inputs); this exists for callers that mutated one of those
        inputs in place — e.g. a batch-size limit — while holding onto
        the table instance.
        """
        self._version = self._next_version()

    @property
    def capacity(self) -> int:
        """Hard bound on the number of entries the table can ever hold."""
        return len(self._roster) * (self._num_gpus + 1) * 2

    @property
    def filled_entries(self) -> int:
        """Entries evaluated so far (always ``<= capacity``)."""
        return int(np.count_nonzero(~np.isnan(self._table)))

    # -- evaluation ---------------------------------------------------------------

    def _canonical_placement(self, count: int, crosses: bool) -> Sequence[int]:
        """A representative placement of ``count`` GPUs for a locality class."""
        if crosses and self._multi_node_cluster and count > 1:
            if count > self._gpus_per_node:
                return range(count)  # packed already spans servers
            # count-1 workers on the first server, one on the second.
            return list(range(count - 1)) + [self._gpus_per_node]
        return range(count)

    def _default_crosses(self, count: int) -> bool:
        """Locality of the canonical *packed* placement of ``count`` GPUs."""
        return count > self._gpus_per_node

    def _compute(self, job_idx: int, count: int, crosses: bool) -> float:
        if self._model is None:
            raise RuntimeError(
                "this table was built from a raw matrix and cannot evaluate "
                f"new entries (job {self._roster[job_idx]!r}, count {count})"
            )
        job = self._jobs[self._roster[job_idx]]
        global_batch = derive_global_batch(
            count, job.spec.max_local_batch, self._limits[self._roster[job_idx]],
            job.dataset_size,
        )
        key = (job.spec.model.name, global_batch, count, bool(crosses))
        if self._memo is not None:
            cached = self._memo.get(key)
            if cached is not None:
                return float(cached)
        value = self._model.throughput_even(
            job.spec.model, global_batch, self._canonical_placement(count, crosses)
        )
        self.model_calls += 1
        if self._memo is not None:
            self._memo[key] = value
        return float(value)

    def throughput(
        self, job_id: str, count: int, crosses_nodes: Optional[bool] = None
    ) -> float:
        """``X_j(c)``: throughput of ``job_id`` on ``count`` GPUs.

        ``crosses_nodes`` selects the locality plane; ``None`` assumes
        the canonical packed placement (crosses servers only when the
        count exceeds one server).
        """
        if count <= 0:
            return 0.0
        if count > self._num_gpus:
            raise ValueError(
                f"count {count} exceeds cluster size {self._num_gpus}"
            )
        if crosses_nodes is None:
            crosses_nodes = self._default_crosses(count)
        idx = self._index[job_id]
        plane = int(bool(crosses_nodes))
        value = self._table[idx, count, plane]
        if np.isnan(value):
            value = self._compute(idx, count, bool(crosses_nodes))
            self._table[idx, count, plane] = value
        return float(value)

    def lookup(
        self, counts: np.ndarray, crosses_nodes: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorised ``X_j(c)`` gather for a population's count matrix.

        ``counts`` has shape ``(K, num_jobs)`` with ``counts[k, j]`` the
        GPU count candidate ``k`` gives roster job ``j``;
        ``crosses_nodes`` is an equally-shaped boolean matrix saying
        whether that placement spans servers (``None`` assumes packed
        placements).  Missing table entries are filled on demand
        (distinct triples only) before the gather, so repeated lookups
        across evolution iterations are pure array indexing.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2 or counts.shape[1] != len(self._roster):
            raise ValueError(
                f"counts must have shape (K, {len(self._roster)}), got {counts.shape}"
            )
        if counts.size == 0:
            return np.zeros(counts.shape, dtype=float)
        if crosses_nodes is None:
            planes = (counts > self._gpus_per_node).astype(np.int64)
        else:
            planes = np.asarray(crosses_nodes).astype(np.int64)
            if planes.shape != counts.shape:
                raise ValueError(
                    f"crosses_nodes shape {planes.shape} != counts shape {counts.shape}"
                )
        job_idx = np.broadcast_to(np.arange(counts.shape[1]), counts.shape)
        values = self._table[job_idx, counts, planes]
        nan_mask = np.isnan(values)
        if nan_mask.any():
            triples = np.unique(
                np.stack(
                    [job_idx[nan_mask], counts[nan_mask], planes[nan_mask]], axis=1
                ),
                axis=0,
            )
            for j, c, p in triples:
                self._table[j, c, p] = self._compute(int(j), int(c), bool(p))
            values = self._table[job_idx, counts, planes]
        return values

    def row(self, job_id: str) -> np.ndarray:
        """The packed curve ``X_j(0..num_gpus)`` of one job (fills it)."""
        return np.array(
            [0.0]
            + [
                self.throughput(job_id, count)
                for count in range(1, self._num_gpus + 1)
            ]
        )

    def matrix(self) -> np.ndarray:
        """The fully-built ``(num_jobs, num_gpus + 1, 2)`` table."""
        for idx in range(len(self._roster)):
            for count in range(1, self._num_gpus + 1):
                for plane in (0, 1):
                    if np.isnan(self._table[idx, count, plane]):
                        self._table[idx, count, plane] = self._compute(
                            idx, count, bool(plane)
                        )
        return self._table.copy()

    # -- placement queries ---------------------------------------------------------

    def crosses_nodes_of(self, gpu_ids: Sequence[int]) -> bool:
        """Whether a concrete placement spans more than one server."""
        gpu_ids = np.asarray(list(gpu_ids), dtype=np.int64)
        if gpu_ids.size <= 1:
            return False
        nodes = self._node_of[gpu_ids]
        return bool((nodes != nodes[0]).any())

    # -- adapters -----------------------------------------------------------------

    def as_throughput_fn(self) -> Callable:
        """A ``(job, schedule) -> samples/s`` adapter for the scalar path.

        Looks up the plane matching the schedule's actual placement
        locality.  Jobs outside the table's roster (or with no GPUs)
        report zero throughput, matching the previous scheduler
        behaviour.
        """

        def throughput(job, schedule) -> float:
            count = schedule.gpu_count(job.job_id)
            if count == 0 or job.job_id not in self._index:
                return 0.0
            crosses = self.crosses_nodes_of(schedule.gpus_of(job.job_id))
            return self.throughput(job.job_id, count, crosses)

        return throughput
