"""Data-parallel training throughput model.

The training speed of a distributed DL job is the quantity every
scheduler in the paper reasons about.  A synchronous data-parallel step
costs

``step time = max_i(compute time of worker i) + all-reduce time``

* Per-worker compute time grows with the local batch but the GPU is only
  efficient once the local batch is large enough
  (:meth:`repro.cluster.devices.GPUSpec.effective_flops`).
* The all-reduce follows the standard ring cost model:
  ``2 (c-1)/c · gradient_bytes / bottleneck_bandwidth`` plus per-hop
  latency, where the bottleneck bandwidth depends on whether the ring
  stays inside one server (NVLink) or crosses the network (InfiniBand).

Together these produce the behaviour of Fig. 2: with a *fixed* global
batch, adding workers shrinks the local batch (losing GPU efficiency)
while the communication term grows, so throughput peaks at a small
worker count and then degrades; with an *elastic* global batch the local
batch stays large and throughput keeps improving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.devices import GPUSpec
from repro.cluster.topology import ClusterTopology
from repro.jobs.model_zoo import ModelSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StepTimeBreakdown:
    """Decomposition of one synchronous training step (seconds)."""

    compute_time: float
    communication_time: float

    @property
    def total(self) -> float:
        """End-to-end step time."""
        return self.compute_time + self.communication_time


class ThroughputModel:
    """Analytic throughput model for synchronous data-parallel training.

    Parameters
    ----------
    topology:
        The cluster the job runs on; provides per-GPU specs and the
        bandwidth of the all-reduce ring for a given placement.
    allreduce_efficiency:
        Fraction of the theoretical ring bandwidth NCCL achieves in
        practice (protocol overheads, imperfect overlap).
    """

    def __init__(
        self, topology: ClusterTopology, allreduce_efficiency: float = 0.7
    ) -> None:
        check_positive(allreduce_efficiency, "allreduce_efficiency")
        if allreduce_efficiency > 1.0:
            raise ValueError("allreduce_efficiency must be <= 1")
        self._topology = topology
        self._allreduce_efficiency = float(allreduce_efficiency)

    # -- elementary costs ----------------------------------------------------------

    def compute_time(
        self, model: ModelSpec, local_batch: int, gpu: Optional[GPUSpec] = None
    ) -> float:
        """Forward+backward time of one worker for ``local_batch`` samples."""
        if local_batch <= 0:
            return 0.0
        gpu = gpu or self._topology.gpu_spec
        flops = model.flops_per_sample * local_batch
        return flops / gpu.effective_flops(local_batch) + gpu.kernel_overhead

    def allreduce_time(self, model: ModelSpec, gpu_ids: Sequence[int]) -> float:
        """Ring all-reduce time of one gradient over ``gpu_ids``."""
        gpu_ids = list(gpu_ids)
        num_workers = len(gpu_ids)
        if num_workers <= 1:
            return 0.0
        bandwidth = self._topology.ring_bandwidth(gpu_ids) * self._allreduce_efficiency
        latency = self._topology.ring_latency(gpu_ids)
        volume_term = 2.0 * (num_workers - 1) / num_workers * model.gradient_bytes
        return volume_term / bandwidth + 2.0 * (num_workers - 1) * latency

    # -- step time / throughput -----------------------------------------------------

    def step_time(
        self,
        model: ModelSpec,
        local_batches: Sequence[int],
        gpu_ids: Sequence[int],
    ) -> StepTimeBreakdown:
        """Time of one synchronous step for the given worker configuration.

        ``local_batches[i]`` is the batch handled by the worker on
        ``gpu_ids[i]``; the slowest worker gates the step (stragglers).
        """
        if len(local_batches) != len(gpu_ids):
            raise ValueError(
                f"local_batches ({len(local_batches)}) and gpu_ids ({len(gpu_ids)}) "
                "must have the same length"
            )
        if len(gpu_ids) == 0 or sum(local_batches) <= 0:
            return StepTimeBreakdown(0.0, 0.0)
        compute = max(
            self.compute_time(model, b, self._topology.gpu(int(g)).spec)
            for b, g in zip(local_batches, gpu_ids)
        )
        comm = self.allreduce_time(model, gpu_ids)
        return StepTimeBreakdown(compute_time=compute, communication_time=comm)

    def throughput(
        self,
        model: ModelSpec,
        local_batches: Sequence[int],
        gpu_ids: Sequence[int],
    ) -> float:
        """Global training throughput in samples/second for a configuration."""
        breakdown = self.step_time(model, local_batches, gpu_ids)
        global_batch = float(sum(local_batches))
        if global_batch <= 0 or breakdown.total <= 0:
            return 0.0
        return global_batch / breakdown.total

    def throughput_even(
        self, model: ModelSpec, global_batch: int, gpu_ids: Sequence[int]
    ) -> float:
        """Throughput when ``global_batch`` is split as evenly as possible."""
        gpu_ids = list(gpu_ids)
        if not gpu_ids or global_batch <= 0:
            return 0.0
        local = split_batch(global_batch, len(gpu_ids))
        return self.throughput(model, local, gpu_ids)

    # -- derived helpers ---------------------------------------------------------------

    def epoch_time(
        self,
        model: ModelSpec,
        dataset_size: int,
        local_batches: Sequence[int],
        gpu_ids: Sequence[int],
    ) -> float:
        """Wall-clock time of one epoch over ``dataset_size`` samples."""
        rate = self.throughput(model, local_batches, gpu_ids)
        if rate <= 0:
            return float("inf")
        return dataset_size / rate

    def scaling_curve(
        self,
        model: ModelSpec,
        worker_counts: Sequence[int],
        global_batch: Optional[int] = None,
        local_batch: Optional[int] = None,
    ) -> np.ndarray:
        """Throughput across worker counts (Fig. 2 generator).

        Exactly one of ``global_batch`` (fixed-global-batch curve) or
        ``local_batch`` (elastic curve: global batch grows with workers)
        must be provided.  Workers are packed onto GPUs 0..c-1, matching
        the locality-aware placement of a well-packed job.
        """
        if (global_batch is None) == (local_batch is None):
            raise ValueError("provide exactly one of global_batch / local_batch")
        rates = []
        for count in worker_counts:
            count = int(count)
            if count < 1:
                raise ValueError("worker counts must be >= 1")
            gpu_ids = list(range(count))
            if global_batch is not None:
                rates.append(self.throughput_even(model, int(global_batch), gpu_ids))
            else:
                rates.append(
                    self.throughput(model, [int(local_batch)] * count, gpu_ids)
                )
        return np.asarray(rates, dtype=float)


def split_batch(global_batch: int, num_workers: int) -> list[int]:
    """Split ``global_batch`` across ``num_workers`` as evenly as possible.

    The first ``global_batch % num_workers`` workers receive one extra
    sample.  Every worker receives at least 0; callers that require ≥1
    sample per worker should not ask for more workers than samples.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if global_batch < 0:
        raise ValueError(f"global_batch must be >= 0, got {global_batch}")
    base, extra = divmod(int(global_batch), num_workers)
    return [base + (1 if i < extra else 0) for i in range(num_workers)]
