"""Convergence model: how batch size affects training progress.

The scheduler-visible consequences of batch-size choices are:

1. **Large batches converge slower per epoch** (Fig. 3): with a fixed
   local batch per GPU, adding GPUs inflates the global batch and the
   same number of epochs yields lower accuracy.  With the linear
   learning-rate scaling rule the penalty shrinks but does not vanish
   beyond a critical batch size (Hoffer et al., Keskar et al.).
2. **Abrupt batch-size jumps spike the loss** (Fig. 13): jumping the
   batch from 256 to 4096 in one re-configuration injects noise into the
   gradient/momentum state and costs several epochs of progress.
   Gradual (≤ one doubling per epoch) growth avoids this (Fig. 14),
   which is why ONES bounds each scale-up to a doubling of ``R_j``.

We model a job's learning state with a scalar *effective epoch* count
``e``.  Training for one real epoch at global batch ``B`` advances
``e`` by ``1 / penalty(B)`` where ``penalty(B) ≥ 1`` grows with
``log2(B / B_crit)`` above a critical batch size (and much faster when
the learning rate is *not* re-scaled).  Validation accuracy and training
loss are smooth saturating functions of ``e``; an abrupt batch jump adds
a transient loss bump and sets ``e`` back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class ConvergenceProfile:
    """Per-job convergence characteristics.

    Parameters
    ----------
    base_epochs_to_target:
        Effective epochs needed to reach the target validation accuracy
        when trained at the reference batch size.
    target_accuracy:
        Validation accuracy at which the job's stopping criterion starts
        counting (§4.1: 10 consecutive epochs above target).
    max_accuracy:
        Asymptotic accuracy of the model/dataset pair; must exceed
        ``target_accuracy``.
    initial_loss / final_loss:
        End points of the training-loss curve.
    reference_batch:
        Batch size the job was tuned for (``b_j`` submitted by the user).
    critical_batch:
        Batch size beyond which convergence degrades even with LR scaling.
    penalty_per_doubling:
        Additional epochs (fractional) per doubling beyond the critical
        batch when the LR is linearly re-scaled.
    unscaled_penalty_per_doubling:
        The (much larger) penalty when the LR is left at its base value —
        this is the regime of Fig. 3.
    loss_spike_per_doubling:
        Loss increase injected per doubling beyond a safe 2× jump when the
        batch size changes abruptly (Fig. 13).
    spike_recovery_epochs:
        Epochs over which an injected loss spike decays.
    """

    base_epochs_to_target: float
    target_accuracy: float
    max_accuracy: float
    initial_loss: float
    final_loss: float
    reference_batch: int
    critical_batch: int
    penalty_per_doubling: float = 0.12
    unscaled_penalty_per_doubling: float = 0.55
    loss_spike_per_doubling: float = 0.35
    spike_recovery_epochs: float = 8.0

    def __post_init__(self) -> None:
        check_positive(self.base_epochs_to_target, "base_epochs_to_target")
        check_in_range(self.target_accuracy, "target_accuracy", 0.0, 1.0, inclusive=False)
        check_in_range(self.max_accuracy, "max_accuracy", 0.0, 1.0)
        if self.max_accuracy <= self.target_accuracy:
            raise ValueError(
                f"max_accuracy ({self.max_accuracy}) must exceed "
                f"target_accuracy ({self.target_accuracy})"
            )
        check_positive(self.initial_loss, "initial_loss")
        check_non_negative(self.final_loss, "final_loss")
        if self.initial_loss <= self.final_loss:
            raise ValueError("initial_loss must exceed final_loss")
        check_positive(self.reference_batch, "reference_batch")
        check_positive(self.critical_batch, "critical_batch")
        check_non_negative(self.penalty_per_doubling, "penalty_per_doubling")
        check_non_negative(
            self.unscaled_penalty_per_doubling, "unscaled_penalty_per_doubling"
        )
        check_non_negative(self.loss_spike_per_doubling, "loss_spike_per_doubling")
        check_positive(self.spike_recovery_epochs, "spike_recovery_epochs")

    # -- time constants of the saturating curves --------------------------------------

    @property
    def _accuracy_tau(self) -> float:
        """Exponential time constant so accuracy hits target at base epochs."""
        ratio = self.max_accuracy / (self.max_accuracy - self.target_accuracy)
        return self.base_epochs_to_target / math.log(ratio)

    @property
    def _loss_tau(self) -> float:
        """Loss decays a little faster than accuracy rises."""
        return self._accuracy_tau * 0.8

    # -- core model ----------------------------------------------------------------------

    def epoch_penalty(self, global_batch: int, lr_scaled: bool = True) -> float:
        """Multiplier (≥ 1) on the epochs needed when training at ``global_batch``.

        With the linear LR-scaling rule, batches up to the critical batch
        size converge in the same number of epochs; beyond it every
        doubling costs ``penalty_per_doubling`` extra epochs.  Without LR
        re-scaling (the fixed-local-batch regime of Fig. 3), any growth
        beyond the batch size the job was tuned for degrades convergence,
        and much faster.
        """
        if global_batch <= 0:
            raise ValueError(f"global_batch must be >= 1, got {global_batch}")
        if lr_scaled:
            threshold = self.critical_batch
            rate = self.penalty_per_doubling
        else:
            threshold = self.reference_batch
            rate = self.unscaled_penalty_per_doubling
        excess_doublings = max(0.0, math.log2(global_batch / threshold))
        return 1.0 + rate * excess_doublings

    def epoch_progress(self, global_batch: int, lr_scaled: bool = True) -> float:
        """Effective-epoch gain from one real epoch at ``global_batch`` (≤ 1)."""
        return 1.0 / self.epoch_penalty(global_batch, lr_scaled)

    def accuracy_at(self, effective_epochs: float) -> float:
        """Validation accuracy after ``effective_epochs`` of progress."""
        check_non_negative(effective_epochs, "effective_epochs")
        return self.max_accuracy * (1.0 - math.exp(-effective_epochs / self._accuracy_tau))

    def loss_at(self, effective_epochs: float, spike: float = 0.0) -> float:
        """Training loss after ``effective_epochs``, plus any active spike."""
        check_non_negative(effective_epochs, "effective_epochs")
        base = self.final_loss + (self.initial_loss - self.final_loss) * math.exp(
            -effective_epochs / self._loss_tau
        )
        return base + max(0.0, spike)

    def abrupt_scaling_spike(self, old_batch: int, new_batch: int) -> float:
        """Loss spike injected by scaling ``old_batch`` → ``new_batch`` at once.

        Increases of up to 4× in one step are tolerated — Fig. 14 shows
        256 → 1024 → 4096 staying smooth — while larger one-shot jumps
        (Fig. 13 jumps 16×) inject a spike that grows with every extra
        doubling.  Scaling *down* never spikes.
        """
        if old_batch <= 0 or new_batch <= 0:
            raise ValueError("batch sizes must be >= 1")
        if new_batch <= old_batch:
            return 0.0
        doublings = math.log2(new_batch / old_batch)
        excess = max(0.0, doublings - 2.0)
        return self.loss_spike_per_doubling * excess

    def spike_setback_epochs(self, spike: float) -> float:
        """Effective-epoch loss caused by a spike of the given magnitude."""
        check_non_negative(spike, "spike")
        if spike <= 0:
            return 0.0
        return self.spike_recovery_epochs * spike / (spike + self.loss_spike_per_doubling)

    def epochs_to_target(self, global_batch: int, lr_scaled: bool = True) -> float:
        """Real epochs needed to first reach the target at a constant batch."""
        return self.base_epochs_to_target * self.epoch_penalty(global_batch, lr_scaled)

    # -- figure generators ------------------------------------------------------------------

    def accuracy_curve(
        self,
        epochs: int,
        global_batch: int,
        lr_scaled: bool = True,
    ) -> np.ndarray:
        """Accuracy after each of ``epochs`` real epochs at a constant batch.

        Fig. 3 uses this with ``lr_scaled=False`` and global batches of
        256 × {1, 2, 4, 8}.
        """
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        gain = self.epoch_progress(global_batch, lr_scaled)
        effective = gain * np.arange(1, epochs + 1, dtype=float)
        return self.max_accuracy * (1.0 - np.exp(-effective / self._accuracy_tau))


@dataclass
class LossCurveSimulator:
    """Epoch-by-epoch loss/accuracy trajectory under a batch-size schedule.

    This is the engine behind Figs. 13 and 14: it tracks effective
    progress, injects spikes on abrupt batch-size jumps and decays them
    over subsequent epochs.
    """

    profile: ConvergenceProfile
    lr_scaled: bool = True
    effective_epochs: float = 0.0
    _spike: float = field(default=0.0, repr=False)
    _current_batch: Optional[int] = field(default=None, repr=False)
    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    def set_batch(self, global_batch: int) -> float:
        """Switch the global batch size; returns the injected loss spike."""
        if global_batch <= 0:
            raise ValueError("global_batch must be >= 1")
        spike = 0.0
        if self._current_batch is not None:
            spike = self.profile.abrupt_scaling_spike(self._current_batch, global_batch)
            if spike > 0:
                self._spike += spike
                self.effective_epochs = max(
                    0.0,
                    self.effective_epochs - self.profile.spike_setback_epochs(spike),
                )
        self._current_batch = int(global_batch)
        return spike

    def run_epoch(self) -> Tuple[float, float]:
        """Advance one real epoch; returns ``(loss, accuracy)`` at its end."""
        if self._current_batch is None:
            raise RuntimeError("set_batch() must be called before run_epoch()")
        self.effective_epochs += self.profile.epoch_progress(
            self._current_batch, self.lr_scaled
        )
        # Spikes decay exponentially over the recovery window.
        self._spike *= math.exp(-1.0 / self.profile.spike_recovery_epochs)
        loss = self.profile.loss_at(self.effective_epochs, self._spike)
        accuracy = self.profile.accuracy_at(self.effective_epochs)
        self.losses.append(loss)
        self.accuracies.append(accuracy)
        return loss, accuracy

    def run_schedule(self, schedule: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Run ``[(batch, epochs), ...]`` segments; returns the loss curve."""
        for batch, epochs in schedule:
            self.set_batch(int(batch))
            for _ in range(int(epochs)):
                self.run_epoch()
        return np.asarray(self.losses, dtype=float)
