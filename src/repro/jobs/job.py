"""Job specifications and runtime state.

A :class:`JobSpec` is the immutable description a user submits: which
model, which dataset (and its size), the batch size / learning rate the
user tuned, how many GPUs they asked for (the quantity fixed-size
schedulers such as Tiresias honour) and when the job arrives.

A :class:`Job` is the simulator's runtime view of that submission: how
many samples it has processed, its effective learning progress, its loss
and validation accuracy, its current resource configuration, and the
bookkeeping needed to compute completion / execution / queuing times
(the metrics of Fig. 15).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jobs.convergence import ConvergenceProfile
from repro.jobs.model_zoo import ModelSpec
from repro.utils.stats import RunningMean
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


class JobStatus(enum.Enum):
    """Lifecycle states of a job."""

    PENDING = "pending"      # submitted, waiting for its first/next allocation
    RUNNING = "running"      # at least one worker is active
    COMPLETED = "completed"  # converged; resources released


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of a submitted training job."""

    job_id: str
    task: str
    model: ModelSpec
    dataset: str
    dataset_size: int
    num_classes: int
    convergence: ConvergenceProfile
    base_batch: int
    base_lr: float
    requested_gpus: int = 1
    arrival_time: float = 0.0
    convergence_patience: int = 10

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be a non-empty string")
        check_positive_int(self.dataset_size, "dataset_size")
        check_positive_int(self.num_classes, "num_classes")
        check_positive_int(self.base_batch, "base_batch")
        check_positive(self.base_lr, "base_lr")
        check_positive_int(self.requested_gpus, "requested_gpus")
        check_non_negative(self.arrival_time, "arrival_time")
        check_positive_int(self.convergence_patience, "convergence_patience")
        if self.base_batch > self.dataset_size:
            raise ValueError(
                f"base_batch ({self.base_batch}) cannot exceed dataset_size "
                f"({self.dataset_size})"
            )

    @property
    def max_local_batch(self) -> int:
        """Largest per-GPU batch that fits on the device for this model."""
        return self.model.max_local_batch

    def expected_total_epochs(self, global_batch: Optional[int] = None) -> float:
        """Rough expected epoch count (target epochs + patience)."""
        batch = global_batch if global_batch is not None else self.base_batch
        return (
            self.convergence.epochs_to_target(batch, lr_scaled=True)
            + self.convergence_patience
        )


@dataclass(frozen=True)
class EpochRecord:
    """Snapshot logged by a worker at the end of each training epoch.

    The scheduler architecture (§3.1) says "each worker uploads its
    training progress (e.g. number of processed samples, training loss and
    validation accuracy) to the central scheduler at the end of each
    training epoch"; this record is exactly that upload.
    """

    epoch_index: int
    time: float
    samples_processed: float
    loss: float
    accuracy: float
    global_batch: int
    num_gpus: int
    duration: float


@dataclass
class RunInterval:
    """A contiguous stretch of time during which the job held GPUs."""

    start: float
    end: Optional[float] = None
    num_gpus: int = 0

    def duration(self, now: Optional[float] = None) -> float:
        """Length of the interval (up to ``now`` if still open)."""
        end = self.end if self.end is not None else now
        if end is None:
            raise ValueError("open interval requires `now` to compute a duration")
        return max(0.0, end - self.start)


class Job:
    """Runtime state of a training job inside the simulator."""

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.status: JobStatus = JobStatus.PENDING
        # learning progress
        self.samples_processed: float = 0.0
        self.effective_epochs: float = 0.0
        self.epochs_completed: int = 0
        self.consecutive_target_epochs: int = 0
        self._loss_spike: float = 0.0
        # resources
        self.gpu_ids: Tuple[int, ...] = ()
        self.local_batches: Tuple[int, ...] = ()
        self.generation: int = 0
        self.lr_scaled: bool = True
        # accounting
        self.first_start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.run_intervals: List[RunInterval] = []
        self.attained_service: float = 0.0  # GPU-seconds
        self.reconfig_count: int = 0
        self.reconfig_overhead_total: float = 0.0
        # telemetry
        self.throughput_profile = RunningMean()
        self.epoch_records: List[EpochRecord] = []
        self.batch_history: List[Tuple[float, int]] = []
        self._epoch_start_time: Optional[float] = None
        self._epoch_start_samples: float = 0.0

    # -- identity / convenience -----------------------------------------------------

    @property
    def job_id(self) -> str:
        """Identifier of the job (mirrors the spec)."""
        return self.spec.job_id

    @property
    def arrival_time(self) -> float:
        """Submission time of the job."""
        return self.spec.arrival_time

    @property
    def dataset_size(self) -> int:
        """Samples per epoch (``‖D‖`` in the paper's notation)."""
        return self.spec.dataset_size

    @property
    def num_gpus(self) -> int:
        """Number of GPUs currently allocated (``c_j``)."""
        return len(self.gpu_ids)

    @property
    def global_batch(self) -> int:
        """Current global batch size (``B_j``); 0 when not running."""
        return int(sum(self.local_batches))

    @property
    def is_running(self) -> bool:
        """Whether the job currently holds at least one GPU."""
        return self.status is JobStatus.RUNNING

    @property
    def is_completed(self) -> bool:
        """Whether the job has converged and released its resources."""
        return self.status is JobStatus.COMPLETED

    # -- learning-progress quantities exposed to schedulers ----------------------------

    @property
    def initial_loss(self) -> float:
        """Loss before any training (a predictor feature, footnote 1)."""
        return self.spec.convergence.initial_loss

    @property
    def current_loss(self) -> float:
        """Training loss at the current progress point."""
        return self.spec.convergence.loss_at(self.effective_epochs, self._loss_spike)

    @property
    def current_accuracy(self) -> float:
        """Validation accuracy at the current progress point."""
        return self.spec.convergence.accuracy_at(self.effective_epochs)

    @property
    def loss_improvement_ratio(self) -> float:
        """``r_loss = 1 - current loss / initial loss`` (a predictor feature)."""
        return 1.0 - self.current_loss / self.initial_loss

    @property
    def measured_throughput(self) -> float:
        """Mean of the job's online throughput measurements (``X_j``)."""
        return self.throughput_profile.mean

    # -- time accounting -----------------------------------------------------------------

    def executed_time(self, now: Optional[float] = None) -> float:
        """Total wall-clock time the job has held GPUs (``T_processed``)."""
        total = 0.0
        for interval in self.run_intervals:
            if interval.end is None:
                if now is None:
                    raise ValueError("job is running; pass `now` to executed_time()")
                total += interval.duration(now)
            else:
                total += interval.duration()
        return total

    def completion_metrics(self) -> Dict[str, float]:
        """JCT / execution / queuing breakdown for a completed job."""
        if self.completion_time is None:
            raise RuntimeError(f"job {self.job_id} has not completed")
        jct = self.completion_time - self.arrival_time
        exec_time = self.executed_time()
        return {
            "jct": jct,
            "execution_time": exec_time,
            "queuing_time": max(0.0, jct - exec_time),
            "attained_service": self.attained_service,
            "epochs": float(self.epochs_completed),
            "reconfigurations": float(self.reconfig_count),
            "reconfig_overhead": self.reconfig_overhead_total,
        }

    # -- resource transitions -----------------------------------------------------------

    def start_running(
        self,
        now: float,
        gpu_ids: Sequence[int],
        local_batches: Sequence[int],
        lr_scaled: bool = True,
    ) -> None:
        """Begin (or resume) execution with the given worker configuration."""
        if self.is_completed:
            raise RuntimeError(f"job {self.job_id} already completed")
        if len(gpu_ids) == 0 or sum(local_batches) <= 0:
            raise ValueError("a running job needs at least one worker with batch >= 1")
        if len(gpu_ids) != len(local_batches):
            raise ValueError("gpu_ids and local_batches must align")
        old_batch = self.global_batch
        self.gpu_ids = tuple(int(g) for g in gpu_ids)
        self.local_batches = tuple(int(b) for b in local_batches)
        self.lr_scaled = lr_scaled
        self.generation += 1
        if self.status is not JobStatus.RUNNING:
            self.status = JobStatus.RUNNING
            self.run_intervals.append(RunInterval(start=now, num_gpus=self.num_gpus))
            if self.first_start_time is None:
                self.first_start_time = now
        else:
            # Re-configuration while running: close and reopen the interval so
            # attained service is charged at the correct GPU count.
            self._close_interval(now)
            self.run_intervals.append(RunInterval(start=now, num_gpus=self.num_gpus))
        if old_batch > 0 and self.global_batch != old_batch:
            self.apply_batch_change(old_batch, self.global_batch)
        if self._epoch_start_time is None:
            self._epoch_start_time = now
            self._epoch_start_samples = self.samples_processed
        self.batch_history.append((now, self.global_batch))

    def stop_running(self, now: float) -> None:
        """Release all workers (preemption or completion)."""
        if self.status is not JobStatus.RUNNING:
            return
        self._close_interval(now)
        self.gpu_ids = ()
        self.local_batches = ()
        self.generation += 1
        self.status = JobStatus.PENDING
        self._epoch_start_time = None

    def _close_interval(self, now: float) -> None:
        if self.run_intervals and self.run_intervals[-1].end is None:
            interval = self.run_intervals[-1]
            interval.end = now
            self.attained_service += interval.duration() * interval.num_gpus

    # -- progress -----------------------------------------------------------------------

    def apply_batch_change(self, old_batch: int, new_batch: int) -> float:
        """Account for a batch-size change; returns the injected loss spike."""
        spike = self.spec.convergence.abrupt_scaling_spike(old_batch, new_batch)
        if spike > 0:
            self._loss_spike += spike
            self.effective_epochs = max(
                0.0,
                self.effective_epochs - self.spec.convergence.spike_setback_epochs(spike),
            )
        return spike

    def advance(self, delta_samples: float, duration: float) -> None:
        """Process ``delta_samples`` over ``duration`` seconds of training."""
        check_non_negative(delta_samples, "delta_samples")
        check_non_negative(duration, "duration")
        if not self.is_running:
            raise RuntimeError(f"cannot advance job {self.job_id}: it is not running")
        if delta_samples == 0:
            return
        batch = max(1, self.global_batch)
        epoch_fraction = delta_samples / self.dataset_size
        gain = self.spec.convergence.epoch_progress(batch, self.lr_scaled)
        self.samples_processed += delta_samples
        self.effective_epochs += epoch_fraction * gain
        # Loss spikes decay as training proceeds.
        self._loss_spike *= math.exp(
            -epoch_fraction / self.spec.convergence.spike_recovery_epochs
        )
        if duration > 0:
            self.throughput_profile.update(delta_samples / duration)

    def complete_epoch(self, now: float) -> EpochRecord:
        """Record the end of a training epoch and update the stop criterion."""
        self.epochs_completed += 1
        duration = 0.0
        if self._epoch_start_time is not None:
            duration = max(0.0, now - self._epoch_start_time)
        record = EpochRecord(
            epoch_index=self.epochs_completed,
            time=now,
            samples_processed=self.samples_processed,
            loss=self.current_loss,
            accuracy=self.current_accuracy,
            global_batch=self.global_batch,
            num_gpus=self.num_gpus,
            duration=duration,
        )
        self.epoch_records.append(record)
        if record.accuracy >= self.spec.convergence.target_accuracy:
            self.consecutive_target_epochs += 1
        else:
            self.consecutive_target_epochs = 0
        self._epoch_start_time = now
        self._epoch_start_samples = self.samples_processed
        return record

    @property
    def is_converged(self) -> bool:
        """True once the stop criterion of §4.1 is satisfied."""
        return self.consecutive_target_epochs >= self.spec.convergence_patience

    def mark_completed(self, now: float) -> None:
        """Transition to COMPLETED and release resources."""
        if self.is_completed:
            return
        self._close_interval(now)
        self.gpu_ids = ()
        self.local_batches = ()
        self.status = JobStatus.COMPLETED
        self.completion_time = now
        self.generation += 1

    def record_reconfiguration(self, overhead: float) -> None:
        """Account one re-configuration and its overhead (seconds)."""
        check_non_negative(overhead, "overhead")
        self.reconfig_count += 1
        self.reconfig_overhead_total += overhead

    # -- progress fraction used by the predictor ------------------------------------------

    def samples_into_current_epoch(self) -> float:
        """Samples processed since the last epoch boundary."""
        return self.samples_processed - self._epoch_start_samples

    def processed_epochs(self) -> float:
        """``Y_processed / ‖D‖`` — fractional epochs processed so far."""
        return self.samples_processed / self.dataset_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id}, {self.status.value}, "
            f"epochs={self.epochs_completed}, gpus={self.num_gpus}, "
            f"B={self.global_batch})"
        )
