"""Deep-learning job models.

The scheduler never sees gradients or tensors — it sees *throughput*
(samples/second for a given batch size and placement), *progress*
(samples processed, loss, validation accuracy) and *convergence* (when a
job stops).  This subpackage provides analytic models of those three
quantities, calibrated to reproduce the qualitative behaviour the paper
reports in Figs. 2, 3, 13 and 14:

* :mod:`repro.jobs.model_zoo` — the neural-network models of Table 2
  (parameter count, FLOPs per sample, largest per-GPU batch).
* :mod:`repro.jobs.throughput` — data-parallel step time = compute +
  ring-all-reduce communication; throughput saturates and then degrades
  when a fixed global batch is split across too many workers.
* :mod:`repro.jobs.convergence` — epochs-to-target-accuracy as a function
  of the (possibly changing) global batch size, the linear LR-scaling
  rule, and the loss spike caused by abrupt batch-size jumps.
* :mod:`repro.jobs.lr_scaling` — the linear learning-rate scaling rule.
* :mod:`repro.jobs.job` — :class:`JobSpec` (static description) and
  :class:`Job` (runtime state tracked by the simulator).
"""

from repro.jobs.model_zoo import ModelSpec, MODEL_ZOO, get_model
from repro.jobs.throughput import (
    BoundedMemo,
    StepTimeBreakdown,
    ThroughputModel,
    ThroughputTable,
    derive_global_batch,
)
from repro.jobs.convergence import ConvergenceProfile, LossCurveSimulator
from repro.jobs.lr_scaling import linear_scaled_lr, warmup_factor
from repro.jobs.job import Job, JobSpec, JobStatus, EpochRecord, RunInterval

__all__ = [
    "ModelSpec",
    "MODEL_ZOO",
    "get_model",
    "ThroughputModel",
    "ThroughputTable",
    "BoundedMemo",
    "derive_global_batch",
    "StepTimeBreakdown",
    "ConvergenceProfile",
    "LossCurveSimulator",
    "linear_scaled_lr",
    "warmup_factor",
    "Job",
    "JobSpec",
    "JobStatus",
    "EpochRecord",
    "RunInterval",
]
