"""Learning-rate scaling rules for elastic batch sizes.

§3.3.2 of the paper: ONES "jointly manages the batch size and learning
rate of each job according to their initial values based on linear
scaling".  The linear scaling rule (Goyal et al.) multiplies the base
learning rate by the same factor as the batch size; a short warmup ramp
avoids instability right after a scale-up.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative, check_positive


def linear_scaled_lr(base_lr: float, base_batch: int, new_batch: int) -> float:
    """Linear scaling rule: ``lr' = base_lr * new_batch / base_batch``."""
    check_positive(base_lr, "base_lr")
    check_positive(base_batch, "base_batch")
    check_positive(new_batch, "new_batch")
    return base_lr * (new_batch / base_batch)


def sqrt_scaled_lr(base_lr: float, base_batch: int, new_batch: int) -> float:
    """Square-root scaling rule (used by some adaptive optimisers)."""
    check_positive(base_lr, "base_lr")
    check_positive(base_batch, "base_batch")
    check_positive(new_batch, "new_batch")
    return base_lr * (new_batch / base_batch) ** 0.5


def warmup_factor(step: int, warmup_steps: int) -> float:
    """Linear warmup multiplier in ``[0, 1]``.

    Returns ``(step + 1) / warmup_steps`` capped at 1.  With
    ``warmup_steps == 0`` there is no warmup and the factor is always 1.
    """
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    check_non_negative(warmup_steps, "warmup_steps")
    if warmup_steps == 0:
        return 1.0
    return min(1.0, (step + 1) / float(warmup_steps))


def scaled_lr_with_warmup(
    base_lr: float,
    base_batch: int,
    new_batch: int,
    step: int,
    warmup_steps: int = 0,
    rule: str = "linear",
) -> float:
    """Learning rate after batch-size scaling, including warmup.

    ``rule`` selects between ``"linear"`` and ``"sqrt"`` scaling.
    """
    if rule == "linear":
        lr = linear_scaled_lr(base_lr, base_batch, new_batch)
    elif rule == "sqrt":
        lr = sqrt_scaled_lr(base_lr, base_batch, new_batch)
    else:
        raise ValueError(f"unknown scaling rule {rule!r}; use 'linear' or 'sqrt'")
    return lr * warmup_factor(step, warmup_steps)
