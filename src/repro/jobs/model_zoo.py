"""The neural-network model catalogue used by the evaluation trace.

Table 2 of the paper draws workloads from AlexNet, ResNet-18/50, VGG-16,
GoogleNet, Inception-V3 and BERT (plus an LSTM in the overhead study of
Fig. 16).  The scheduler only needs three facts about a model:

* its parameter volume (bytes moved per all-reduce),
* its training cost per sample (FLOPs for forward + backward),
* the largest per-GPU batch that fits in device memory.

The figures below are standard published numbers (parameters, forward
FLOPs at the model's native input resolution, multiplied by 3 for the
backward pass).  Workload definitions can scale the per-sample FLOPs for
smaller inputs (e.g. CIFAR-10's 32×32 images) via
:meth:`ModelSpec.scaled`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.utils.units import GIGA, MB
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class ModelSpec:
    """Scheduler-visible description of a neural network.

    Parameters
    ----------
    name:
        Model name as it appears in Table 2 / Fig. 16.
    num_parameters:
        Trainable parameter count.
    flops_per_sample:
        Training FLOPs per sample (forward + backward) at the native
        input size.
    max_local_batch:
        Largest per-GPU batch size that fits in a 16 GB V100 for this
        model at its native input size.
    bytes_per_parameter:
        4 for fp32 gradients (the all-reduce payload).
    checkpoint_bytes:
        Size of a model + optimizer-state checkpoint, which drives the
        checkpoint-based migration overhead (Fig. 16).
    """

    name: str
    num_parameters: float
    flops_per_sample: float
    max_local_batch: int
    bytes_per_parameter: float = 4.0
    checkpoint_bytes: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.num_parameters, "num_parameters")
        check_positive(self.flops_per_sample, "flops_per_sample")
        check_positive_int(self.max_local_batch, "max_local_batch")
        check_positive(self.bytes_per_parameter, "bytes_per_parameter")
        if self.checkpoint_bytes <= 0:
            # Model weights + optimizer momentum/variance (Adam ≈ 3×).
            object.__setattr__(
                self,
                "checkpoint_bytes",
                3.0 * self.num_parameters * self.bytes_per_parameter,
            )

    @property
    def gradient_bytes(self) -> float:
        """Bytes exchanged per all-reduce (one full gradient)."""
        return self.num_parameters * self.bytes_per_parameter

    def scaled(self, compute_scale: float, name_suffix: str = "") -> "ModelSpec":
        """Return a copy with per-sample FLOPs scaled by ``compute_scale``.

        Smaller inputs (CIFAR-10, short NLP sequences) reduce the compute
        per sample while leaving the parameter volume unchanged, which
        also lets a larger local batch fit in memory.
        """
        check_positive(compute_scale, "compute_scale")
        new_batch = max(1, int(round(self.max_local_batch / max(compute_scale, 1e-6))))
        # Device memory, not arithmetic, bounds the batch; cap the growth.
        new_batch = min(new_batch, self.max_local_batch * 8)
        return replace(
            self,
            name=self.name + name_suffix,
            flops_per_sample=self.flops_per_sample * compute_scale,
            max_local_batch=new_batch,
        )


def _spec(name, params_m, fwd_gflops, max_local_batch):
    """Helper: build a spec from params (millions) and forward GFLOPs."""
    return ModelSpec(
        name=name,
        num_parameters=params_m * 1e6,
        flops_per_sample=3.0 * fwd_gflops * GIGA,  # fwd + bwd ≈ 3× fwd
        max_local_batch=max_local_batch,
    )


#: Published model characteristics at native input resolution.
MODEL_ZOO: Dict[str, ModelSpec] = {
    "alexnet": _spec("alexnet", params_m=61.1, fwd_gflops=0.72, max_local_batch=512),
    "resnet18": _spec("resnet18", params_m=11.7, fwd_gflops=1.82, max_local_batch=256),
    "resnet50": _spec("resnet50", params_m=25.6, fwd_gflops=4.12, max_local_batch=128),
    "vgg16": _spec("vgg16", params_m=138.4, fwd_gflops=15.5, max_local_batch=96),
    "googlenet": _spec("googlenet", params_m=6.6, fwd_gflops=1.50, max_local_batch=256),
    "inceptionv3": _spec("inceptionv3", params_m=23.8, fwd_gflops=5.73, max_local_batch=96),
    "bert": _spec("bert", params_m=110.0, fwd_gflops=11.2, max_local_batch=32),
    "lstm": _spec("lstm", params_m=9.8, fwd_gflops=0.95, max_local_batch=128),
}


def get_model(name: str) -> ModelSpec:
    """Look up a model by (case-insensitive) name.

    Raises :class:`KeyError` listing the available names when not found.
    """
    key = name.strip().lower()
    if key not in MODEL_ZOO:
        available = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; available models: {available}")
    return MODEL_ZOO[key]
