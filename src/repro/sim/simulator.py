"""The cluster simulator facade.

The simulator is a discrete-event loop over four event kinds:

* ``JOB_ARRIVAL`` — a job from the trace is submitted,
* ``EPOCH_END`` — a running job crosses an epoch boundary and uploads
  its progress to the scheduler,
* ``JOB_COMPLETION`` — handled inline when an epoch ends and the
  convergence criterion (10 consecutive epochs above the target
  accuracy) is met,
* ``TIMER`` — periodic rescheduling ticks for interval-based schedulers
  (Optimus reschedules every 10 minutes).

Between events, every running job advances continuously at the
throughput predicted by :class:`repro.jobs.throughput.ThroughputModel`
for its current configuration.  When the scheduler deploys a new
allocation, every job whose configuration changed is charged a
re-configuration overhead during which it holds its GPUs but makes no
progress — elastic (≈1 s) for ONES, checkpoint-based (≈10–22 s) for the
baselines, plus a uniform cold-start cost when a job is (re)started from
an idle state.

Since the kernel refactor, :class:`ClusterSimulator` is a *facade* over
three collaborating layers (see the package docstring of
:mod:`repro.sim` for the full map):

* :class:`~repro.sim.kernel.SimulationKernel` — clock, event heap,
  max-event/max-time guards, handler dispatch;
* :class:`~repro.sim.ledger.ProgressLedger` — vectorized per-job
  rate/progress state, advanced with array expressions over the running
  jobs only and lazily materialized back into ``Job`` objects;
* :mod:`repro.sim.handlers` — per-event-kind strategy objects holding
  the domain logic, shared by ONES and every baseline.

The facade keeps the historical public surface (constructor signature,
``run()``, ``now`` / ``jobs`` / ``allocation``, the ``_apply_allocation``
and ``_handle_*`` entry points used by white-box tests) so schedulers
and experiments are unaffected by the layering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.allocation import Allocation
from repro.cluster.events import Event, EventKind, EventQueue
from repro.cluster.topology import ClusterTopology
from repro.faults.config import FaultConfig
from repro.faults.costs import FaultCostModel
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.runtime import FaultRuntime
from repro.jobs.job import Job, JobSpec
from repro.jobs.throughput import ThroughputModel
from repro.baselines.base import ClusterState, SchedulerBase
from repro.obs.trace import active_tracer, current_tracer
from repro.scaling.overhead import OverheadModel, ReconfigurationKind
from repro.sim.handlers import default_handlers
from repro.sim.kernel import SimulationKernel
from repro.sim.ledger import ProgressLedger
from repro.sim.profiling import SimProfile
from repro.utils.validation import check_non_negative, check_positive

#: FaultKind -> the EventKind its injection is scheduled under.
_FAULT_EVENT_KINDS = {
    FaultKind.NODE_DOWN: EventKind.NODE_DOWN,
    FaultKind.NODE_UP: EventKind.NODE_UP,
    FaultKind.GPU_DEGRADED: EventKind.GPU_DEGRADED,
}


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of a simulation run.

    Parameters
    ----------
    max_time:
        Hard stop (seconds of simulated time); jobs not finished by then
        are reported as incomplete.
    start_overhead:
        Cold-start cost charged whenever a job goes from holding no GPUs
        to holding some (process launch, data pipeline warm-up).  The
        same for every scheduler so JCT differences come from decisions
        and re-configuration costs, not from an arbitrary constant.
    allreduce_efficiency:
        Passed through to the throughput model.
    min_progress_rate:
        Guard against pathological configurations: a running job must
        make at least this many samples/second or the simulator raises.
    collect_profile:
        Record per-phase wall-clock (ledger advance, per-event-kind
        handler time, scheduler-reported phases such as GPR refits) into
        ``SimulationResult.profile``.  Off by default: wall-clock is
        host-specific, so profiled artifacts are not reproducible across
        machines.
    faults:
        Optional :class:`~repro.faults.config.FaultConfig` describing the
        cluster weather the run is exposed to (node outages, stragglers,
        checkpoint/restart costs).  A disabled config (profile ``"none"``
        with no injections) is normalised to ``None`` so zero-fault
        configurations — and therefore experiment cell keys and
        trajectories — are exactly what they were before the fault
        subsystem existed.
    """

    max_time: float = 48 * 3600.0
    start_overhead: float = 5.0
    allreduce_efficiency: float = 0.7
    min_progress_rate: float = 1e-6
    max_events: int = 2_000_000
    collect_profile: bool = False
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        check_positive(self.max_time, "max_time")
        check_non_negative(self.start_overhead, "start_overhead")
        check_positive(self.allreduce_efficiency, "allreduce_efficiency")
        check_positive(self.min_progress_rate, "min_progress_rate")
        if self.max_events < 1000:
            raise ValueError("max_events must be >= 1000")
        if self.faults is not None and not self.faults.enabled:
            object.__setattr__(self, "faults", None)

    # -- serialization (used by declarative experiment specs) ---------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`).

        The ``faults`` key is present only when fault injection is
        enabled: zero-fault payloads (and the cell keys hashed from
        them) are byte-identical to the pre-fault schema.
        """
        payload: Dict[str, object] = {
            "max_time": float(self.max_time),
            "start_overhead": float(self.start_overhead),
            "allreduce_efficiency": float(self.allreduce_efficiency),
            "min_progress_rate": float(self.min_progress_rate),
            "max_events": int(self.max_events),
            "collect_profile": bool(self.collect_profile),
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationConfig":
        """Rebuild a :class:`SimulationConfig` from :meth:`to_dict` output."""
        faults = payload.get("faults")
        return cls(
            max_time=float(payload["max_time"]),
            start_overhead=float(payload["start_overhead"]),
            allreduce_efficiency=float(payload["allreduce_efficiency"]),
            min_progress_rate=float(payload["min_progress_rate"]),
            max_events=int(payload["max_events"]),
            collect_profile=bool(payload.get("collect_profile", False)),
            faults=FaultConfig.from_dict(faults) if faults is not None else None,
        )


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    scheduler_name: str
    num_gpus: int
    completed: Dict[str, Dict[str, float]]
    incomplete: List[str]
    makespan: float
    gpu_time_busy: float
    gpu_time_total: float
    num_reconfigurations: int
    events_processed: int
    jobs: Dict[str, Job] = field(default_factory=dict, repr=False)
    #: Flat profiling table, populated only when the run was configured
    #: with ``collect_profile=True``.  ``*_seconds`` keys are per-phase
    #: wall-clock; ``events_<kind>`` keys are per-event-kind counts
    #: (floats for JSON uniformity) — do not sum the dict as seconds.
    profile: Dict[str, float] = field(default_factory=dict, repr=False)
    #: Recovery metrics of a faulted run (evictions, restarts, lost
    #: GPU-seconds, downtime, goodput — see
    #: :meth:`repro.faults.runtime.FaultRuntime.metrics`).  Empty when
    #: the run had no fault configuration.
    faults: Dict[str, float] = field(default_factory=dict, repr=False)

    # -- metric views -------------------------------------------------------------------

    def jct_values(self) -> np.ndarray:
        """Per-job completion times, ordered by job id."""
        return self._metric("jct")

    def execution_values(self) -> np.ndarray:
        """Per-job execution times, ordered by job id."""
        return self._metric("execution_time")

    def queuing_values(self) -> np.ndarray:
        """Per-job queuing times, ordered by job id."""
        return self._metric("queuing_time")

    def _metric(self, key: str) -> np.ndarray:
        return np.asarray(
            [self.completed[j][key] for j in sorted(self.completed)], dtype=float
        )

    @property
    def average_jct(self) -> float:
        """Mean job completion time over completed jobs."""
        values = self.jct_values()
        return float(values.mean()) if values.size else float("nan")

    @property
    def average_execution_time(self) -> float:
        """Mean execution time over completed jobs."""
        values = self.execution_values()
        return float(values.mean()) if values.size else float("nan")

    @property
    def average_queuing_time(self) -> float:
        """Mean queuing time over completed jobs."""
        values = self.queuing_values()
        return float(values.mean()) if values.size else float("nan")

    @property
    def gpu_utilization(self) -> float:
        """Busy GPU-seconds divided by available GPU-seconds."""
        if self.gpu_time_total <= 0:
            return 0.0
        return self.gpu_time_busy / self.gpu_time_total

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation of the result.

        The live :class:`~repro.jobs.job.Job` objects are *not* included:
        they exist for in-process telemetry/debugging and are neither
        needed by the metric views above nor cheap to serialize.  The
        returned payload round-trips exactly through :meth:`from_dict`
        (floats survive JSON bit-for-bit), which is what lets experiment
        artifacts cross process boundaries and live on disk.
        """
        return {
            "scheduler_name": str(self.scheduler_name),
            "num_gpus": int(self.num_gpus),
            "completed": {
                job_id: {key: float(value) for key, value in metrics.items()}
                for job_id, metrics in self.completed.items()
            },
            "incomplete": [str(job_id) for job_id in self.incomplete],
            "makespan": float(self.makespan),
            "gpu_time_busy": float(self.gpu_time_busy),
            "gpu_time_total": float(self.gpu_time_total),
            "num_reconfigurations": int(self.num_reconfigurations),
            "events_processed": int(self.events_processed),
            "profile": {key: float(value) for key, value in self.profile.items()},
            "faults": {key: float(value) for key, value in self.faults.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationResult":
        """Rebuild a (job-less) :class:`SimulationResult` from :meth:`to_dict` output."""
        return cls(
            scheduler_name=str(payload["scheduler_name"]),
            num_gpus=int(payload["num_gpus"]),
            completed={
                job_id: {key: float(value) for key, value in metrics.items()}
                for job_id, metrics in payload["completed"].items()
            },
            incomplete=[str(job_id) for job_id in payload["incomplete"]],
            makespan=float(payload["makespan"]),
            gpu_time_busy=float(payload["gpu_time_busy"]),
            gpu_time_total=float(payload["gpu_time_total"]),
            num_reconfigurations=int(payload["num_reconfigurations"]),
            events_processed=int(payload["events_processed"]),
            profile={
                key: float(value)
                for key, value in payload.get("profile", {}).items()
            },
            faults={
                key: float(value)
                for key, value in payload.get("faults", {}).items()
            },
        )

    def summary(self) -> Dict[str, object]:
        """Headline numbers used by reports.

        Values are heterogeneous by design: the scheduler name is a
        string, the job/reconfiguration counts are ints, everything else
        a float — see the keyed consumers in ``analysis.export`` and
        ``experiments.report``.
        """
        return {
            "scheduler": self.scheduler_name,
            "num_gpus": self.num_gpus,
            "completed_jobs": len(self.completed),
            "incomplete_jobs": len(self.incomplete),
            "average_jct": self.average_jct,
            "average_execution_time": self.average_execution_time,
            "average_queuing_time": self.average_queuing_time,
            "makespan": self.makespan,
            "gpu_utilization": self.gpu_utilization,
            "reconfigurations": self.num_reconfigurations,
        }


class ClusterSimulator:
    """Replays a trace against a scheduler on a simulated cluster."""

    def __init__(
        self,
        topology: ClusterTopology,
        scheduler: SchedulerBase,
        trace: Sequence[JobSpec],
        config: Optional[SimulationConfig] = None,
        overhead_model: Optional[OverheadModel] = None,
        online: bool = False,
    ) -> None:
        if not trace and not online:
            raise ValueError("trace must contain at least one job")
        job_ids = [spec.job_id for spec in trace]
        if len(set(job_ids)) != len(job_ids):
            raise ValueError("trace contains duplicate job ids")
        self.topology = topology
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.overheads = overhead_model or OverheadModel(node=topology.node_spec)
        self.throughput_model = ThroughputModel(
            topology, allreduce_efficiency=self.config.allreduce_efficiency
        )
        self.trace = sorted(trace, key=lambda s: (s.arrival_time, s.job_id))
        self._spec_index = {spec.job_id: spec for spec in self.trace}
        #: Online mode: the trace grows via :meth:`submit` while the
        #: kernel is live; :meth:`close` declares the stream finished.
        self.online = bool(online)
        self.closed = not self.online
        self._timer_armed = False
        # runtime state
        self.jobs: Dict[str, Job] = {}
        self.allocation: Allocation = Allocation.empty()
        self.ledger = ProgressLedger(capacity=len(self.trace))
        self.profile: Optional[SimProfile] = (
            SimProfile() if self.config.collect_profile else None
        )
        # fault state: the plan is derived deterministically from the
        # config + cluster + horizon (empty when faults are disabled),
        # the runtime tracks down/degraded nodes and recovery metrics.
        self.faults = FaultRuntime(topology)
        if self.config.faults is not None:
            self.fault_costs = FaultCostModel(
                restart_delay_multiplier=self.config.faults.restart_delay_multiplier,
                lost_work_fraction=self.config.faults.lost_work_fraction,
            )
            self.fault_plan = self.config.faults.build_plan(
                topology.num_nodes, self.config.max_time
            )
        else:
            self.fault_costs = FaultCostModel()
            self.fault_plan = FaultPlan()
        self.handlers = default_handlers(self)
        self.kernel = SimulationKernel(
            max_time=self.config.max_time,
            max_events=self.config.max_events,
            advance_hook=self._on_advance,
            done=self._all_done,
            handlers=self.handlers,
            profile=self.profile,
            # The process-wide recorder (None when tracing is dormant).
            # Captured once here: the kernel guards on it per event, and
            # recording never touches RNG or event ordering, so results
            # are bit-identical with tracing on or off.
            tracer=current_tracer(),
        )
        self._num_reconfigs = 0
        self._busy_gpu_time = 0.0

    # -- kernel views -------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (the kernel's clock)."""
        return self.kernel.now

    @property
    def _events(self) -> EventQueue:
        """The kernel's event queue (kept under the historical name)."""
        return self.kernel.events

    @property
    def _events_processed(self) -> int:
        return self.kernel.events_processed

    # -- public API ---------------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the simulation to completion (or the configured time limit)."""
        for spec in self.trace:
            self.kernel.push(
                Event(time=spec.arrival_time, kind=EventKind.JOB_ARRIVAL, job_id=spec.job_id)
            )
        if self.scheduler.timer_interval is not None:
            first = self.trace[0].arrival_time + self.scheduler.timer_interval
            self.kernel.push(Event(time=first, kind=EventKind.TIMER))
            self._timer_armed = True
        for injection in self.fault_plan:
            self.kernel.push(
                Event(
                    time=injection.time,
                    kind=_FAULT_EVENT_KINDS[injection.kind],
                    payload=injection,
                )
            )
        self.kernel.run()
        return self._build_result()

    # -- online mode (live submissions against a running kernel) ------------------------

    def start(self) -> None:
        """Seed the pre-known events of an online run (fault plan only).

        The online twin of the :meth:`run` preamble: arrivals come in via
        :meth:`submit` and the periodic timer is armed on the first
        submission (so its first tick is ``first_arrival + interval``,
        exactly as in an offline replay).  The caller then drives
        ``self.kernel`` with ``step()`` / ``run_until()``.
        """
        if not self.online:
            raise RuntimeError("start() is only meaningful in online mode; use run()")
        for injection in self.fault_plan:
            self.kernel.push(
                Event(
                    time=injection.time,
                    kind=_FAULT_EVENT_KINDS[injection.kind],
                    payload=injection,
                )
            )

    def submit(self, spec: JobSpec) -> None:
        """Append a job to a live online run and schedule its arrival.

        The submission contract: job ids are unique, and the arrival time
        must not lie in the past of the kernel clock (enforced again by
        :meth:`~repro.sim.kernel.SimulationKernel.inject`).  Submissions
        keep the trace sorted, so online arrival order — and therefore
        the deterministic event order — matches an offline replay of the
        same jobs.
        """
        if not self.online:
            raise RuntimeError("submit() requires online mode")
        if self.closed:
            raise RuntimeError("cannot submit to a closed simulator")
        if spec.job_id in self._spec_index:
            raise ValueError(f"job id {spec.job_id!r} was already submitted")
        if self.trace and spec.arrival_time < self.trace[-1].arrival_time - 1e-9:
            raise ValueError(
                f"submission at t={spec.arrival_time} arrives before the previous "
                f"submission at t={self.trace[-1].arrival_time} (arrivals must be "
                f"monotone in online mode)"
            )
        self.trace.append(spec)
        self._spec_index[spec.job_id] = spec
        if self.scheduler.timer_interval is not None and not self._timer_armed:
            self.kernel.inject(
                Event(
                    time=spec.arrival_time + self.scheduler.timer_interval,
                    kind=EventKind.TIMER,
                )
            )
            self._timer_armed = True
        self.kernel.inject(
            Event(time=spec.arrival_time, kind=EventKind.JOB_ARRIVAL, job_id=spec.job_id)
        )

    def close(self) -> None:
        """Declare the online submission stream finished.

        Until closed, ``_all_done`` never holds: the run is open-ended,
        so self-re-arming timers keep ticking and the kernel keeps
        accepting work — matching an offline run whose trace still has
        unarrived jobs.  After closing, the run drains exactly like an
        offline one.
        """
        self.closed = True

    def build_result(self) -> SimulationResult:
        """Assemble the result of an online run (callable at any point)."""
        return self._build_result()

    # -- state snapshots ------------------------------------------------------------------------

    def _state(self) -> ClusterState:
        # Scheduler callbacks may read any job, so flush the ledger's
        # pending progress into the Job objects first.
        self.ledger.materialize_all()
        return ClusterState(
            now=self.now,
            topology=self.topology,
            throughput_model=self.throughput_model,
            allocation=self.allocation,
            jobs=self.jobs,
            unavailable_gpus=self.faults.unavailable_gpus(),
        )

    def _all_done(self) -> bool:
        if not self.closed:
            # An open online run can always receive more submissions, so
            # it is never "done" — exactly like an offline run whose
            # trace still holds unarrived jobs.
            return False
        if len(self.jobs) < len(self.trace):
            return False
        return all(job.is_completed for job in self.jobs.values())

    # -- time advancement --------------------------------------------------------------------------

    def _on_advance(self, to_time: float) -> None:
        """Kernel advance hook: GPU busy-time accounting + ledger progress."""
        busy_gpus = len(self.allocation.used_gpus())
        self._busy_gpu_time += busy_gpus * (to_time - self.kernel.now)
        if self.faults.down_nodes:
            self.faults.charge_downtime(to_time - self.kernel.now)
        self.ledger.advance_to(to_time)

    def _advance_time(self, to_time: float) -> None:
        """Advance the clock (historical entry point; kernel-guarded)."""
        self.kernel.advance(to_time)

    # -- event handlers (thin delegates into the strategy objects) ---------------------------------

    def admit_job(self, job_id: str) -> Job:
        """Create the :class:`Job` for an arriving spec and register it."""
        spec = self._spec_index[job_id]
        job = Job(spec)
        self.jobs[spec.job_id] = job
        self.ledger.register(job, self.now)
        return job

    def _handle_arrival(self, event: Event) -> None:
        self.handlers[EventKind.JOB_ARRIVAL].handle(event)

    def _handle_epoch_end(self, event: Event) -> None:
        self.handlers[EventKind.EPOCH_END].handle(event)

    def _handle_timer(self, event: Event) -> None:
        self.handlers[EventKind.TIMER].handle(event)

    def _complete_job(self, job: Job) -> None:
        job.mark_completed(self.now)
        self.ledger.clear_runtime(job.job_id)
        self.ledger.pull(job)
        # Remove the job's workers from the deployed allocation.
        mapping = {
            gpu: worker
            for gpu, worker in self.allocation.as_dict().items()
            if worker[0] != job.job_id
        }
        self.allocation = Allocation(
            {gpu: _worker(worker) for gpu, worker in mapping.items()}
        )
        proposal = self.scheduler.on_job_completion(job, self._state())
        if proposal is not None:
            self._apply_allocation(proposal)

    # -- allocation application -----------------------------------------------------------------------

    def _apply_allocation(self, proposal: Allocation) -> None:
        self._validate_proposal(proposal)
        changed = self.allocation.changed_jobs(proposal)
        if not changed:
            return
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "apply_allocation", "sim", self.now, changed_jobs=len(changed)
            )
        for job_id in sorted(changed):
            job = self.jobs[job_id]
            new_config = proposal.config_of(job_id)
            if new_config is None:
                # Preemption: release the job's GPUs.
                if job.is_running:
                    job.stop_running(self.now)
                self.ledger.clear_runtime(job_id)
                self.ledger.pull(job)
                continue
            was_running = job.is_running
            old_workers = job.num_gpus
            job.start_running(
                self.now,
                gpu_ids=new_config.gpu_ids,
                local_batches=new_config.local_batches,
                lr_scaled=self.scheduler.lr_is_scaled(),
            )
            overhead = self._reconfiguration_overhead(
                job, was_running, old_workers, new_config.num_gpus
            )
            if not was_running:
                # A fault-evicted job restores its checkpoint on top of
                # the normal cold-start cost (0.0 when nothing is owed).
                overhead += self.faults.consume_restart(job_id)
            job.record_reconfiguration(overhead)
            self._num_reconfigs += 1
            self.ledger.pull(job)
            self.ledger.set_resume(job_id, self.now + overhead, self.now)
            rate = self.throughput_model.throughput(
                job.spec.model, list(new_config.local_batches), list(new_config.gpu_ids)
            )
            if self.faults.degraded:
                rate *= self.faults.placement_factor(new_config.gpu_ids)
            if rate < self.config.min_progress_rate:
                raise RuntimeError(
                    f"configuration of job {job_id} yields throughput {rate:.3g} "
                    f"samples/s which is below the progress guard"
                )
            self.ledger.set_rate(job_id, rate)
        self.allocation = proposal
        # Re-schedule epoch boundaries for every re-configured running job.
        for job_id in sorted(changed):
            job = self.jobs[job_id]
            if job.is_running:
                self._schedule_epoch_end(job)

    def _validate_proposal(self, proposal: Allocation) -> None:
        proposal.validate(
            self.topology.num_gpus,
            max_local_batch={
                job_id: job.spec.max_local_batch for job_id, job in self.jobs.items()
            },
        )
        unavailable = self.faults.unavailable_gpus()
        if unavailable:
            dead = sorted(set(proposal.used_gpus()) & unavailable)
            if dead:
                raise ValueError(
                    f"allocation places workers on unavailable GPUs {dead} "
                    f"(nodes down: {sorted(self.faults.down_nodes)})"
                )
        for job_id in proposal.jobs():
            job = self.jobs.get(job_id)
            if job is None:
                raise ValueError(f"allocation references unknown job {job_id!r}")
            if job.is_completed:
                raise ValueError(f"allocation references completed job {job_id!r}")
            if job.arrival_time > self.now + 1e-9:
                raise ValueError(
                    f"allocation references job {job_id!r} before its arrival"
                )

    def _reconfiguration_overhead(
        self, job: Job, was_running: bool, old_workers: int, new_workers: int
    ) -> float:
        if not was_running:
            return self.config.start_overhead
        kind = self.scheduler.reconfiguration_kind
        return self.overheads.reconfiguration_overhead(
            job.spec.model,
            kind,
            num_workers=max(new_workers, 1),
            workers_added=new_workers > old_workers,
        )

    # -- epoch-boundary scheduling ----------------------------------------------------------------------

    def _schedule_epoch_end(self, job: Job) -> None:
        rate = self.ledger.rate_of(job.job_id)
        if rate <= 0:
            return
        into_epoch = job.samples_processed % job.dataset_size
        remaining = job.dataset_size - into_epoch
        if remaining <= 0.5:
            remaining = job.dataset_size
        resume_at = max(self.now, self.ledger.resume_of(job.job_id))
        eta = resume_at + remaining / rate
        self.kernel.push(
            Event(
                time=eta,
                kind=EventKind.EPOCH_END,
                job_id=job.job_id,
                generation=job.generation,
            )
        )

    # -- result assembly -------------------------------------------------------------------------------------

    def _build_result(self) -> SimulationResult:
        self.ledger.materialize_all()
        completed = {
            job_id: job.completion_metrics()
            for job_id, job in self.jobs.items()
            if job.is_completed
        }
        incomplete = [
            spec.job_id
            for spec in self.trace
            if spec.job_id not in completed
        ]
        makespan = self.now - self.trace[0].arrival_time if self.jobs else 0.0
        gpu_time_total = self.topology.num_gpus * max(makespan, 1e-9)
        fault_metrics: Dict[str, float] = {}
        if self.config.faults is not None:
            fault_metrics = self.faults.metrics(
                gpu_time_busy=self._busy_gpu_time, gpu_time_total=gpu_time_total
            )
        profile: Dict[str, float] = {}
        if self.profile is not None:
            reporter = getattr(self.scheduler, "profile_phases", None)
            if callable(reporter):
                for phase, seconds in reporter().items():
                    self.profile.record(str(phase), float(seconds))
            profile = self.profile.as_dict()
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            num_gpus=self.topology.num_gpus,
            completed=completed,
            incomplete=incomplete,
            makespan=makespan,
            gpu_time_busy=self._busy_gpu_time,
            gpu_time_total=gpu_time_total,
            num_reconfigurations=self._num_reconfigs,
            events_processed=self.kernel.events_processed,
            jobs=dict(self.jobs),
            profile=profile,
            faults=fault_metrics,
        )


def _worker(worker_tuple):
    from repro.cluster.allocation import WorkerAssignment

    job_id, local_batch = worker_tuple
    return WorkerAssignment(job_id=job_id, local_batch=local_batch)
