"""Simulation telemetry: utilisation timelines and per-job Gantt data.

The headline metrics (JCT / execution / queuing time) compress a whole
run into three numbers.  For debugging scheduler behaviour — and for the
cluster-timeline example — it is useful to reconstruct *how* the cluster
was used over time: how many GPUs were busy at each instant, which jobs
held which GPUs, and how each job's batch size evolved.

All of this can be derived after the fact from the :class:`Job` records
kept by the simulator (run intervals, batch history, epoch records), so
telemetry costs nothing during the simulation itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.jobs.job import Job
from repro.sim.simulator import SimulationResult
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class GanttSegment:
    """One contiguous stretch of a job holding GPUs."""

    job_id: str
    start: float
    end: float
    num_gpus: int

    @property
    def duration(self) -> float:
        """Length of the segment in seconds."""
        return max(0.0, self.end - self.start)


def job_gantt(jobs: Mapping[str, Job]) -> List[GanttSegment]:
    """Flatten every job's run intervals into Gantt segments (time-ordered)."""
    segments: List[GanttSegment] = []
    for job_id, job in jobs.items():
        for interval in job.run_intervals:
            end = interval.end
            if end is None:
                # Open interval (job still running when the simulation
                # stopped); close it at the last known timestamp.
                end = job.completion_time if job.completion_time is not None else interval.start
            segments.append(
                GanttSegment(
                    job_id=job_id,
                    start=interval.start,
                    end=float(end),
                    num_gpus=interval.num_gpus,
                )
            )
    segments.sort(key=lambda s: (s.start, s.job_id))
    return segments


def busy_gpu_timeline(
    result: SimulationResult, num_points: int = 200
) -> Tuple[np.ndarray, np.ndarray]:
    """Sampled number of busy GPUs over the run's makespan.

    Returns ``(times, busy_gpus)`` where ``busy_gpus[i]`` is the number of
    GPUs held by any job at ``times[i]``.
    """
    check_positive_int(num_points, "num_points")
    segments = job_gantt(result.jobs)
    if not segments:
        return np.zeros(1), np.zeros(1)
    start = min(s.start for s in segments)
    end = max(s.end for s in segments)
    if end <= start:
        end = start + 1.0
    times = np.linspace(start, end, num_points)
    busy = np.zeros(num_points)
    for segment in segments:
        mask = (times >= segment.start) & (times < segment.end)
        busy[mask] += segment.num_gpus
    return times, busy


def utilization_timeline(
    result: SimulationResult, num_points: int = 200
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster utilisation (busy fraction of GPUs) over time."""
    times, busy = busy_gpu_timeline(result, num_points)
    return times, busy / max(result.num_gpus, 1)


def batch_size_timeline(job: Job) -> Tuple[np.ndarray, np.ndarray]:
    """Step-wise global batch size of one job over time."""
    if not job.batch_history:
        return np.zeros(0), np.zeros(0)
    times = np.asarray([t for t, _ in job.batch_history], dtype=float)
    batches = np.asarray([b for _, b in job.batch_history], dtype=float)
    return times, batches


def gpu_count_timeline(job: Job) -> Tuple[np.ndarray, np.ndarray]:
    """Step-wise GPU count of one job over time (from its run intervals)."""
    times: List[float] = []
    counts: List[float] = []
    for interval in job.run_intervals:
        times.append(interval.start)
        counts.append(float(interval.num_gpus))
        if interval.end is not None:
            times.append(interval.end)
            counts.append(0.0)
    return np.asarray(times), np.asarray(counts)


@dataclass(frozen=True)
class RunTelemetry:
    """Aggregated per-run telemetry used by reports and examples."""

    scheduler: str
    num_gpus: int
    makespan: float
    mean_utilization: float
    peak_utilization: float
    total_reconfigurations: int
    mean_gpus_per_job: float
    mean_peak_batch_ratio: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for tabular reports."""
        return {
            "scheduler": self.scheduler,
            "num_gpus": self.num_gpus,
            "makespan": self.makespan,
            "mean_utilization": self.mean_utilization,
            "peak_utilization": self.peak_utilization,
            "reconfigurations": self.total_reconfigurations,
            "mean_gpus_per_job": self.mean_gpus_per_job,
            "mean_peak_batch_ratio": self.mean_peak_batch_ratio,
        }


def summarize_run(result: SimulationResult, num_points: int = 400) -> RunTelemetry:
    """Build a :class:`RunTelemetry` summary from a simulation result."""
    times, utilization = utilization_timeline(result, num_points)
    per_job_gpus: List[float] = []
    batch_ratios: List[float] = []
    for job in result.jobs.values():
        if job.epoch_records:
            per_job_gpus.append(float(np.mean([r.num_gpus for r in job.epoch_records])))
            peak = max(r.global_batch for r in job.epoch_records)
            batch_ratios.append(peak / max(job.spec.base_batch, 1))
    return RunTelemetry(
        scheduler=result.scheduler_name,
        num_gpus=result.num_gpus,
        makespan=result.makespan,
        mean_utilization=float(np.mean(utilization)) if utilization.size else 0.0,
        peak_utilization=float(np.max(utilization)) if utilization.size else 0.0,
        total_reconfigurations=result.num_reconfigurations,
        mean_gpus_per_job=float(np.mean(per_job_gpus)) if per_job_gpus else 0.0,
        mean_peak_batch_ratio=float(np.mean(batch_ratios)) if batch_ratios else 0.0,
    )


def ascii_utilization_sparkline(
    result: SimulationResult, width: int = 60, height_levels: int = 8
) -> str:
    """A one-line sparkline of cluster utilisation over time."""
    check_positive_int(width, "width")
    check_positive_int(height_levels, "height_levels")
    _, utilization = utilization_timeline(result, num_points=width)
    blocks = " ▁▂▃▄▅▆▇█"
    levels = min(height_levels, len(blocks) - 1)
    chars = []
    for value in utilization:
        idx = int(round(min(max(value, 0.0), 1.0) * levels))
        chars.append(blocks[idx])
    return "".join(chars)
