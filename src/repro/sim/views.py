"""Per-partition kernel state views for hierarchical scheduling.

The hierarchical scheduler (:mod:`repro.core.partitioned`) runs one
independent ONES search per fixed-size cluster shard.  Each search must
see a perfectly ordinary :class:`~repro.baselines.base.ClusterState` —
dense GPU ids starting at 0, only its own jobs, only its own nodes — so
the genome layer, the throughput table and the evolution operators work
unchanged at any partition offset.

This module builds those views on top of the node-compaction machinery
from :mod:`repro.faults.masking`: a partition view is "compact these
nodes of the real cluster", where the node subset is the partition's
static slice minus whatever is currently down (faults) or on loan to the
wide-job path.  Because partitions are node-aligned on the homogeneous
star fabric, the compaction preserves throughput exactly — the same
argument that makes fault masking bit-exact.

Views are cheap (one array concatenation plus an allocation filter per
event) and the dense virtual topology/model pairs are cached per node
count, so steady-state events reuse the same instances.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.baselines.base import ClusterState
from repro.cluster.topology import ClusterTopology
from repro.faults.masking import CompactView, compact_nodes
from repro.jobs.job import Job
from repro.jobs.throughput import ThroughputModel


def partition_nodes(topology: ClusterTopology, partition_size: int) -> List[Tuple[int, ...]]:
    """Split ``topology`` into consecutive node-aligned shards.

    ``partition_size`` is in GPUs and must be a whole number of nodes
    that tiles the cluster exactly; the return value is one node-id tuple
    per partition, in ascending order.
    """
    gpus_per_node = topology.gpus_per_node
    if partition_size <= 0:
        raise ValueError(f"partition_size must be positive, got {partition_size}")
    if partition_size % gpus_per_node != 0:
        raise ValueError(
            f"partition_size ({partition_size}) must be a multiple of the node "
            f"size ({gpus_per_node} GPUs)"
        )
    if topology.num_gpus % partition_size != 0:
        raise ValueError(
            f"cluster size ({topology.num_gpus} GPUs) must be a multiple of "
            f"partition_size ({partition_size})"
        )
    nodes_per_partition = partition_size // gpus_per_node
    return [
        tuple(range(first, first + nodes_per_partition))
        for first in range(0, topology.num_nodes, nodes_per_partition)
    ]


def down_nodes(state: ClusterState) -> FrozenSet[int]:
    """Node ids currently unavailable (faulted), from the GPU mask."""
    if not state.unavailable_gpus:
        return frozenset()
    return frozenset(int(state.topology.node_of(g)) for g in state.unavailable_gpus)


class PartitionViewFactory:
    """Builds per-partition :class:`CompactView`\\ s over a live state.

    One factory per hierarchical scheduler instance: it owns the cache of
    dense virtual (topology, throughput model) pairs, keyed by node
    count, so every partition of the same effective size — and the same
    partition across events — shares instances.
    """

    def __init__(self, topology: ClusterTopology, allreduce_efficiency: float) -> None:
        self._node_spec = topology.node_spec
        self._allreduce_efficiency = float(allreduce_efficiency)
        self._dense: Dict[int, Tuple[ClusterTopology, ThroughputModel]] = {}

    def dense_cluster(self, num_nodes: int) -> Tuple[ClusterTopology, ThroughputModel]:
        """The cached dense cluster of ``num_nodes`` homogeneous nodes."""
        cached = self._dense.get(num_nodes)
        if cached is None:
            topology = ClusterTopology(num_nodes, self._node_spec)
            model = ThroughputModel(
                topology, allreduce_efficiency=self._allreduce_efficiency
            )
            cached = (topology, model)
            self._dense[num_nodes] = cached
        return cached

    def view(
        self,
        state: ClusterState,
        nodes: Sequence[int],
        jobs: Dict[str, Job],
    ) -> Optional[CompactView]:
        """The partition's private state over ``nodes``, or ``None`` if empty.

        ``nodes`` is the partition's *visible* node subset (static slice
        minus down / loaned nodes); ``jobs`` the jobs assigned to the
        partition.  Workers of those jobs sitting outside ``nodes`` are
        dropped from the view (``strict=False`` drain semantics): the
        partition's next deployment releases them.
        """
        nodes = tuple(int(n) for n in nodes)
        if not nodes:
            return None
        topology, model = self.dense_cluster(len(nodes))
        return compact_nodes(
            state, nodes, topology, model, jobs=jobs, strict=False
        )
