"""Discrete-event simulation of scheduling a trace on a GPU cluster.

The :class:`repro.sim.simulator.ClusterSimulator` replays a workload
trace against a scheduler and the analytic job models, producing per-job
completion / execution / queuing times — the measurements behind
Figs. 15, 17 and 18 and Table 4.
"""

from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.sim.telemetry import (
    GanttSegment,
    RunTelemetry,
    busy_gpu_timeline,
    job_gantt,
    summarize_run,
    utilization_timeline,
)

__all__ = [
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "GanttSegment",
    "RunTelemetry",
    "busy_gpu_timeline",
    "job_gantt",
    "summarize_run",
    "utilization_timeline",
]
