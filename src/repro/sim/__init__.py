"""Discrete-event simulation of scheduling a trace on a GPU cluster.

The :class:`repro.sim.simulator.ClusterSimulator` replays a workload
trace against a scheduler and the analytic job models, producing per-job
completion / execution / queuing times — the measurements behind
Figs. 15, 17 and 18 and Table 4.

Layering
--------
The simulation engine is split into three layers, composed by the
``ClusterSimulator`` facade:

``kernel``
    :class:`~repro.sim.kernel.SimulationKernel` — the policy-free event
    loop: clock, deterministic event heap, max-event / max-time guards,
    and the event-kind → handler dispatch table.  It knows nothing about
    jobs or schedulers.
``ledger``
    :class:`~repro.sim.ledger.ProgressLedger` — dense NumPy arrays of
    per-job rate / resume-time / last-progress plus the progress-bearing
    ``Job`` state, keyed by a job-index map.  Advancing the clock is a
    handful of array expressions over the *running* jobs (bit-identical
    to the scalar ``Job.advance`` it replaced); values are lazily
    materialized back into ``Job`` objects only when a handler or a
    scheduler snapshot is about to read them.
``handlers``
    :mod:`repro.sim.handlers` — one small strategy object per event
    kind (arrival, epoch end, timer) holding the domain logic.  ONES and
    every baseline share this single dispatch path.

Adding an event kind
--------------------
Add the kind to :class:`~repro.cluster.events.EventKind` (its integer
value is the same-timestamp tie-break priority), implement an
:class:`~repro.sim.kernel.EventHandler` strategy for it in
:mod:`repro.sim.handlers`, register it in
:func:`~repro.sim.handlers.default_handlers`, and push the first event
of that kind from wherever it originates (``ClusterSimulator.run`` seeds
arrivals and the first timer tick).

Profiling
---------
``SimulationConfig(collect_profile=True)`` threads a
:class:`~repro.sim.profiling.SimProfile` through the kernel: per-phase
wall-clock (ledger advance, per-event-kind handler time, scheduler
phases such as GPR refits) lands in ``SimulationResult.profile`` and in
experiment artifacts.
"""

from repro.sim.kernel import EventHandler, SimulationKernel
from repro.sim.ledger import ProgressLedger
from repro.sim.profiling import SimProfile
from repro.sim.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.sim.telemetry import (
    GanttSegment,
    RunTelemetry,
    busy_gpu_timeline,
    job_gantt,
    summarize_run,
    utilization_timeline,
)

__all__ = [
    "ClusterSimulator",
    "EventHandler",
    "ProgressLedger",
    "SimProfile",
    "SimulationConfig",
    "SimulationKernel",
    "SimulationResult",
    "GanttSegment",
    "RunTelemetry",
    "busy_gpu_timeline",
    "job_gantt",
    "summarize_run",
    "utilization_timeline",
]
