"""Event-handler strategies: the domain logic behind each event kind.

Each handler owns one :class:`~repro.cluster.events.EventKind` and runs
against the :class:`~repro.sim.simulator.ClusterSimulator` facade it was
bound to.  ONES and every baseline share this single dispatch path — a
scheduler only ever differs in what its callbacks return, never in how
events reach it.

Handlers follow the ledger synchronisation contract (see
:mod:`repro.sim.ledger`): call ``sim.ledger.materialize(job_id)`` before
*reading* a job's progress, and ``sim.ledger.pull(job)`` after
*mutating* it outside the ledger.  Building a scheduler snapshot via
``sim._state()`` materializes everything, so scheduler callbacks always
observe fully up-to-date ``Job`` objects.

Adding a new event kind — the ``NODE_DOWN`` worked example
----------------------------------------------------------
The fault-injection subsystem (:mod:`repro.faults`) added three kinds by
exactly this recipe; ``NODE_DOWN`` is the richest one to copy from:

1. **Add the kind to** :class:`~repro.cluster.events.EventKind`.  Its
   integer value is the same-timestamp tie-break priority — *append*
   new members (``NODE_DOWN = 5``) so every pre-existing ordering stays
   bit-identical, and order the new members against each other
   deliberately (``NODE_DOWN`` before ``NODE_UP`` so a coincident
   outage hand-off never sees both nodes up at once).
2. **Write a handler** subclassing :class:`~repro.sim.kernel.EventHandler`,
   binding the simulator in ``__init__`` and setting ``kind``.
   :class:`~repro.faults.handlers.NodeDownHandler` shows the full
   pattern, including the ledger contract: it ``materialize()``\\ s each
   victim before reading its progress, mutates the ``Job`` (rolls back
   uncheckpointed work, ``stop_running`` — which bumps the generation so
   stale ``EPOCH_END`` events are lazily dropped), then ``pull()``\\ s the
   job back into the ledger.  Domain-specific handlers can live next to
   their subsystem (``repro/faults/handlers.py``) rather than here.
3. **Register it** in :func:`default_handlers` (or pass a custom handler
   map to the simulator) and **push the first event** from wherever it
   originates — fault events are seeded by ``ClusterSimulator.run`` from
   the run's :class:`~repro.faults.plan.FaultPlan`, with the plan entry
   riding in ``Event.payload``.
4. If the handler must make the *scheduler* react, expose a callback on
   :class:`~repro.baselines.base.SchedulerBase` (``NODE_DOWN`` added
   ``on_fault``) with a safe default, and call it through
   ``sim._state()`` / ``sim._apply_allocation`` so every policy reacts
   through the same path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.cluster.events import Event, EventKind
from repro.faults.handlers import fault_handlers
from repro.sim.kernel import EventHandler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (facade imports us)
    from repro.sim.simulator import ClusterSimulator


class ArrivalHandler(EventHandler):
    """``JOB_ARRIVAL``: materialise the job and offer it to the scheduler."""

    kind = EventKind.JOB_ARRIVAL

    def __init__(self, sim: "ClusterSimulator") -> None:
        self.sim = sim

    def handle(self, event: Event) -> None:
        sim = self.sim
        job = sim.admit_job(event.job_id)
        proposal = sim.scheduler.on_job_arrival(job, sim._state())
        if proposal is not None:
            sim._apply_allocation(proposal)


class EpochEndHandler(EventHandler):
    """``EPOCH_END``: record the epoch, test convergence, notify the scheduler.

    Stale events — scheduled before a re-configuration bumped the job's
    generation — are dropped without touching the ledger or the
    scheduler (lazy invalidation; see :mod:`repro.cluster.events`).
    """

    kind = EventKind.EPOCH_END

    def __init__(self, sim: "ClusterSimulator") -> None:
        self.sim = sim

    def handle(self, event: Event) -> None:
        sim = self.sim
        job = sim.jobs.get(event.job_id)
        if job is None or not job.is_running:
            return
        if event.generation != job.generation:
            return  # stale event from before a re-configuration
        sim.ledger.materialize(job.job_id)
        # Snap tiny floating-point drift onto the epoch boundary so epochs
        # are not double-counted.
        boundary = round(job.samples_processed / job.dataset_size) * job.dataset_size
        if boundary > 0 and abs(job.samples_processed - boundary) < 0.5:
            job.samples_processed = float(boundary)
            sim.ledger.pull(job)
        record = job.complete_epoch(sim.now)
        if job.is_converged:
            sim._complete_job(job)
            return
        proposal = sim.scheduler.on_epoch_end(job, record, sim._state())
        if proposal is not None:
            sim._apply_allocation(proposal)
        if job.is_running and event.generation == job.generation:
            # Configuration unchanged: schedule the next epoch boundary.
            sim._schedule_epoch_end(job)


class TimerHandler(EventHandler):
    """``TIMER``: periodic rescheduling tick, self-re-arming until done."""

    kind = EventKind.TIMER

    def __init__(self, sim: "ClusterSimulator") -> None:
        self.sim = sim

    def handle(self, event: Event) -> None:
        sim = self.sim
        proposal = sim.scheduler.on_timer(sim._state())
        if proposal is not None:
            sim._apply_allocation(proposal)
        if sim.scheduler.timer_interval is not None and not sim._all_done():
            sim.kernel.push(
                Event(
                    time=sim.now + sim.scheduler.timer_interval,
                    kind=EventKind.TIMER,
                )
            )


def default_handlers(sim: "ClusterSimulator") -> Dict[EventKind, EventHandler]:
    """The standard handler set shared by ONES and every baseline.

    ``JOB_COMPLETION`` / ``RECONFIG_DONE`` have no standalone handlers:
    completions are folded into the epoch-end path (a job can only
    converge at an epoch boundary) and re-configuration ends are modelled
    as progress-resume times in the ledger.  The fault kinds
    (``NODE_DOWN`` / ``NODE_UP`` / ``GPU_DEGRADED``) are always
    registered — registration costs three dict entries; without a fault
    plan no such event is ever pushed, so the zero-fault loop is
    untouched.
    """
    handlers = [ArrivalHandler(sim), EpochEndHandler(sim), TimerHandler(sim)]
    handlers.extend(fault_handlers(sim))
    return {handler.kind: handler for handler in handlers}
