"""Per-phase wall-clock profiling of a simulation run.

A :class:`SimProfile` is the cheap, always-serialisable record of where a
simulation spent its host wall-clock: advancing the progress ledger,
inside each event-kind handler (which includes the scheduler callback
that handler invokes), and — for schedulers that report it, like ONES —
inside predictor refits.  Schedulers may attribute finer-grained phases
through :meth:`SimProfile.record`; ONES reports its per-operator
evolution breakdown this way (``evo_fill``, ``evo_crossover``,
``evo_mutation``, ``evo_selection``) plus the scoring-cache phases
``rescore_full`` (decomposition rebuilds) and ``rescore_delta``
(incremental cache reuse) — see
:mod:`repro.core.scoring_incremental`.  It is threaded through the
experiment layer by
``SimulationConfig.collect_profile``: any declarative
:class:`~repro.experiments.spec.RunSpec` can switch it on, and the
resulting phase table rides along in the ``SimulationResult`` (and hence
in sweep artifacts) so grid runs can attribute their cost.

Profiling is off by default: wall-clock is host-dependent, so enabling
it makes artifacts non-reproducible across machines by design.  The
simulator keeps the hot loop free of timer calls when disabled.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Mapping, Optional

from repro.cluster.events import EventKind


class SimProfile:
    """Accumulates per-phase wall-clock seconds and per-kind event counts."""

    def __init__(self) -> None:
        self.advance_seconds: float = 0.0
        self.handler_seconds: Dict[EventKind, float] = {}
        self.event_counts: Dict[EventKind, int] = {}
        self.extra_seconds: Dict[str, float] = {}
        self._started = perf_counter()
        #: Set by :meth:`from_dict` so a deserialised profile reports
        #: the original run's total instead of this process's clock.
        self._total_seconds: Optional[float] = None

    # -- timers used by the kernel ------------------------------------------------------

    def time_advance(self, start: float) -> None:
        """Charge ``perf_counter() - start`` to the ledger/clock phase."""
        self.advance_seconds += perf_counter() - start

    def time_handler(self, kind: EventKind, start: float) -> None:
        """Charge ``perf_counter() - start`` to one event kind's handler."""
        elapsed = perf_counter() - start
        self.handler_seconds[kind] = self.handler_seconds.get(kind, 0.0) + elapsed
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1

    def record(self, phase: str, seconds: float) -> None:
        """Attribute extra seconds to a named phase (e.g. ``gpr_refit``)."""
        self.extra_seconds[phase] = self.extra_seconds.get(phase, 0.0) + seconds

    # -- export -------------------------------------------------------------------------

    def as_dict(self) -> Dict[str, float]:
        """Flat profiling table: ``*_seconds`` wall-clock phases plus
        ``events_<kind>`` per-kind event counts (floats for JSON
        uniformity — not seconds).

        Event kinds serialise as their *names* (``handler_timer_seconds``,
        ``events_node_down``), never enum reprs, so artifact keys stay
        stable across enum reordering and are parseable by
        :meth:`from_dict`.
        """
        total = (
            self._total_seconds
            if self._total_seconds is not None
            else perf_counter() - self._started
        )
        payload: Dict[str, float] = {
            "total_seconds": total,
            "advance_seconds": self.advance_seconds,
        }
        for kind, seconds in sorted(self.handler_seconds.items()):
            payload[f"handler_{kind.name.lower()}_seconds"] = seconds
        for kind, count in sorted(self.event_counts.items()):
            payload[f"events_{kind.name.lower()}"] = float(count)
        for phase, seconds in sorted(self.extra_seconds.items()):
            key = f"{phase}_seconds"
            if key in payload:
                # Never let a scheduler-reported phase name clobber a
                # kernel-recorded key (e.g. a phase called "advance").
                key = f"scheduler_{key}"
            payload[key] = seconds
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "SimProfile":
        """Rebuild a profile from :meth:`as_dict` output.

        ``handler_*``/``events_*`` keys naming a known
        :class:`EventKind` round-trip back into the enum-keyed tables;
        scheduler phase keys land back in ``extra_seconds``.  For any
        profile recorded by this build,
        ``SimProfile.from_dict(p.as_dict()).as_dict() == p.as_dict()``.
        """
        profile = cls()
        profile._total_seconds = float(payload.get("total_seconds", 0.0))
        profile.advance_seconds = float(payload.get("advance_seconds", 0.0))
        known = {kind.name.lower(): kind for kind in EventKind}
        for key, value in payload.items():
            if key in ("total_seconds", "advance_seconds"):
                continue
            if key.startswith("handler_") and key.endswith("_seconds"):
                kind = known.get(key[len("handler_") : -len("_seconds")])
                if kind is not None:
                    profile.handler_seconds[kind] = float(value)
                    continue
            if key.startswith("events_"):
                kind = known.get(key[len("events_") :])
                if kind is not None:
                    profile.event_counts[kind] = int(value)
                    continue
            name = key[: -len("_seconds")] if key.endswith("_seconds") else key
            profile.extra_seconds[name] = float(value)
        return profile
