"""The discrete-event kernel: clock, heap, guards and handler dispatch.

The kernel is the policy-free core of the simulator.  It owns

* the simulation clock (``now``) with the time-goes-backwards guard,
* the :class:`~repro.cluster.events.EventQueue`,
* the run guards (``max_events`` / ``max_time``), and
* the event-kind → handler-strategy dispatch table.

Everything domain-specific — jobs, allocations, scheduler callbacks —
lives in the handler strategies (:mod:`repro.sim.handlers`) and the
:class:`~repro.sim.simulator.ClusterSimulator` facade that wires them
up.  The ``advance_hook`` is called exactly once per processed event,
*before* the handler, with the (clamped) target time; the facade uses it
for GPU busy-time accounting and to advance the vectorized
:class:`~repro.sim.ledger.ProgressLedger`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Mapping, Optional

from repro.cluster.events import Event, EventKind, EventQueue
from repro.obs.trace import TraceRecorder
from repro.sim.profiling import SimProfile

#: Called with the clamped target time before each event's handler runs.
AdvanceHook = Callable[[float], None]
#: Stop predicate checked after each handled event.
DonePredicate = Callable[[], bool]


class EventHandler:
    """Strategy interface: one event kind's domain logic.

    Subclasses implement :meth:`handle`; the kernel never inspects the
    event beyond its ``kind``.  See :mod:`repro.sim.handlers` for the
    concrete strategies and the recipe for adding a new event kind.
    """

    #: The :class:`EventKind` this handler consumes (dispatch key).
    kind: EventKind

    def handle(self, event: Event) -> None:
        """Process one event (the clock has already advanced to it)."""
        raise NotImplementedError


class SimulationKernel:
    """Deterministic event loop with guards and pluggable handlers."""

    def __init__(
        self,
        *,
        max_time: float,
        max_events: int,
        advance_hook: AdvanceHook,
        done: DonePredicate,
        handlers: Mapping[EventKind, EventHandler],
        profile: Optional[SimProfile] = None,
        tracer: Optional[TraceRecorder] = None,
    ) -> None:
        self.max_time = float(max_time)
        self.max_events = int(max_events)
        self.now: float = 0.0
        self.events = EventQueue()
        self.events_processed: int = 0
        self.profile = profile
        self.tracer = tracer
        self._advance_hook = advance_hook
        self._done = done
        self._handlers = dict(handlers)

    # -- event plumbing -----------------------------------------------------------------

    def push(self, event: Event) -> None:
        """Schedule an event (delegates to the deterministic queue)."""
        self.events.push(event)

    def inject(self, event: Event) -> None:
        """Push an event into a *live* kernel (online submissions).

        Unlike :meth:`push` — which trusts the caller because pre-run
        trace loading legitimately schedules the whole future — ``inject``
        is the entry point for events originating *outside* the event
        loop while it is running (job submissions against a live
        simulator).  It guards against scheduling into the past: an event
        earlier than the current clock could never be processed in order
        and would trip the backwards-time guard (or worse, silently
        corrupt causality if the clock already moved past it).
        """
        if event.time < self.now - 1e-9:
            raise RuntimeError(
                f"cannot inject event at t={event.time} into a kernel already "
                f"at t={self.now} (events must not be scheduled in the past)"
            )
        self.events.push(event)

    def advance(self, to_time: float) -> None:
        """Advance the clock to ``to_time`` (clamped to never go backwards).

        Raises ``RuntimeError`` when an event surfaces more than the
        float tolerance *before* the current clock — that is an event
        ordering bug, never a legal schedule.
        """
        if to_time < self.now - 1e-9:
            raise RuntimeError(
                f"time went backwards: {self.now} -> {to_time} (event ordering bug)"
            )
        to_time = max(to_time, self.now)
        self._advance_hook(to_time)
        self.now = to_time

    # -- incremental stepping (online mode) ---------------------------------------------

    def step(self) -> Optional[Event]:
        """Process exactly one due event; ``None`` when nothing is processable.

        The stepping twin of :meth:`run`: same clock advance, same
        profiling, same dispatch — but the caller owns the loop, so new
        events can be :meth:`inject`\\ ed between steps (a live service
        interleaving submissions with event processing).  Guards are
        honoured non-destructively: an event beyond ``max_time`` stays
        queued (``run`` discards it, but a stepping caller may still
        raise ``max_time`` and continue).
        """
        if not self.events or self.events_processed >= self.max_events:
            return None
        if self.events.peek().time > self.max_time:
            return None
        event = self.events.pop()
        self.events_processed += 1
        profile = self.profile
        if profile is None:
            self.advance(event.time)
        else:
            start = perf_counter()
            self.advance(event.time)
            profile.time_advance(start)
        self._dispatch(event, profile)
        return event

    def _dispatch(self, event: Event, profile: Optional[SimProfile]) -> None:
        """Run the event's handler, with optional profiling and tracing.

        When a tracer is installed *and enabled*, the handler runs inside
        an ``event:{KIND}`` span so scheduler decisions, fault evictions
        and service admissions emitted during handling nest under the
        kernel event that caused them.  The span's times are virtual
        (``event.time`` → ``self.now``), never wall-clock, preserving
        trace content-comparability across runs.
        """
        handler = self._handlers.get(event.kind)
        if handler is None:
            return
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            span = tracer.begin_span(
                f"event:{event.kind.name}", "kernel", event.time, job=event.job_id
            )
            try:
                if profile is None:
                    handler.handle(event)
                else:
                    start = perf_counter()
                    handler.handle(event)
                    profile.time_handler(event.kind, start)
            finally:
                tracer.end_span(span, t=self.now)
        else:
            if profile is None:
                handler.handle(event)
            else:
                start = perf_counter()
                handler.handle(event)
                profile.time_handler(event.kind, start)

    def run_until(self, to_time: float) -> int:
        """Process every event *strictly before* ``to_time``; return the count.

        Strictness is what makes online replay bit-identical to offline
        runs: events at exactly ``to_time`` stay queued, so an event
        injected *at* ``to_time`` (a job arrival) still sorts against
        them by the deterministic (time, kind, insertion) order instead
        of being processed after events it should precede.  The clock is
        not advanced past the last processed event — the next event (or
        an explicit :meth:`advance`) moves it.
        """
        processed = 0
        while self.events and self.events_processed < self.max_events:
            if self.events.peek().time >= to_time:
                break
            if self.step() is None:
                break
            processed += 1
            if self._done():
                break
        return processed

    # -- the loop -----------------------------------------------------------------------

    def run(self) -> int:
        """Process events until done / drained / guard-tripped.

        Returns the number of events processed.  The loop is exactly the
        historical ``ClusterSimulator.run`` loop: pop, stop past
        ``max_time``, advance the clock, dispatch to the kind's handler
        (unknown kinds are ignored, matching the old if/elif chain), stop
        when the done-predicate holds.
        """
        profile = self.profile
        while self.events and self.events_processed < self.max_events:
            event = self.events.pop()
            if event.time > self.max_time:
                break
            self.events_processed += 1
            if profile is None:
                self.advance(event.time)
            else:
                start = perf_counter()
                self.advance(event.time)
                profile.time_advance(start)
            self._dispatch(event, profile)
            if self._done():
                break
        return self.events_processed
