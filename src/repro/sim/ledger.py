"""Vectorized per-job progress state: the simulator's hot-path ledger.

Historically ``ClusterSimulator._advance_time`` walked *every* job in a
Python loop at *every* event — three dict lookups, a ``max``, and a
``Job.advance`` call (with a ``math.exp`` inside) per job per event.  On
long traces that loop, not the scheduler, became the simulation floor.

The :class:`ProgressLedger` replaces the per-job dicts
(``_job_throughput`` / ``_progress_resume`` / ``_last_progress``) and the
progress-bearing ``Job`` attributes with dense NumPy arrays keyed by a
job-index map, so advancing the clock is a handful of array expressions
over the *running* jobs only:

``start = max(last_progress, resume)``, ``delta = rate * (t - start)``,
then vectorized equivalents of ``Job.advance`` (samples, effective
epochs, loss-spike decay, Welford throughput profile).

Bit-exactness contract
----------------------
Every array expression performs the *same IEEE-754 double operations in
the same order* as the scalar code it replaced (element-wise ``+ - * /``
on float64 are correctly rounded, so NumPy and pure Python agree
bit-for-bit).  The one transcendental — the loss-spike decay
``exp(-fraction / recovery)`` — is still evaluated with ``math.exp`` per
job, because NumPy's SIMD ``np.exp`` is not guaranteed bit-identical to
libm; spikes are zero for almost every job at almost every event, so the
scalar fallback costs nothing.  The golden-trace and differential parity
suites pin this contract.

Lazy materialization
--------------------
Between events the arrays are authoritative for the progress state of
running jobs; the ``Job`` objects are stale.  ``materialize()`` writes
the arrays back into the ``Job`` attributes, and is called by the
simulator only when a handler (or a scheduler callback, via
``ClusterSimulator._state``) is about to *read* a job.  Conversely,
``pull()`` refreshes the arrays after a handler *mutates* a job
(epoch-boundary snapping, re-configuration).  A dirty mask keeps both
directions O(changed jobs).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.jobs.job import Job

#: Initial slot capacity; the arrays double when a trace outgrows them.
_INITIAL_CAPACITY = 64


class ProgressLedger:
    """Dense per-job runtime state keyed by a job-index map."""

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(1, int(capacity))
        self._index: Dict[str, int] = {}
        self._jobs: List[Optional[Job]] = []
        self._size = 0
        # simulator-owned runtime state (previously per-job dicts)
        self.rate = np.zeros(capacity)
        self.resume = np.zeros(capacity)
        self.last_progress = np.zeros(capacity)
        self.running = np.zeros(capacity, dtype=bool)
        # mirrored Job progress state (vectorized Job.advance)
        self.samples = np.zeros(capacity)
        self.effective_epochs = np.zeros(capacity)
        self.spike = np.zeros(capacity)
        self.gain = np.zeros(capacity)
        self.recovery = np.ones(capacity)
        self.dataset = np.ones(capacity)
        self.tp_count = np.zeros(capacity, dtype=np.int64)
        self.tp_mean = np.zeros(capacity)
        self.tp_m2 = np.zeros(capacity)
        self._dirty = np.zeros(capacity, dtype=bool)

    # -- slot management ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._index

    def _grow(self) -> None:
        for name in (
            "rate", "resume", "last_progress", "running", "samples",
            "effective_epochs", "spike", "gain", "recovery", "dataset",
            "tp_count", "tp_mean", "tp_m2", "_dirty",
        ):
            old = getattr(self, name)
            new = np.zeros(2 * old.shape[0], dtype=old.dtype)
            if name in ("recovery", "dataset"):
                new[old.shape[0]:] = 1.0
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def register(self, job: Job, now: float) -> int:
        """Add a job to the ledger at its arrival; returns its slot index."""
        if job.job_id in self._index:
            raise ValueError(f"job {job.job_id!r} already registered")
        if self._size == self.rate.shape[0]:
            self._grow()
        slot = self._size
        self._size += 1
        self._index[job.job_id] = slot
        self._jobs.append(job)
        self.last_progress[slot] = now
        self.recovery[slot] = job.spec.convergence.spike_recovery_epochs
        self.dataset[slot] = float(job.dataset_size)
        self.pull(job)
        return slot

    def slot_of(self, job_id: str) -> int:
        """Slot index of a registered job."""
        return self._index[job_id]

    # -- runtime state (mirrors the old simulator dicts) --------------------------------

    def rate_of(self, job_id: str) -> float:
        """Current progress rate (samples/s); 0.0 when not running."""
        return float(self.rate[self._index[job_id]])

    def resume_of(self, job_id: str) -> float:
        """Time at which the job resumes making progress (overhead end)."""
        return float(self.resume[self._index[job_id]])

    def set_rate(self, job_id: str, rate: float) -> None:
        """Set the job's progress rate (deployed-configuration throughput)."""
        self.rate[self._index[job_id]] = rate

    def set_resume(self, job_id: str, resume_at: float, now: float) -> None:
        """Charge a re-configuration: no progress until ``resume_at``."""
        slot = self._index[job_id]
        self.resume[slot] = resume_at
        self.last_progress[slot] = now

    def clear_runtime(self, job_id: str) -> None:
        """Drop rate/resume state (completion or preemption)."""
        slot = self._index[job_id]
        self.rate[slot] = 0.0
        self.resume[slot] = 0.0

    # -- synchronisation with the Job objects -------------------------------------------

    def pull(self, job: Job) -> None:
        """Refresh the arrays from a job that was mutated outside the ledger."""
        slot = self._index[job.job_id]
        self.running[slot] = job.is_running
        self.samples[slot] = job.samples_processed
        self.effective_epochs[slot] = job.effective_epochs
        self.spike[slot] = job._loss_spike
        profile = job.throughput_profile
        self.tp_count[slot] = profile.count
        self.tp_mean[slot] = profile.mean
        self.tp_m2[slot] = profile._m2
        if job.is_running:
            batch = max(1, job.global_batch)
            self.gain[slot] = job.spec.convergence.epoch_progress(batch, job.lr_scaled)
        self._dirty[slot] = False

    def materialize(self, job_id: str) -> None:
        """Write one job's array state back into its ``Job`` object."""
        slot = self._index[job_id]
        if self._dirty[slot]:
            self._write_back(slot)

    def materialize_all(self) -> None:
        """Write every dirty job's array state back into its ``Job``."""
        size = self._size
        dirty = np.flatnonzero(self._dirty[:size])
        for slot in dirty:
            self._write_back(int(slot))

    def _write_back(self, slot: int) -> None:
        job = self._jobs[slot]
        job.samples_processed = float(self.samples[slot])
        job.effective_epochs = float(self.effective_epochs[slot])
        job._loss_spike = float(self.spike[slot])
        profile = job.throughput_profile
        profile.count = int(self.tp_count[slot])
        profile.mean = float(self.tp_mean[slot])
        profile._m2 = float(self.tp_m2[slot])
        self._dirty[slot] = False

    # -- the vectorized hot path --------------------------------------------------------

    def advance_to(self, to_time: float) -> None:
        """Advance every running job's progress to ``to_time``.

        Array-expression equivalent of the old per-job loop::

            start = max(last_progress[j], resume[j])
            duration = max(0.0, to_time - start)
            if duration > 0 and rate[j] > 0:
                job.advance(rate[j] * duration, duration)
            last_progress[j] = to_time
        """
        size = self._size
        if size == 0:
            return
        running = np.flatnonzero(self.running[:size])
        if running.size == 0:
            return
        start = np.maximum(self.last_progress[running], self.resume[running])
        duration = np.maximum(to_time - start, 0.0)
        active = (duration > 0.0) & (self.rate[running] > 0.0)
        self.last_progress[running] = to_time
        if not active.any():
            return
        idx = running[active]
        duration = duration[active]
        delta = self.rate[idx] * duration
        # Job.advance returns early on a zero delta (possible only when
        # rate * duration underflows); match it exactly.
        nonzero = delta > 0.0
        if not nonzero.all():
            idx, duration, delta = idx[nonzero], duration[nonzero], delta[nonzero]
            if idx.size == 0:
                return
        fraction = delta / self.dataset[idx]
        self.samples[idx] += delta
        self.effective_epochs[idx] += fraction * self.gain[idx]
        # Loss-spike decay: scalar math.exp per *non-zero* spike (rare) so
        # the result stays bit-identical to Job.advance; zero spikes stay
        # exactly zero under any decay factor.
        spiked = np.flatnonzero(self.spike[idx] != 0.0)
        for k in spiked:
            slot = int(idx[k])
            self.spike[slot] *= math.exp(-float(fraction[k]) / float(self.recovery[slot]))
        # Welford throughput profile (RunningMean.update, element-wise).
        value = delta / duration
        self.tp_count[idx] += 1
        d1 = value - self.tp_mean[idx]
        self.tp_mean[idx] += d1 / self.tp_count[idx]
        self.tp_m2[idx] += d1 * (value - self.tp_mean[idx])
        self._dirty[idx] = True
