"""Placement quality measures and worker packing.

The evolution operators of ONES can scatter a job's workers across
servers; the *reorder* operator (Fig. 10) re-packs workers of the same
job onto contiguous GPUs, in order of each job's first occurrence, so
that all-reduce rings stay inside a server whenever possible.  The
helpers here implement that packing and the locality/fragmentation
measures used by reports and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.topology import ClusterTopology


def nodes_spanned(topology: ClusterTopology, gpu_ids: Iterable[int]) -> int:
    """Number of servers spanned by a set of GPUs (0 for an empty set)."""
    return topology.nodes_spanned(gpu_ids)


def placement_quality(topology: ClusterTopology, gpu_ids: Sequence[int]) -> float:
    """Locality score in ``(0, 1]`` for a worker placement.

    1.0 means the fewest possible servers are used for that worker count;
    lower values indicate avoidable spreading.  An empty placement scores
    1.0 (nothing to misplace).
    """
    gpu_ids = list(gpu_ids)
    if not gpu_ids:
        return 1.0
    per_node = topology.gpus_per_node
    minimal = int(np.ceil(len(gpu_ids) / per_node))
    actual = topology.nodes_spanned(gpu_ids)
    return minimal / actual


def fragmentation(topology: ClusterTopology, free_gpu_ids: Sequence[int]) -> float:
    """Fragmentation of the idle GPUs in ``[0, 1]``.

    0 when all idle GPUs are concentrated on as few servers as possible
    (so a multi-GPU job could be gang-scheduled locally), approaching 1
    when idle GPUs are scattered one per server.  With no idle GPUs the
    cluster is saturated and fragmentation is 0 by definition.
    """
    free_gpu_ids = list(free_gpu_ids)
    if not free_gpu_ids:
        return 0.0
    per_node = topology.gpus_per_node
    minimal_nodes = int(np.ceil(len(free_gpu_ids) / per_node))
    actual_nodes = topology.nodes_spanned(free_gpu_ids)
    if actual_nodes == minimal_nodes:
        return 0.0
    worst_nodes = min(len(free_gpu_ids), topology.num_nodes)
    if worst_nodes == minimal_nodes:
        return 0.0
    return (actual_nodes - minimal_nodes) / (worst_nodes - minimal_nodes)


def pack_workers(
    gpu_order: Sequence[int],
    workers_per_job: Dict[str, List[Tuple[int, int]]],
    job_order: Sequence[str],
) -> Dict[int, Tuple[str, int]]:
    """Re-pack workers contiguously in ``job_order`` over ``gpu_order``.

    Parameters
    ----------
    gpu_order:
        GPU ids in the order they should be filled (typically ascending,
        which groups GPUs of the same server together).
    workers_per_job:
        ``{job_id: [(old_gpu, local_batch), ...]}`` — the workers to place.
    job_order:
        Order of first occurrence of each job, which the reorder operator
        preserves (Fig. 10).

    Returns
    -------
    dict
        ``{gpu_id: (job_id, local_batch)}`` with each job's workers on a
        contiguous run of ``gpu_order``.
    """
    total_workers = sum(len(ws) for ws in workers_per_job.values())
    if total_workers > len(gpu_order):
        raise ValueError(
            f"cannot pack {total_workers} workers onto {len(gpu_order)} GPUs"
        )
    missing = [j for j in workers_per_job if j not in set(job_order)]
    if missing:
        raise ValueError(f"job_order is missing jobs: {missing}")
    packed: Dict[int, Tuple[str, int]] = {}
    cursor = 0
    for job_id in job_order:
        workers = workers_per_job.get(job_id, [])
        # Keep each worker's local batch; only the GPU binding changes.
        for _, local_batch in workers:
            packed[int(gpu_order[cursor])] = (job_id, int(local_batch))
            cursor += 1
    return packed


def contiguous_runs(gpu_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse sorted GPU ids into ``(start, length)`` runs.

    Useful for printing compact placement summaries in reports.
    """
    ids = sorted(int(g) for g in gpu_ids)
    if not ids:
        return []
    runs: List[Tuple[int, int]] = []
    start = prev = ids[0]
    for gpu in ids[1:]:
        if gpu == prev + 1:
            prev = gpu
            continue
        runs.append((start, prev - start + 1))
        start = prev = gpu
    runs.append((start, prev - start + 1))
    return runs
