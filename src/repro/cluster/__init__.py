"""GPU-cluster substrate.

The paper evaluates ONES on TACC Longhorn: 16 GPU servers, each with
4 NVIDIA V100 GPUs, NVLink within a node and EDR InfiniBand between
nodes.  This subpackage provides the simulated equivalent:

* :mod:`repro.cluster.devices` — GPU and node hardware descriptions.
* :mod:`repro.cluster.topology` — the cluster as a collection of nodes
  and GPUs with intra-/inter-node bandwidths (backed by a networkx graph).
* :mod:`repro.cluster.allocation` — a concrete assignment of GPU workers
  (with local batch sizes) to jobs.
* :mod:`repro.cluster.placement` — locality/fragmentation measures and
  worker-packing helpers used by the reorder operator.
* :mod:`repro.cluster.events` — the discrete-event queue.
* :mod:`repro.cluster.interference` — a co-location interference model
  motivating the one-job-per-GPU constraint (Eq. 4).
"""

from repro.cluster.devices import GPUSpec, NodeSpec, V100, LONGHORN_NODE
from repro.cluster.topology import ClusterTopology, make_longhorn_cluster
from repro.cluster.allocation import Allocation, WorkerAssignment
from repro.cluster.events import Event, EventKind, EventQueue
from repro.cluster.placement import (
    fragmentation,
    nodes_spanned,
    pack_workers,
    placement_quality,
)
from repro.cluster.interference import InterferenceModel

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "V100",
    "LONGHORN_NODE",
    "ClusterTopology",
    "make_longhorn_cluster",
    "Allocation",
    "WorkerAssignment",
    "Event",
    "EventKind",
    "EventQueue",
    "fragmentation",
    "nodes_spanned",
    "pack_workers",
    "placement_quality",
    "InterferenceModel",
]
