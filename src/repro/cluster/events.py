"""Discrete-event machinery for the cluster simulator.

The simulator advances time by processing events in chronological order.
Ties are broken by an explicit priority (job completions before arrivals
before epoch ends before timers) and then by insertion order, so runs are
fully deterministic for a given seed.

Events carry a *generation* counter: when a job is re-configured, its
pending epoch-end event becomes stale and must be ignored.  Rather than
searching the heap to delete it, the simulator bumps the job's generation
and drops stale events as they surface (standard lazy invalidation).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class EventKind(enum.IntEnum):
    """Kinds of simulation events, ordered by tie-break priority.

    The fault kinds are appended *after* the historical members so every
    pre-existing same-timestamp ordering is unchanged (zero-fault runs
    stay bit-identical).  Among the fault kinds, a ``NODE_DOWN`` at time
    ``t`` is applied before a ``NODE_UP`` at the same instant, so a
    coincident outage hand-off never observes both nodes up at once.
    """

    JOB_COMPLETION = 0
    JOB_ARRIVAL = 1
    EPOCH_END = 2
    RECONFIG_DONE = 3
    TIMER = 4
    NODE_DOWN = 5
    NODE_UP = 6
    GPU_DEGRADED = 7


@dataclass(frozen=True, order=False)
class Event:
    """A single simulation event.

    Attributes
    ----------
    time:
        Simulation timestamp (seconds).
    kind:
        The :class:`EventKind`.
    job_id:
        The job the event concerns (``None`` for pure timers).
    generation:
        Configuration generation of the job when the event was scheduled;
        used to drop events invalidated by a re-configuration.
    payload:
        Free-form extra data.
    """

    time: float
    kind: EventKind
    job_id: Optional[str] = None
    generation: int = 0
    payload: Any = None


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._size = 0

    def push(self, event: Event) -> None:
        """Insert an event."""
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(
            self._heap, (event.time, int(event.kind), next(self._counter), event)
        )
        self._size += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        _, _, _, event = heapq.heappop(self._heap)
        self._size -= 1
        return event

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on an empty EventQueue")
        return self._heap[0][3]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Event]:
        """Iterate over pending events in time order (non-destructive)."""
        return (item[3] for item in sorted(self._heap))

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._size = 0
