"""Cluster topology: nodes, GPUs and interconnect bandwidths.

A :class:`ClusterTopology` is the static layout the scheduler allocates
against.  GPUs are identified by consecutive integer ids ``0..num_gpus-1``
(the genome in Fig. 1 of the paper indexes GPUs the same way); each GPU
belongs to exactly one node.  The topology also answers bandwidth
queries — the throughput model needs the bottleneck bandwidth of the
all-reduce ring spanned by a set of GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.cluster.devices import LONGHORN_NODE, GPUSpec, NodeSpec
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class GPUHandle:
    """A physical GPU in the cluster: its global id, node and spec."""

    gpu_id: int
    node_id: int
    spec: GPUSpec


class ClusterTopology:
    """A cluster of homogeneous GPU servers.

    Parameters
    ----------
    num_nodes:
        Number of GPU servers.
    node_spec:
        Hardware description shared by every server.

    Notes
    -----
    The interconnect is represented as a star graph around a single
    network switch (Longhorn uses a non-blocking EDR fabric, so a star
    with uniform edge bandwidth is an adequate model).  The graph is kept
    as a :class:`networkx.Graph` so alternative topologies (fat trees,
    oversubscribed pods) can be plugged in by subclassing and overriding
    :meth:`_build_network`.
    """

    SWITCH = "switch"

    def __init__(self, num_nodes: int, node_spec: NodeSpec = LONGHORN_NODE) -> None:
        check_positive_int(num_nodes, "num_nodes")
        self._node_spec = node_spec
        self._num_nodes = int(num_nodes)
        self._gpus: List[GPUHandle] = []
        for node_id in range(num_nodes):
            for local in range(node_spec.gpus_per_node):
                gpu_id = node_id * node_spec.gpus_per_node + local
                self._gpus.append(GPUHandle(gpu_id, node_id, node_spec.gpu))
        self._node_of = np.array([g.node_id for g in self._gpus], dtype=np.int64)
        self._network = self._build_network()

    # -- construction --------------------------------------------------------

    def _build_network(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_node(self.SWITCH, kind="switch")
        for node_id in range(self._num_nodes):
            graph.add_node(node_id, kind="server")
            graph.add_edge(
                node_id,
                self.SWITCH,
                bandwidth=self._node_spec.inter_node_bandwidth,
                latency=self._node_spec.network_latency,
            )
        return graph

    # -- basic accessors ------------------------------------------------------

    @property
    def node_spec(self) -> NodeSpec:
        """Hardware description of each server."""
        return self._node_spec

    @property
    def gpu_spec(self) -> GPUSpec:
        """Hardware description of each GPU."""
        return self._node_spec.gpu

    @property
    def num_nodes(self) -> int:
        """Number of servers in the cluster."""
        return self._num_nodes

    @property
    def num_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return len(self._gpus)

    @property
    def gpus_per_node(self) -> int:
        """GPUs installed per server."""
        return self._node_spec.gpus_per_node

    @property
    def network(self) -> nx.Graph:
        """The interconnect graph (servers + switch)."""
        return self._network

    def gpu(self, gpu_id: int) -> GPUHandle:
        """Return the :class:`GPUHandle` with global id ``gpu_id``."""
        if not 0 <= gpu_id < self.num_gpus:
            raise IndexError(f"gpu_id {gpu_id} out of range [0, {self.num_gpus})")
        return self._gpus[gpu_id]

    def all_gpu_ids(self) -> np.ndarray:
        """All GPU ids as a numpy array (ascending)."""
        return np.arange(self.num_gpus, dtype=np.int64)

    def node_of(self, gpu_id) -> np.ndarray:
        """Vectorised map from GPU id(s) to node id(s)."""
        return self._node_of[np.asarray(gpu_id, dtype=np.int64)]

    def gpus_of_node(self, node_id: int) -> np.ndarray:
        """GPU ids hosted by server ``node_id``."""
        if not 0 <= node_id < self._num_nodes:
            raise IndexError(f"node_id {node_id} out of range [0, {self._num_nodes})")
        return np.nonzero(self._node_of == node_id)[0]

    # -- bandwidth queries ------------------------------------------------------

    def link_bandwidth(self, node_a: int, node_b: int) -> float:
        """Bottleneck bandwidth of the path between two servers (bytes/s).

        Within the same server this is the NVLink bandwidth; across servers
        it is the minimum edge bandwidth along the switch path.
        """
        if node_a == node_b:
            return self._node_spec.intra_node_bandwidth
        path = nx.shortest_path(self._network, node_a, node_b)
        bandwidths = [
            self._network.edges[u, v]["bandwidth"] for u, v in zip(path, path[1:])
        ]
        return float(min(bandwidths))

    def ring_bandwidth(self, gpu_ids: Sequence[int]) -> float:
        """Bottleneck bandwidth of an all-reduce ring over ``gpu_ids``.

        If all workers live on one server the ring runs over NVLink; as
        soon as the placement spans servers the slowest hop (the network)
        bounds the ring.  This is what makes the *reorder* operator (and
        job locality in general) matter.
        """
        gpu_ids = list(gpu_ids)
        if not gpu_ids:
            raise ValueError("ring_bandwidth requires at least one GPU")
        nodes = set(int(n) for n in self.node_of(gpu_ids))
        if len(nodes) == 1:
            return self._node_spec.intra_node_bandwidth
        # The bottleneck is the slowest inter-node hop of the ring.
        nodes = sorted(nodes)
        worst = min(
            self.link_bandwidth(a, b)
            for a, b in zip(nodes, nodes[1:] + nodes[:1])
        )
        return float(worst)

    def ring_latency(self, gpu_ids: Sequence[int]) -> float:
        """Per-hop latency of an all-reduce ring over ``gpu_ids`` (seconds)."""
        gpu_ids = list(gpu_ids)
        if not gpu_ids:
            raise ValueError("ring_latency requires at least one GPU")
        nodes = set(int(n) for n in self.node_of(gpu_ids))
        if len(nodes) == 1:
            return 1e-6  # NVLink hop
        return self._node_spec.network_latency

    # -- placement summaries ------------------------------------------------------

    def nodes_spanned(self, gpu_ids: Iterable[int]) -> int:
        """Number of distinct servers a set of GPUs touches."""
        gpu_ids = list(gpu_ids)
        if not gpu_ids:
            return 0
        return int(np.unique(self.node_of(gpu_ids)).size)

    def describe(self) -> Dict[str, object]:
        """A plain-dict summary used in reports and logs."""
        return {
            "nodes": self._num_nodes,
            "gpus": self.num_gpus,
            "gpus_per_node": self.gpus_per_node,
            "gpu": self.gpu_spec.name,
            "intra_node_bandwidth": self._node_spec.intra_node_bandwidth,
            "inter_node_bandwidth": self._node_spec.inter_node_bandwidth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterTopology(nodes={self._num_nodes}, "
            f"gpus={self.num_gpus}, gpu={self.gpu_spec.name})"
        )


def make_longhorn_cluster(num_gpus: int = 64) -> ClusterTopology:
    """Build a Longhorn-like cluster with ``num_gpus`` V100 GPUs.

    ``num_gpus`` must be a multiple of 4 (4 GPUs per Longhorn server).
    The paper's scalability study (Fig. 17/18) uses 16, 32, 48 and 64.
    """
    check_positive_int(num_gpus, "num_gpus")
    per_node = LONGHORN_NODE.gpus_per_node
    if num_gpus % per_node != 0:
        raise ValueError(
            f"num_gpus must be a multiple of {per_node} (GPUs per node), got {num_gpus}"
        )
    return ClusterTopology(num_gpus // per_node, LONGHORN_NODE)
