"""Concrete GPU allocations.

An :class:`Allocation` is the *deployed* counterpart of the schedule
genome (:class:`repro.core.schedule.Schedule`): a mapping from GPU id to
the worker running on it, where a worker is a ``(job_id, local batch
size)`` pair.  The simulator holds exactly one allocation at a time; the
scheduler proposes new ones and the simulator diffs them to decide which
jobs must be re-configured (and charged scaling overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class WorkerAssignment:
    """One worker: a job replica with its per-GPU (local) batch size."""

    job_id: str
    local_batch: int

    def __post_init__(self) -> None:
        if not isinstance(self.job_id, str) or not self.job_id:
            raise ValueError("job_id must be a non-empty string")
        if int(self.local_batch) < 1:
            raise ValueError(
                f"local_batch must be >= 1 for a placed worker, got {self.local_batch}"
            )
        object.__setattr__(self, "local_batch", int(self.local_batch))


@dataclass(frozen=True)
class JobConfig:
    """The resource configuration of one job inside an allocation."""

    job_id: str
    gpu_ids: Tuple[int, ...]
    local_batches: Tuple[int, ...]

    @property
    def num_gpus(self) -> int:
        """Number of GPUs allocated to the job (``c_j`` in the paper)."""
        return len(self.gpu_ids)

    @property
    def global_batch(self) -> int:
        """Global batch size (``B_j = Σ_i b_j^i``, Eq. 2)."""
        return int(sum(self.local_batches))


class Allocation:
    """An immutable assignment of jobs (with local batch sizes) to GPUs.

    The one-job-per-GPU constraint of Eq. 4 is enforced structurally: the
    underlying mapping has at most one worker per GPU id.
    """

    def __init__(self, assignments: Mapping[int, WorkerAssignment] | None = None) -> None:
        self._assignments: Dict[int, WorkerAssignment] = {}
        if assignments:
            for gpu_id, worker in assignments.items():
                gpu_id = int(gpu_id)
                if gpu_id < 0:
                    raise ValueError(f"gpu_id must be >= 0, got {gpu_id}")
                if not isinstance(worker, WorkerAssignment):
                    raise TypeError("assignments values must be WorkerAssignment")
                self._assignments[gpu_id] = worker

    # -- constructors -----------------------------------------------------------

    @classmethod
    def empty(cls) -> "Allocation":
        """An allocation with every GPU idle."""
        return cls({})

    @classmethod
    def from_job_map(
        cls, job_map: Mapping[str, Sequence[Tuple[int, int]]]
    ) -> "Allocation":
        """Build from ``{job_id: [(gpu_id, local_batch), ...]}``."""
        assignments: Dict[int, WorkerAssignment] = {}
        for job_id, workers in job_map.items():
            for gpu_id, local_batch in workers:
                gpu_id = int(gpu_id)
                if gpu_id in assignments:
                    raise ValueError(
                        f"GPU {gpu_id} assigned to both "
                        f"{assignments[gpu_id].job_id!r} and {job_id!r}"
                    )
                assignments[gpu_id] = WorkerAssignment(job_id, int(local_batch))
        return cls(assignments)

    # -- read access ------------------------------------------------------------

    def worker_on(self, gpu_id: int) -> Optional[WorkerAssignment]:
        """The worker on ``gpu_id`` or ``None`` if the GPU is idle."""
        return self._assignments.get(int(gpu_id))

    def gpus_of(self, job_id: str) -> List[int]:
        """GPU ids allocated to ``job_id`` (sorted)."""
        return sorted(
            gpu for gpu, worker in self._assignments.items() if worker.job_id == job_id
        )

    def config_of(self, job_id: str) -> Optional[JobConfig]:
        """The :class:`JobConfig` of ``job_id`` or ``None`` if not placed."""
        gpus = self.gpus_of(job_id)
        if not gpus:
            return None
        return JobConfig(
            job_id=job_id,
            gpu_ids=tuple(gpus),
            local_batches=tuple(self._assignments[g].local_batch for g in gpus),
        )

    def global_batch(self, job_id: str) -> int:
        """Global batch size of ``job_id`` (0 if not placed)."""
        return sum(
            worker.local_batch
            for worker in self._assignments.values()
            if worker.job_id == job_id
        )

    def num_gpus(self, job_id: str) -> int:
        """Number of GPUs allocated to ``job_id`` (0 if not placed)."""
        return sum(1 for worker in self._assignments.values() if worker.job_id == job_id)

    def jobs(self) -> Set[str]:
        """Ids of all jobs with at least one worker."""
        return {worker.job_id for worker in self._assignments.values()}

    def used_gpus(self) -> List[int]:
        """Ids of GPUs running a worker (sorted)."""
        return sorted(self._assignments)

    def free_gpus(self, all_gpu_ids: Iterable[int]) -> List[int]:
        """Ids from ``all_gpu_ids`` that are idle under this allocation."""
        used = set(self._assignments)
        return sorted(int(g) for g in all_gpu_ids if int(g) not in used)

    def as_dict(self) -> Dict[int, Tuple[str, int]]:
        """Plain-dict view ``{gpu_id: (job_id, local_batch)}``."""
        return {
            gpu: (worker.job_id, worker.local_batch)
            for gpu, worker in self._assignments.items()
        }

    def job_configs(self) -> Dict[str, JobConfig]:
        """All per-job configurations keyed by job id."""
        return {job_id: self.config_of(job_id) for job_id in self.jobs()}

    # -- comparisons --------------------------------------------------------------

    def changed_jobs(self, other: "Allocation") -> Set[str]:
        """Jobs whose configuration differs between ``self`` and ``other``.

        A job counts as changed if its set of GPUs or any local batch size
        differs.  Jobs present in only one allocation are included.
        """
        changed: Set[str] = set()
        for job_id in self.jobs() | other.jobs():
            mine = self.config_of(job_id)
            theirs = other.config_of(job_id)
            if mine != theirs:
                changed.add(job_id)
        return changed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self._assignments == other._assignments

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.as_dict().items())))

    def __len__(self) -> int:
        return len(self._assignments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        jobs = {j: (self.num_gpus(j), self.global_batch(j)) for j in sorted(self.jobs())}
        return f"Allocation(used_gpus={len(self)}, jobs={jobs})"

    # -- validation ---------------------------------------------------------------

    def validate(self, num_gpus: int, max_local_batch: Mapping[str, int] | None = None) -> None:
        """Check structural invariants against a cluster of ``num_gpus`` GPUs.

        Raises :class:`ValueError` when a GPU id is out of range or a local
        batch exceeds the per-job device limit in ``max_local_batch``.
        """
        for gpu_id, worker in self._assignments.items():
            if not 0 <= gpu_id < num_gpus:
                raise ValueError(
                    f"GPU id {gpu_id} outside the cluster range [0, {num_gpus})"
                )
            if max_local_batch is not None and worker.job_id in max_local_batch:
                limit = max_local_batch[worker.job_id]
                if worker.local_batch > limit:
                    raise ValueError(
                        f"job {worker.job_id!r} local batch {worker.local_batch} "
                        f"exceeds its device limit {limit}"
                    )

    def utilization(self, num_gpus: int) -> float:
        """Fraction of the cluster's GPUs that are busy."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        return len(self._assignments) / float(num_gpus)
