"""Co-location interference model.

The paper (§3.2.1, Eq. 4) forbids two jobs from sharing a GPU because of
"severe interference caused by GPU sharing" (citing the Philly trace
analysis).  ONES therefore never produces shared placements — but to make
that design decision testable (and to support an ablation where sharing
is permitted), this module provides a simple multiplicative slowdown
model for co-located workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class InterferenceModel:
    """Multiplicative throughput penalty for GPU sharing.

    Parameters
    ----------
    sharing_penalty:
        Fractional throughput loss per *additional* worker sharing the
        same GPU.  With the default 0.35, two co-located workers each run
        at ``1 / (1 + 0.35)`` ≈ 74% of their exclusive speed before the
        fair-share division, i.e. well below half of exclusive throughput
        each — matching the observation that sharing is rarely worth it.
    memory_pressure_penalty:
        Additional penalty applied when the combined working set exceeds
        the device memory (paging/thrashing).
    """

    sharing_penalty: float = 0.35
    memory_pressure_penalty: float = 0.5

    def __post_init__(self) -> None:
        check_in_range(self.sharing_penalty, "sharing_penalty", 0.0, 5.0)
        check_in_range(self.memory_pressure_penalty, "memory_pressure_penalty", 0.0, 1.0)

    def slowdown(self, num_colocated: int, memory_oversubscribed: bool = False) -> float:
        """Throughput multiplier (``<= 1``) for one worker among ``num_colocated``.

        ``num_colocated`` counts *all* workers on the GPU including the one
        being evaluated; 1 means exclusive access and returns 1.0.
        """
        if num_colocated < 1:
            raise ValueError(f"num_colocated must be >= 1, got {num_colocated}")
        if num_colocated == 1:
            return 1.0
        # Fair share of the device, degraded further by contention.
        contention = 1.0 + self.sharing_penalty * (num_colocated - 1)
        share = 1.0 / num_colocated
        factor = share / contention
        if memory_oversubscribed:
            factor *= 1.0 - self.memory_pressure_penalty
        return factor

    def effective_throughputs(
        self, exclusive_throughputs: Sequence[float], memory_oversubscribed: bool = False
    ) -> list[float]:
        """Apply the slowdown to each of several co-located workers."""
        n = len(exclusive_throughputs)
        factor = self.slowdown(max(n, 1), memory_oversubscribed)
        return [float(x) * factor for x in exclusive_throughputs]

    def aggregate_efficiency(self, num_colocated: int) -> float:
        """Total device throughput relative to exclusive use.

        Values below 1 quantify why Eq. 4 forbids sharing: the device does
        *less* total work when shared.
        """
        if num_colocated < 1:
            raise ValueError(f"num_colocated must be >= 1, got {num_colocated}")
        return num_colocated * self.slowdown(num_colocated) * 1.0
