"""Hardware descriptions of GPUs and GPU servers.

The numbers below describe the testbed of the paper (TACC Longhorn):
NVIDIA V100 GPUs (16 GB HBM2, ~15.7 TFLOP/s fp32 peak, NVLink inside a
node) on IBM Power9 servers connected by Mellanox EDR InfiniBand
(100 Gb/s).  The throughput model in :mod:`repro.jobs.throughput` consumes
these specs; nothing else in the library hard-codes hardware constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, GIGA, TERA
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"V100"``.
    peak_flops:
        Peak single-precision throughput in FLOP/s.
    memory_bytes:
        Device memory capacity in bytes; bounds the largest local batch a
        worker can hold.
    achievable_fraction:
        Fraction of the peak that dense DL kernels reach at a large batch
        size (DL workloads rarely exceed ~50% of fp32 peak).
    half_saturation_batch:
        Local batch size at which the GPU reaches half of its asymptotic
        efficiency.  Small local batches under-utilise the device, which
        is the effect behind Fig. 2's flat/fixed-batch curve.
    kernel_overhead:
        Fixed per-training-step host/launch overhead in seconds.
    """

    name: str
    peak_flops: float
    memory_bytes: float
    achievable_fraction: float = 0.45
    half_saturation_batch: float = 12.0
    kernel_overhead: float = 0.004

    def __post_init__(self) -> None:
        check_positive(self.peak_flops, "peak_flops")
        check_positive(self.memory_bytes, "memory_bytes")
        check_positive(self.achievable_fraction, "achievable_fraction")
        check_positive(self.half_saturation_batch, "half_saturation_batch")
        check_positive(self.kernel_overhead, "kernel_overhead")
        if self.achievable_fraction > 1.0:
            raise ValueError("achievable_fraction must be <= 1")

    def effective_flops(self, local_batch: int) -> float:
        """Sustained FLOP/s at a given per-GPU batch size.

        Efficiency follows a saturating curve ``b / (b + b_half)`` so that
        tiny local batches (the fixed-global-batch regime of Fig. 2) leave
        the device under-utilised.
        """
        if local_batch <= 0:
            return 0.0
        saturation = local_batch / (local_batch + self.half_saturation_batch)
        return self.peak_flops * self.achievable_fraction * saturation


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a GPU server.

    Parameters
    ----------
    name:
        Server model name.
    gpus_per_node:
        Number of GPUs installed in the server.
    gpu:
        The :class:`GPUSpec` of each installed GPU.
    intra_node_bandwidth:
        Peer-to-peer bandwidth between GPUs in the same server
        (NVLink), bytes/second.
    inter_node_bandwidth:
        Network bandwidth between servers (EDR InfiniBand), bytes/second.
    network_latency:
        Per-message network latency between servers, seconds.
    cpu_memory_bytes:
        Host memory (used by the checkpoint overhead model).
    host_storage_bandwidth:
        Bandwidth to the shared filesystem (HDFS via 1 Gb/s Ethernet in
        the paper); dominates checkpoint save/restore costs.
    """

    name: str
    gpus_per_node: int
    gpu: GPUSpec
    intra_node_bandwidth: float
    inter_node_bandwidth: float
    network_latency: float = 5e-6
    cpu_memory_bytes: float = 256 * GB
    host_storage_bandwidth: float = 0.125 * GB

    def __post_init__(self) -> None:
        check_positive_int(self.gpus_per_node, "gpus_per_node")
        check_positive(self.intra_node_bandwidth, "intra_node_bandwidth")
        check_positive(self.inter_node_bandwidth, "inter_node_bandwidth")
        check_positive(self.network_latency, "network_latency")
        check_positive(self.cpu_memory_bytes, "cpu_memory_bytes")
        check_positive(self.host_storage_bandwidth, "host_storage_bandwidth")


#: NVIDIA V100 (SXM2, 16 GB) as installed in TACC Longhorn nodes.
V100 = GPUSpec(
    name="V100",
    peak_flops=15.7 * TERA,
    memory_bytes=16 * GB,
    achievable_fraction=0.45,
    half_saturation_batch=12.0,
    kernel_overhead=0.004,
)

#: A Longhorn GPU server: 4 × V100 with NVLink, EDR InfiniBand uplink.
LONGHORN_NODE = NodeSpec(
    name="longhorn",
    gpus_per_node=4,
    gpu=V100,
    intra_node_bandwidth=150 * GB,
    inter_node_bandwidth=12.5 * GB,  # 100 Gb/s EDR InfiniBand
    network_latency=5e-6,
    cpu_memory_bytes=256 * GB,
    host_storage_bandwidth=0.125 * GB,  # 1 Gb/s Ethernet to HDFS
)
