"""Gandiva-style introspective time-slicing baseline.

Gandiva (Xiao et al., OSDI'18) is discussed in the paper's related work
(§5): it time-slices GPUs across jobs in rounds and continuously packs /
migrates jobs to improve locality.  It is not one of the paper's three
evaluated baselines, but it is the canonical "time-sharing-based slicing
strategy" the introduction contrasts against, so this reproduction ships
it as an *additional* reference scheduler for ablations and extensions.

The implementation models Gandiva's suspend/resume time-slicing at the
granularity the simulator supports (whole-job suspend/resume, not
intra-minibatch context switching):

* every job runs at its user-requested size with a fixed batch size,
* when demand exceeds capacity, jobs share the cluster in round-robin
  *time slices* of a configurable quantum (Gandiva's default round is of
  the order of a minute),
* placement prefers packing a job's workers onto as few nodes as
  possible, and at every rescheduling point jobs with poor locality are
  migrated onto better-packed GPUs if any are available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.cluster.placement import placement_quality
from repro.jobs.job import EpochRecord, Job
from repro.scaling.overhead import ReconfigurationKind
from repro.utils.units import MINUTE
from repro.utils.validation import check_positive


class GandivaScheduler(SchedulerBase):
    """Round-based time-slicing with locality-aware packing."""

    name = "Gandiva"
    capabilities = SchedulerCapabilities(
        strategy="greedy",
        allows_preemption=True,
        elastic_job_size=False,
        elastic_batch_size=False,
    )
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT
    timer_interval: Optional[float] = 1.0 * MINUTE

    def __init__(
        self,
        time_quantum: float = 1.0 * MINUTE,
        migration_quality_threshold: float = 0.75,
    ) -> None:
        """``time_quantum`` is the round length of the time-slicing loop.

        ``migration_quality_threshold`` is the locality score below which a
        running job becomes a candidate for migration onto better-packed
        GPUs (Gandiva's introspective packing).
        """
        check_positive(time_quantum, "time_quantum")
        if not 0.0 < migration_quality_threshold <= 1.0:
            raise ValueError("migration_quality_threshold must be in (0, 1]")
        self.timer_interval = float(time_quantum)
        self.migration_quality_threshold = float(migration_quality_threshold)
        # Round-robin cursor over job ids, so every job eventually gets a slice.
        self._rr_cursor: int = 0

    # -- event callbacks -------------------------------------------------------------------

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        # A new arrival may start immediately if idle GPUs can host it; a
        # full re-slicing happens only at round boundaries.
        free = state.free_gpus()
        want = job.spec.requested_gpus
        if want > len(free):
            return None
        gpus = pick_gpus_packed(state.topology, free, want)
        local = user_local_batch(job)
        return allocation_with_job(state.allocation, job, gpus, [local] * want)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._reslice(state)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        return None  # slicing happens on the timer, not on progress updates

    def on_timer(self, state: ClusterState) -> Optional[Allocation]:
        return self._reslice(state)

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        # Start a fresh slicing round over the surviving GPUs right away
        # instead of waiting out the current quantum.
        return self._reslice(state)

    # -- the round-robin slicing round -----------------------------------------------------------

    def _round_robin_order(self, state: ClusterState) -> List[Job]:
        """Active jobs in round-robin order starting at the rotating cursor."""
        jobs = sorted(state.active_jobs().values(), key=lambda j: (j.arrival_time, j.job_id))
        if not jobs:
            return []
        start = self._rr_cursor % len(jobs)
        self._rr_cursor += 1
        return jobs[start:] + jobs[:start]

    def _reslice(self, state: ClusterState) -> Optional[Allocation]:
        """Grant the next round of time slices and re-pack poorly placed jobs."""
        order = self._round_robin_order(state)
        if not order:
            return None
        allocation = Allocation.empty()
        free = state.available_gpu_ids()

        # First keep well-placed running jobs where they are (avoids
        # pointless checkpoint/restart churn), as long as they keep their
        # slice this round.
        keep: Dict[str, Job] = {}
        for job in order:
            current = state.allocation.config_of(job.job_id)
            if current is None:
                continue
            quality = placement_quality(state.topology, current.gpu_ids)
            if quality >= self.migration_quality_threshold:
                keep[job.job_id] = job

        granted = 0
        for job in order:
            want = job.spec.requested_gpus
            current = state.allocation.config_of(job.job_id)
            if job.job_id in keep and current is not None:
                if all(g in free for g in current.gpu_ids):
                    allocation = allocation_with_job(
                        allocation, job, current.gpu_ids, current.local_batches
                    )
                    free = [g for g in free if g not in set(current.gpu_ids)]
                    granted += 1
                    continue
            if want > len(free):
                continue  # this job waits for the next round
            gpus = pick_gpus_packed(state.topology, free, want)
            local = user_local_batch(job)
            allocation = allocation_with_job(allocation, job, gpus, [local] * want)
            free = [g for g in free if g not in set(gpus)]
            granted += 1

        if granted == 0 or allocation == state.allocation:
            return None
        return allocation
