"""Optimus: greedy marginal-gain resource allocation on a fixed interval.

Optimus (Peng et al., EuroSys'18) periodically (every 10 minutes in the
paper and in this reproduction) re-divides the cluster among the active
jobs: it estimates each job's remaining work by fitting its loss curve,
builds a resource→speed model, and greedily assigns one GPU at a time to
the job whose estimated completion time drops the most, until the
cluster is full or no job benefits.

Per Table 3 it is a **greedy** scheduler with **elastic job size**
(worker counts change between rounds) but a **fixed batch size**
(fixed per-worker batch, so the global batch grows with the worker
count and the learning rate is not re-scaled), and it relies on
checkpoint-based migration to apply re-configurations — both of which
are the costs ONES's evaluation highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.jobs.job import EpochRecord, Job
from repro.jobs.throughput import split_batch
from repro.scaling.overhead import ReconfigurationKind
from repro.utils.units import MINUTE


def fit_loss_curve(epochs: np.ndarray, losses: np.ndarray) -> Optional[Tuple[float, float, float]]:
    """Fit Optimus's convergence model ``loss(k) = 1 / (a·k + b) + c``.

    Returns ``(a, b, c)`` or ``None`` when the fit fails or is degenerate
    (fewer than three points, or a non-decreasing loss curve).
    """
    epochs = np.asarray(epochs, dtype=float)
    losses = np.asarray(losses, dtype=float)
    if epochs.size < 3 or losses.size != epochs.size:
        return None
    if losses[-1] >= losses[0]:
        return None

    def model(k, a, b, c):
        return 1.0 / (a * k + b) + c

    try:
        initial = (0.1, 1.0 / max(losses[0], 1e-6), max(losses[-1] * 0.5, 1e-3))
        params, _ = optimize.curve_fit(
            model,
            epochs,
            losses,
            p0=initial,
            bounds=([1e-6, 1e-6, 0.0], [np.inf, np.inf, np.inf]),
            maxfev=2000,
        )
    except (RuntimeError, ValueError):
        return None
    a, b, c = (float(v) for v in params)
    if not all(math.isfinite(v) for v in (a, b, c)):
        return None
    return a, b, c


class OptimusScheduler(SchedulerBase):
    """Periodic greedy marginal-gain allocation with loss-curve prediction."""

    name = "Optimus"
    capabilities = SchedulerCapabilities(
        strategy="greedy",
        allows_preemption=True,
        elastic_job_size=False,  # overridden below: Optimus *does* resize jobs
        elastic_batch_size=False,
    )
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT
    timer_interval: Optional[float] = 10.0 * MINUTE

    def __init__(
        self,
        scheduling_interval: float = 10.0 * MINUTE,
        max_gpus_per_job: int = 16,
        default_remaining_epochs: float = 20.0,
        convergence_epsilon: float = 0.05,
    ) -> None:
        if scheduling_interval <= 0:
            raise ValueError("scheduling_interval must be > 0")
        if max_gpus_per_job < 1:
            raise ValueError("max_gpus_per_job must be >= 1")
        self.timer_interval = float(scheduling_interval)
        self.max_gpus_per_job = int(max_gpus_per_job)
        self.default_remaining_epochs = float(default_remaining_epochs)
        self.convergence_epsilon = float(convergence_epsilon)
        # Table 3 row for Optimus: greedy, preemption allowed, elastic job
        # size, fixed batch size.
        self.capabilities = SchedulerCapabilities(
            strategy="greedy",
            allows_preemption=True,
            elastic_job_size=True,
            elastic_batch_size=False,
        )

    # -- remaining-work estimation -----------------------------------------------------------------

    def estimate_remaining_epochs(self, job: Job) -> float:
        """Predicted epochs to convergence from the job's loss history."""
        records = job.epoch_records
        if len(records) < 3:
            return self.default_remaining_epochs
        epochs = np.asarray([r.epoch_index for r in records], dtype=float)
        losses = np.asarray([r.loss for r in records], dtype=float)
        fit = fit_loss_curve(epochs, losses)
        if fit is None:
            return self.default_remaining_epochs
        a, b, c = fit
        # Converged when the fitted loss is within epsilon of its asymptote:
        # 1 / (a·k + b) < eps  →  k > (1/eps − b) / a.
        eps = max(self.convergence_epsilon * job.initial_loss, 1e-6)
        k_converged = (1.0 / eps - b) / a
        remaining = k_converged - job.epochs_completed + job.spec.convergence_patience
        return float(np.clip(remaining, 1.0, 500.0))

    def estimate_remaining_samples(self, job: Job) -> float:
        """Remaining samples = remaining epochs × epoch size."""
        return self.estimate_remaining_epochs(job) * job.dataset_size

    # -- speed model ------------------------------------------------------------------------------------

    def _speed(self, job: Job, num_gpus: int, state: ClusterState) -> float:
        """Model-predicted throughput at ``num_gpus`` workers, fixed local batch."""
        if num_gpus <= 0:
            return 0.0
        local = user_local_batch(job)
        gpus = pick_gpus_packed(state.topology, state.available_gpu_ids(), num_gpus)
        if len(gpus) < num_gpus:
            return 0.0
        return state.throughput_model.throughput(job.spec.model, [local] * num_gpus, gpus)

    # -- event callbacks ----------------------------------------------------------------------------------

    def on_timer(self, state: ClusterState) -> Optional[Allocation]:
        return self._reschedule(state)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        # Freed GPUs stay idle until the next periodic round — this is the
        # behaviour the paper criticises; keep it faithful.
        return None

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        # Arrivals wait for the next scheduling round as well.
        return None

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        # A capacity change is worth an immediate greedy round: the
        # periodic interval is tuned for workload drift, not for losing
        # (or regaining) whole servers.
        return self._reschedule(state)

    # -- the greedy round ------------------------------------------------------------------------------------

    def _reschedule(self, state: ClusterState) -> Optional[Allocation]:
        jobs = list(state.active_jobs().values())
        if not jobs:
            return None
        num_gpus = len(state.available_gpu_ids())
        if num_gpus == 0:
            return None
        remaining = {j.job_id: self.estimate_remaining_samples(j) for j in jobs}

        # Start from one GPU per job (arrival order) for fairness.
        target: Dict[str, int] = {}
        budget = num_gpus
        for job in sorted(jobs, key=lambda j: (j.arrival_time, j.job_id)):
            if budget <= 0:
                target[job.job_id] = 0
                continue
            target[job.job_id] = 1
            budget -= 1

        # Greedy marginal-gain loop: give the next GPU to the job whose
        # estimated remaining time decreases the most.
        while budget > 0:
            best_job, best_gain = None, 0.0
            for job in jobs:
                count = target[job.job_id]
                if count == 0 or count >= self.max_gpus_per_job:
                    continue
                speed_now = self._speed(job, count, state)
                speed_next = self._speed(job, count + 1, state)
                if speed_now <= 0 or speed_next <= 0:
                    continue
                work = remaining[job.job_id]
                gain = work / speed_now - work / speed_next
                if gain > best_gain:
                    best_gain, best_job = gain, job
            if best_job is None or best_gain <= 0:
                break
            target[best_job.job_id] += 1
            budget -= 1

        return self._place(state, jobs, target)

    def _place(
        self, state: ClusterState, jobs: List[Job], target: Dict[str, int]
    ) -> Optional[Allocation]:
        """Materialise GPU counts into an allocation, minimising churn."""
        allocation = Allocation.empty()
        free = state.available_gpu_ids()
        # First pass: jobs whose GPU count is unchanged keep their placement.
        moved: List[Job] = []
        for job in sorted(jobs, key=lambda j: (j.arrival_time, j.job_id)):
            want = target.get(job.job_id, 0)
            if want <= 0:
                continue
            current = state.allocation.config_of(job.job_id)
            if current is not None and current.num_gpus == want:
                allocation = allocation_with_job(
                    allocation, job, current.gpu_ids, current.local_batches
                )
                free = [g for g in free if g not in set(current.gpu_ids)]
            else:
                moved.append(job)
        # Second pass: (re)place resized jobs on the remaining GPUs.
        for job in moved:
            want = min(target[job.job_id], len(free))
            if want <= 0:
                continue
            gpus = pick_gpus_packed(state.topology, free, want)
            local = user_local_batch(job)
            allocation = allocation_with_job(allocation, job, gpus, [local] * len(gpus))
            free = [g for g in free if g not in set(gpus)]
        if allocation == state.allocation:
            return None
        return allocation
