"""Shortest-Remaining-Time-First (oracle) scheduler.

§3.2.1 motivates the SRUF objective by noting that *"serving the job
with the shortest remaining processing time (SRPT) is the solution"* to
minimising average JCT when remaining times are known.  This scheduler
implements that idealised policy with **oracle knowledge** of each job's
remaining epochs (it reads the ground-truth convergence profile, which
no online scheduler could).  It serves as an optimistic reference point
in ablation studies and as a sanity check that the simulator rewards
short-job-first behaviour; it is not one of the paper's baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    allocation_without_jobs,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.jobs.job import EpochRecord, Job
from repro.scaling.overhead import ReconfigurationKind


class SRTFScheduler(SchedulerBase):
    """Preemptive shortest-remaining-time-first with oracle estimates."""

    name = "SRTF-oracle"
    capabilities = SchedulerCapabilities(
        strategy="greedy",
        allows_preemption=True,
        elastic_job_size=False,
        elastic_batch_size=False,
    )
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._reschedule(state)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._reschedule(state)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        # Remaining times only shrink as epochs complete; the relative
        # order rarely changes mid-epoch, so re-evaluate only every few
        # epochs to limit preemption churn.
        if record.epoch_index % 5 == 0:
            return self._reschedule(state)
        return None

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        # Capacity changed: re-rank everything over the surviving GPUs.
        return self._reschedule(state)

    # -- oracle remaining time -------------------------------------------------------------

    def _remaining_time(self, job: Job, state: ClusterState) -> float:
        """Ground-truth remaining seconds at the user's configuration."""
        profile = job.spec.convergence
        target_epochs = profile.epochs_to_target(
            max(job.spec.base_batch, 1), lr_scaled=False
        )
        total_epochs = target_epochs + job.spec.convergence_patience
        remaining_epochs = max(0.0, total_epochs - job.epochs_completed)
        remaining_samples = remaining_epochs * job.dataset_size
        throughput = state.observed_or_estimated_throughput(job)
        if throughput <= 0:
            return float("inf")
        return remaining_samples / throughput

    # -- scheduling ---------------------------------------------------------------------------

    def _reschedule(self, state: ClusterState) -> Optional[Allocation]:
        jobs = list(state.active_jobs().values())
        if not jobs:
            return None
        order = sorted(jobs, key=lambda j: (self._remaining_time(j, state), j.arrival_time))
        allocation = Allocation.empty()
        free = state.available_gpu_ids()
        for job in order:
            want = job.spec.requested_gpus
            if want > len(free):
                continue
            gpus = pick_gpus_packed(state.topology, free, want)
            local = user_local_batch(job)
            allocation = allocation_with_job(allocation, job, gpus, [local] * want)
            free = [g for g in free if g not in set(gpus)]
        if allocation == state.allocation:
            return None
        return allocation
