"""First-In-First-Out gang scheduler.

The simplest reference policy: jobs are served strictly in arrival
order, each with exactly the GPU count the user requested (gang
scheduling), a fixed per-GPU batch size and no preemption.  It is not a
baseline from the paper's evaluation, but it is the behaviour most
cluster managers default to and is useful as a floor in ablations and as
a simple scheduler for unit tests.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.jobs.job import EpochRecord, Job
from repro.scaling.overhead import ReconfigurationKind


class FIFOScheduler(SchedulerBase):
    """Strict arrival-order gang scheduling with fixed job sizes."""

    name = "FIFO"
    capabilities = SchedulerCapabilities(
        strategy="greedy",
        allows_preemption=False,
        elastic_job_size=False,
        elastic_batch_size=False,
    )
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._fill(state)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._fill(state)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        # FIFO never reacts to progress updates.
        return None

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        # Evicted jobs rejoin the queue at their original arrival rank;
        # recovery is just another fill pass over the surviving GPUs.
        return self._fill(state)

    def _fill(self, state: ClusterState) -> Optional[Allocation]:
        """Launch pending jobs in arrival order while they fit."""
        allocation = state.allocation
        free = allocation.free_gpus(state.available_gpu_ids())
        changed = False
        for job in state.pending_jobs().values():
            want = job.spec.requested_gpus
            if want > len(free):
                # Strict FIFO: the head of the queue blocks everyone behind it.
                break
            gpus = pick_gpus_packed(state.topology, free, want)
            local = user_local_batch(job)
            allocation = allocation_with_job(allocation, job, gpus, [local] * want)
            free = [g for g in free if g not in set(gpus)]
            changed = True
        return allocation if changed else None
