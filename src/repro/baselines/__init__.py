"""Scheduler interface and the baseline schedulers of the evaluation.

Table 3 of the paper compares ONES against three state-of-the-art DL
schedulers; this subpackage implements the common scheduler interface
(:mod:`repro.baselines.base`) and the baselines:

* :mod:`repro.baselines.drl` — a deep-reinforcement-learning scheduler in
  the style of Chic (policy-gradient, one job (re)scheduled per action,
  no preemption, elastic job size).
* :mod:`repro.baselines.tiresias` — discretised Least-Attained-Service
  multi-level feedback queue, gang scheduling at a fixed user-requested
  job size, preemption allowed.
* :mod:`repro.baselines.optimus` — greedy marginal-gain GPU allocation
  driven by a remaining-time estimate, rescheduling every 10 minutes,
  checkpoint-based resizing.
* :mod:`repro.baselines.fifo` / :mod:`repro.baselines.srtf` — simple
  reference policies used in unit tests and ablations.
"""

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    pick_gpus_packed,
    user_local_batch,
)
from repro.baselines.fifo import FIFOScheduler
from repro.baselines.srtf import SRTFScheduler
from repro.baselines.tiresias import TiresiasScheduler
from repro.baselines.optimus import OptimusScheduler
from repro.baselines.drl import DRLScheduler, PolicyNetwork
from repro.baselines.gandiva import GandivaScheduler

__all__ = [
    "ClusterState",
    "SchedulerBase",
    "SchedulerCapabilities",
    "pick_gpus_packed",
    "user_local_batch",
    "FIFOScheduler",
    "SRTFScheduler",
    "TiresiasScheduler",
    "OptimusScheduler",
    "DRLScheduler",
    "PolicyNetwork",
    "GandivaScheduler",
]
