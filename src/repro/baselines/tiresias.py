"""Tiresias: discretised Least-Attained-Service scheduling.

Tiresias (Gu et al., NSDI'19) reduces average JCT without any knowledge
of job durations by prioritising jobs with the *least attained service*
(GPU-time consumed so far), discretised into a small number of priority
queues to limit preemption churn.  Per Table 3 of the ONES paper, the
baseline configuration here:

* keeps every job at its **fixed, user-requested GPU count** (no elastic
  job size),
* uses a **fixed batch size** (no elastic batch size),
* **allows preemption**: a long-running job can be preempted when
  lower-attained-service jobs are waiting,
* is a **greedy** policy — it sorts jobs by (queue level, arrival time)
  and gang-allocates in that order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.jobs.job import EpochRecord, Job
from repro.scaling.overhead import ReconfigurationKind
from repro.utils.units import HOUR


class TiresiasScheduler(SchedulerBase):
    """Discretised 2D-LAS multi-level feedback queue (Tiresias-L)."""

    name = "Tiresias"
    capabilities = SchedulerCapabilities(
        strategy="greedy",
        allows_preemption=True,
        elastic_job_size=False,
        elastic_batch_size=False,
    )
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT

    def __init__(self, queue_thresholds: Sequence[float] = (0.25 * HOUR, 1.0 * HOUR)) -> None:
        """``queue_thresholds`` are attained-service (GPU-seconds) promotion bounds.

        A job with attained service below the first threshold sits in the
        highest-priority queue; beyond the last threshold it falls into the
        lowest-priority queue.  The defaults are scaled-down versions of
        the thresholds in the Tiresias paper, matching the shorter jobs of
        the ONES trace.
        """
        thresholds = [float(t) for t in queue_thresholds]
        if any(t <= 0 for t in thresholds) or sorted(thresholds) != thresholds:
            raise ValueError("queue_thresholds must be positive and increasing")
        self.queue_thresholds = thresholds
        self._last_levels: dict[str, int] = {}

    # -- queue levels ------------------------------------------------------------------------

    def queue_level(self, job: Job, now: float) -> int:
        """Discretised priority level (0 = highest priority)."""
        attained = job.attained_service
        if job.is_running:
            # Include the service of the currently open interval.
            attained += job.num_gpus * max(0.0, now - job.run_intervals[-1].start)
        for level, threshold in enumerate(self.queue_thresholds):
            if attained < threshold:
                return level
        return len(self.queue_thresholds)

    # -- event callbacks -----------------------------------------------------------------------

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._reschedule(state)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._reschedule(state)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        # Re-evaluate only when some job crossed a queue threshold (the
        # discretisation exists precisely to avoid continuous preemption).
        levels = {
            job_id: self.queue_level(j, state.now)
            for job_id, j in state.active_jobs().items()
        }
        if levels != self._last_levels:
            self._last_levels = levels
            return self._reschedule(state)
        return None

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        # Evicted jobs keep their attained service, so they re-enter the
        # 2D-LAS order exactly where the queues place them.
        return self._reschedule(state)

    # -- core policy -------------------------------------------------------------------------------

    def _priority_order(self, state: ClusterState) -> List[Job]:
        """Jobs ordered by (queue level, arrival time) — the 2D-LAS order."""
        jobs = list(state.active_jobs().values())
        return sorted(
            jobs,
            key=lambda j: (self.queue_level(j, state.now), j.arrival_time, j.job_id),
        )

    def _reschedule(self, state: ClusterState) -> Optional[Allocation]:
        order = self._priority_order(state)
        allocation = Allocation.empty()
        free = state.available_gpu_ids()
        for job in order:
            want = job.spec.requested_gpus
            if want > len(free):
                continue  # gang scheduling: skip jobs that do not fit
            current = state.allocation.config_of(job.job_id)
            if current is not None and all(g in set(free) for g in current.gpu_ids):
                # Keep an already-running job on its GPUs to avoid a
                # needless checkpoint/restart cycle.
                gpus = list(current.gpu_ids)
                batches = list(current.local_batches)
            else:
                gpus = pick_gpus_packed(state.topology, free, want)
                batches = [user_local_batch(job)] * want
            allocation = allocation_with_job(allocation, job, gpus, batches)
            free = [g for g in free if g not in set(gpus)]
        self._last_levels = {
            job_id: self.queue_level(j, state.now)
            for job_id, j in state.active_jobs().items()
        }
        if allocation == state.allocation:
            return None
        return allocation
