"""Deep-reinforcement-learning scheduler (the DRL baseline).

§4.1 of the paper: *"We adopt the basic scheduler design in [Chic] but
modify its action space because we use the All-reduce architecture for
distributed training instead of parameter servers.  The scheduler trains
its scheduling policy based on DRL for purpose of minimizing JCT.  It can
dynamically determine the size of each job.  Only one job can be
rescheduled at each time."*  Per Table 3 the DRL baseline is a dynamic
policy with elastic job size but no preemption and no elastic batch size.

The implementation here is a policy-gradient (REINFORCE) agent:

* the **action space** at each scheduling event is
  ``{(pending job j, GPU count k)} ∪ {no-op}`` — launch one pending job
  with ``k`` workers on idle GPUs; running jobs are never touched
  (no preemption);
* the **policy** is a linear softmax over hand-crafted state/action
  features (waiting time, job size, model cost, cluster occupancy);
* **training** runs complete simulated episodes (small traces on a small
  cluster) and updates the policy with the REINFORCE gradient of the
  negative average JCT, with a moving-average baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import (
    ClusterState,
    SchedulerBase,
    SchedulerCapabilities,
    allocation_with_job,
    pick_gpus_packed,
    user_local_batch,
)
from repro.cluster.allocation import Allocation
from repro.jobs.job import EpochRecord, Job
from repro.scaling.overhead import ReconfigurationKind
from repro.utils.rng import SeedLike, as_generator

#: Number of features produced by :func:`action_features`.
NUM_ACTION_FEATURES = 8


def action_features(job: Job, num_gpus: int, state: ClusterState) -> np.ndarray:
    """Feature vector of the action "launch ``job`` with ``num_gpus`` workers"."""
    # Occupancy is measured against the *available* capacity, so the
    # policy's features stay meaningful while nodes are down (O(1): this
    # runs once per candidate action per decision step).
    total = state.topology.num_gpus - len(state.unavailable_gpus)
    free = len(state.free_gpus())
    waited = max(0.0, state.now - job.arrival_time)
    return np.array(
        [
            1.0,  # bias
            math.log1p(job.dataset_size) / 12.0,
            math.log1p(job.spec.model.flops_per_sample) / 30.0,
            min(waited / 600.0, 5.0),
            num_gpus / 8.0,
            free / max(total, 1),
            job.spec.requested_gpus / 8.0,
            1.0 if num_gpus == job.spec.requested_gpus else 0.0,
        ],
        dtype=float,
    )


@dataclass
class PolicyNetwork:
    """Linear-softmax policy over scheduling actions."""

    weights: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_ACTION_FEATURES, dtype=float)
    )

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=float)
        if self.weights.shape != (NUM_ACTION_FEATURES,):
            raise ValueError(
                f"weights must have shape ({NUM_ACTION_FEATURES},), got {self.weights.shape}"
            )

    def probabilities(self, features: np.ndarray) -> np.ndarray:
        """Softmax action probabilities for a feature matrix (rows = actions)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        logits = features @ self.weights
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def select(
        self, features: np.ndarray, rng: np.random.Generator, greedy: bool = False
    ) -> Tuple[int, np.ndarray]:
        """Pick an action index; returns ``(index, probabilities)``."""
        probs = self.probabilities(features)
        if greedy:
            return int(np.argmax(probs)), probs
        return int(rng.choice(len(probs), p=probs)), probs

    def grad_log_prob(self, features: np.ndarray, action: int) -> np.ndarray:
        """∇_w log π(action | features) for the linear softmax policy."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        probs = self.probabilities(features)
        return features[action] - probs @ features

    def update(self, gradient: np.ndarray, learning_rate: float) -> None:
        """Apply one ascent step on the expected return."""
        self.weights = self.weights + learning_rate * np.asarray(gradient, dtype=float)


class DRLScheduler(SchedulerBase):
    """Policy-gradient scheduler: one launch decision per scheduling event."""

    name = "DRL"
    capabilities = SchedulerCapabilities(
        strategy="dynamic",
        allows_preemption=False,
        elastic_job_size=True,
        elastic_batch_size=False,
    )
    reconfiguration_kind = ReconfigurationKind.CHECKPOINT

    #: Worker counts the policy may launch a job with.
    size_choices: Tuple[int, ...] = (1, 2, 4, 8)

    def __init__(
        self,
        policy: Optional[PolicyNetwork] = None,
        seed: SeedLike = None,
        greedy: bool = True,
        record_trajectory: bool = False,
    ) -> None:
        self.policy = policy or PolicyNetwork()
        self._rng = as_generator(seed)
        self.greedy = bool(greedy)
        self.record_trajectory = bool(record_trajectory)
        self.trajectory: List[Tuple[np.ndarray, int]] = []

    # -- event callbacks --------------------------------------------------------------------------

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._act(state)

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        return self._act(state)

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        return self._act(state)

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        # The policy only ever launches onto idle GPUs, so recovery is
        # one more decision step over the shrunken (or restored) pool.
        return self._act(state)

    # -- one decision ------------------------------------------------------------------------------

    def _candidate_actions(
        self, state: ClusterState
    ) -> List[Tuple[Job, int, np.ndarray]]:
        """Feasible launch actions: (pending job, gpu count, features).

        The agent is work-conserving: like the Chic design it always acts
        when a pending job fits on idle GPUs, and its policy only decides
        *which* job to launch and at *what* size.  (A learnable "defer"
        action combined with a greedy policy can deadlock an event-driven
        cluster by never launching anything, which no real operator would
        accept.)
        """
        free = state.free_gpus()
        actions: List[Tuple[Job, int, np.ndarray]] = []
        for job in state.pending_jobs().values():
            for size in self.size_choices:
                if size <= len(free):
                    actions.append((job, size, action_features(job, size, state)))
        return actions

    def _act(self, state: ClusterState) -> Optional[Allocation]:
        actions = self._candidate_actions(state)
        if not actions:
            return None  # nothing pending fits on the idle GPUs
        features = np.stack([feat for _, _, feat in actions])
        index, _ = self.policy.select(features, self._rng, greedy=self.greedy)
        if self.record_trajectory:
            self.trajectory.append((features, index))
        job, size, _ = actions[index]
        free = state.free_gpus()
        gpus = pick_gpus_packed(state.topology, free, size)
        if len(gpus) < size:
            return None
        local = user_local_batch(job)
        return allocation_with_job(state.allocation, job, gpus, [local] * size)

    # -- training ------------------------------------------------------------------------------------

    def reset_trajectory(self) -> None:
        """Clear the recorded (features, action) pairs of the last episode."""
        self.trajectory = []


@dataclass
class ReinforceTrainer:
    """REINFORCE training loop for the DRL scheduler.

    Episodes are full simulations of small traces on a small cluster; the
    return is the negative average JCT (so maximising return minimises
    JCT), standardised by a moving-average baseline.
    """

    episodes: int = 20
    jobs_per_episode: int = 12
    num_gpus: int = 16
    learning_rate: float = 0.05
    seed: Optional[int] = 0
    history: List[float] = field(default_factory=list)

    def train(self, policy: Optional[PolicyNetwork] = None) -> PolicyNetwork:
        """Run the training loop and return the trained policy."""
        # Imported lazily to avoid a circular import at package-load time.
        from repro.cluster.topology import make_longhorn_cluster
        from repro.sim.simulator import ClusterSimulator, SimulationConfig
        from repro.workload.trace import TraceConfig, TraceGenerator

        policy = policy or PolicyNetwork()
        rng = as_generator(self.seed)
        baseline: Optional[float] = None
        for episode in range(self.episodes):
            trace = TraceGenerator(
                TraceConfig(num_jobs=self.jobs_per_episode, arrival_rate=1.0 / 20.0),
                seed=int(rng.integers(2**31)),
            ).generate()
            scheduler = DRLScheduler(
                policy=policy,
                seed=int(rng.integers(2**31)),
                greedy=False,
                record_trajectory=True,
            )
            topology = make_longhorn_cluster(self.num_gpus)
            result = ClusterSimulator(
                topology,
                scheduler,
                trace,
                config=SimulationConfig(max_time=24 * 3600.0),
            ).run()
            if result.completed:
                avg_jct = result.average_jct
            else:
                avg_jct = result.makespan
            reward = -avg_jct / 1000.0
            self.history.append(avg_jct)
            if baseline is None:
                baseline = reward
            advantage = reward - baseline
            baseline = 0.9 * baseline + 0.1 * reward
            if scheduler.trajectory:
                gradient = np.zeros_like(policy.weights)
                for features, action in scheduler.trajectory:
                    gradient += policy.grad_log_prob(features, action)
                gradient *= advantage / len(scheduler.trajectory)
                policy.update(gradient, self.learning_rate)
        return policy
