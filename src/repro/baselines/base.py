"""The scheduler interface shared by ONES and all baselines.

A scheduler is an event-driven policy: the simulator notifies it of job
arrivals, epoch completions, job completions and (optionally) periodic
timers, and the scheduler may respond with a new
:class:`repro.cluster.allocation.Allocation` to deploy.  Returning
``None`` keeps the current allocation.

The :class:`ClusterState` passed to every callback is a read-only view
of everything a real scheduler could observe: the topology, the
currently-deployed allocation, and the live :class:`repro.jobs.job.Job`
objects with their measured throughput and progress reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.cluster.topology import ClusterTopology
from repro.jobs.job import EpochRecord, Job, JobStatus
from repro.jobs.throughput import ThroughputModel, split_batch
from repro.scaling.overhead import ReconfigurationKind


@dataclass(frozen=True)
class SchedulerCapabilities:
    """The capability matrix of Table 3."""

    strategy: str  # "dynamic" or "greedy"
    allows_preemption: bool
    elastic_job_size: bool
    elastic_batch_size: bool

    def __post_init__(self) -> None:
        if self.strategy not in ("dynamic", "greedy"):
            raise ValueError("strategy must be 'dynamic' or 'greedy'")

    def as_row(self) -> Dict[str, str]:
        """Render the capabilities as a Table-3 row."""
        yn = lambda flag: "Y" if flag else "N"
        return {
            "Greedy/Dynamic Strategy": self.strategy.capitalize(),
            "Allow Preemption": yn(self.allows_preemption),
            "Elastic Job Size": yn(self.elastic_job_size),
            "Elastic Batch Size": yn(self.elastic_batch_size),
        }


@dataclass
class ClusterState:
    """Read-only snapshot handed to scheduler callbacks.

    Freshness contract: the simulator keeps per-job progress in a
    vectorized ledger between events (:mod:`repro.sim.ledger`) and
    materializes it back into the ``Job`` objects immediately before a
    snapshot is built — so within a callback every job attribute is
    exact for ``now``.  Do *not* stash ``Job`` references and read their
    progress outside a callback: between events they may lag behind the
    ledger until the next materialization point.

    Availability contract: ``unavailable_gpus`` holds the GPUs of nodes
    that are currently down (fault injection,
    :mod:`repro.faults`).  Schedulers must place workers only on
    *available* GPUs — :meth:`available_gpu_ids` and :meth:`free_gpus`
    already exclude the down ones, so policies built on them are
    fault-aware for free; the simulator rejects any proposal touching an
    unavailable GPU.
    """

    now: float
    topology: ClusterTopology
    throughput_model: ThroughputModel
    allocation: Allocation
    jobs: Dict[str, Job]
    unavailable_gpus: FrozenSet[int] = frozenset()

    # -- job views ------------------------------------------------------------------

    def active_jobs(self) -> Dict[str, Job]:
        """Jobs that have arrived and not yet completed."""
        return {
            job_id: job
            for job_id, job in self.jobs.items()
            if job.status is not JobStatus.COMPLETED and job.arrival_time <= self.now
        }

    def running_jobs(self) -> Dict[str, Job]:
        """Jobs currently holding at least one GPU."""
        return {j: job for j, job in self.active_jobs().items() if job.is_running}

    def pending_jobs(self) -> Dict[str, Job]:
        """Jobs waiting for an allocation, ordered by arrival time."""
        pending = {
            j: job for j, job in self.active_jobs().items() if not job.is_running
        }
        return dict(sorted(pending.items(), key=lambda kv: (kv[1].arrival_time, kv[0])))

    def available_gpu_ids(self) -> List[int]:
        """GPU ids that are physically up (ascending); the schedulable set."""
        if not self.unavailable_gpus:
            return [int(g) for g in self.topology.all_gpu_ids()]
        return [
            int(g)
            for g in self.topology.all_gpu_ids()
            if int(g) not in self.unavailable_gpus
        ]

    def free_gpus(self) -> List[int]:
        """Idle *and available* GPU ids under the deployed allocation."""
        free = self.allocation.free_gpus(self.topology.all_gpu_ids())
        if not self.unavailable_gpus:
            return free
        return [g for g in free if g not in self.unavailable_gpus]

    # -- throughput helpers -----------------------------------------------------------

    def estimate_throughput(
        self, job: Job, gpu_ids: Sequence[int], global_batch: int
    ) -> float:
        """Model-predicted throughput of ``job`` for a hypothetical config."""
        gpu_ids = list(gpu_ids)
        if not gpu_ids or global_batch <= 0:
            return 0.0
        local = split_batch(global_batch, len(gpu_ids))
        return self.throughput_model.throughput(job.spec.model, local, gpu_ids)

    def observed_or_estimated_throughput(self, job: Job) -> float:
        """Measured throughput when available, model estimate otherwise."""
        if job.throughput_profile.count > 0 and job.measured_throughput > 0:
            return job.measured_throughput
        config = self.allocation.config_of(job.job_id)
        if config is not None:
            return self.throughput_model.throughput(
                job.spec.model, list(config.local_batches), list(config.gpu_ids)
            )
        # Fall back to a single-GPU estimate at the user's batch size.
        local = min(user_local_batch(job), job.spec.max_local_batch)
        return self.throughput_model.throughput(job.spec.model, [local], [0])


class SchedulerBase(abc.ABC):
    """Abstract scheduler: event callbacks that may propose new allocations."""

    #: Human-readable name used in reports.
    name: str = "scheduler"
    #: Table-3 capabilities; subclasses must override.
    capabilities: SchedulerCapabilities = SchedulerCapabilities(
        strategy="greedy",
        allows_preemption=False,
        elastic_job_size=False,
        elastic_batch_size=False,
    )
    #: How re-configurations of running jobs are executed (Fig. 16).
    reconfiguration_kind: ReconfigurationKind = ReconfigurationKind.CHECKPOINT
    #: If set, the simulator fires a periodic timer every this many seconds.
    timer_interval: Optional[float] = None

    # -- event callbacks -------------------------------------------------------------------

    def on_job_arrival(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        """A new job was submitted."""
        return None

    def on_epoch_end(
        self, job: Job, record: EpochRecord, state: ClusterState
    ) -> Optional[Allocation]:
        """A running job finished a training epoch and uploaded progress."""
        return None

    def on_job_completion(self, job: Job, state: ClusterState) -> Optional[Allocation]:
        """A job converged; its GPUs have already been released in ``state``."""
        return None

    def on_timer(self, state: ClusterState) -> Optional[Allocation]:
        """Periodic rescheduling tick (only fired when ``timer_interval`` is set)."""
        return None

    def on_fault(self, state: ClusterState) -> Optional[Allocation]:
        """The cluster's capacity just changed (node down or back up).

        Called by the fault handlers *after* affected jobs have been
        evicted and ``state`` reflects the new availability.  Concrete
        schedulers override this to run their normal rescheduling pass
        (the whole point of the fault harness is that recovery flows
        through the same policy logic as scheduling); the default keeps
        the current allocation and waits for the next regular event.
        """
        return None

    # -- convenience -----------------------------------------------------------------------

    def lr_is_scaled(self) -> bool:
        """Whether jobs run with batch-size-scaled learning rates under this scheduler."""
        return self.capabilities.elastic_batch_size

    def describe(self) -> Dict[str, str]:
        """Name plus Table-3 capability row."""
        row = {"Scheduler": self.name}
        row.update(self.capabilities.as_row())
        return row


# --- shared helpers used by several schedulers ---------------------------------------------


def user_local_batch(job: Job) -> int:
    """The per-GPU batch size implied by the user's submission.

    Users submit a global batch tuned for ``requested_gpus`` workers; the
    common fixed-local-batch practice keeps ``base_batch / requested_gpus``
    samples per GPU regardless of how many GPUs the scheduler grants.
    """
    local = max(1, job.spec.base_batch // max(1, job.spec.requested_gpus))
    return min(local, job.spec.max_local_batch)


def pick_gpus_packed(
    topology: ClusterTopology, free_gpus: Sequence[int], count: int
) -> List[int]:
    """Choose ``count`` GPUs from ``free_gpus`` minimising the servers spanned.

    Nodes with the most free GPUs are filled first, so multi-GPU jobs
    stay inside as few servers as possible (good all-reduce locality).
    Returns fewer than ``count`` ids when not enough GPUs are free.
    """
    if count <= 0:
        return []
    free = [int(g) for g in free_gpus]
    if not free:
        return []
    by_node: Dict[int, List[int]] = {}
    for gpu in free:
        by_node.setdefault(int(topology.node_of(gpu)), []).append(gpu)
    # Sort nodes by how many free GPUs they have (descending), then by id
    # for determinism; within a node keep ascending GPU ids.
    ordered_nodes = sorted(by_node.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    chosen: List[int] = []
    for _, gpus in ordered_nodes:
        for gpu in sorted(gpus):
            if len(chosen) >= count:
                return chosen
            chosen.append(gpu)
    return chosen


def allocation_with_job(
    base: Allocation,
    job: Job,
    gpu_ids: Sequence[int],
    local_batches: Sequence[int],
) -> Allocation:
    """Return a copy of ``base`` with ``job`` (re)placed on ``gpu_ids``."""
    gpu_ids = [int(g) for g in gpu_ids]
    if len(gpu_ids) != len(local_batches):
        raise ValueError("gpu_ids and local_batches must align")
    mapping = base.as_dict()
    # Remove the job's previous workers.
    mapping = {g: w for g, w in mapping.items() if w[0] != job.job_id}
    for gpu, batch in zip(gpu_ids, local_batches):
        if gpu in mapping:
            raise ValueError(
                f"GPU {gpu} is already occupied by job {mapping[gpu][0]!r}"
            )
        mapping[gpu] = (job.job_id, int(batch))
    return Allocation.from_job_map(_group_by_job(mapping))


def allocation_without_jobs(base: Allocation, job_ids: Sequence[str]) -> Allocation:
    """Return a copy of ``base`` with all workers of ``job_ids`` removed."""
    drop = set(job_ids)
    mapping = {g: w for g, w in base.as_dict().items() if w[0] not in drop}
    return Allocation.from_job_map(_group_by_job(mapping))


def _group_by_job(mapping: Dict[int, Tuple[str, int]]) -> Dict[str, List[Tuple[int, int]]]:
    grouped: Dict[str, List[Tuple[int, int]]] = {}
    for gpu, (job_id, batch) in mapping.items():
        grouped.setdefault(job_id, []).append((gpu, batch))
    return grouped
