"""Arrival-process models beyond the basic Poisson stream.

The paper's evaluation uses a single trace-driven workload, but real
cluster traces (e.g. the Philly trace analysed in related work) show
pronounced diurnal patterns and bursts.  To support sensitivity studies,
this module provides three arrival processes with a common interface:

* :class:`PoissonArrivals` — homogeneous Poisson (the default generator).
* :class:`DiurnalArrivals` — an inhomogeneous Poisson process whose rate
  follows a day/night sinusoid.
* :class:`BurstyArrivals` — a Markov-modulated Poisson process that
  alternates between a quiet and a bursty regime.

Each process produces arrival *timestamps*; the trace generator pairs
them with workload templates.

On top of the raw processes sits a *declarative* layer in the style of
the fault-profile registry (:mod:`repro.faults.profiles`): an
:class:`ArrivalConfig` names a registered profile plus its scalar
parameters and a seed, JSON round-trips like every other config, and is
content-hashable via :meth:`ArrivalConfig.config_key`.  Determinism
contract: generating from a config uses **only** a ``numpy`` generator
seeded from the config — no wall clock, no ``hash()`` — so the same
config produces a bit-identical arrival stream in any process regardless
of ``PYTHONHASHSEED``.  The scheduler service uses these configs as its
load driver (``repro-ones submit --arrival-profile ...``).
"""

from __future__ import annotations

import abc
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.units import HOUR
from repro.utils.validation import check_positive, check_positive_int, check_probability


class ArrivalProcess(abc.ABC):
    """Common interface: generate ``n`` arrival timestamps (sorted, >= 0)."""

    @abc.abstractmethod
    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        """Return ``num_jobs`` sorted arrival times starting at 0."""

    def _finalize(self, times: Sequence[float], num_jobs: int) -> np.ndarray:
        arr = np.asarray(list(times)[:num_jobs], dtype=float)
        arr.sort()
        if arr.size:
            arr -= arr[0]
        return arr


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals with rate λ (jobs/second)."""

    rate: float = 1.0 / 30.0

    def __post_init__(self) -> None:
        check_positive(self.rate, "rate")

    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        check_positive_int(num_jobs, "num_jobs")
        rng = as_generator(rng)
        gaps = rng.exponential(1.0 / self.rate, size=num_jobs)
        times = np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
        return self._finalize(times, num_jobs)


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally-modulated Poisson arrivals (busy days, quiet nights).

    The instantaneous rate is
    ``λ(t) = base_rate · (1 + amplitude · sin(2πt / period + phase))``
    and arrivals are drawn by thinning a homogeneous process at the peak
    rate.
    """

    base_rate: float = 1.0 / 30.0
    amplitude: float = 0.8
    period: float = 24.0 * HOUR
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.base_rate, "base_rate")
        check_probability(self.amplitude, "amplitude")
        check_positive(self.period, "period")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )

    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        check_positive_int(num_jobs, "num_jobs")
        rng = as_generator(rng)
        peak = self.base_rate * (1.0 + self.amplitude)
        times: List[float] = []
        t = 0.0
        # Thinning: propose at the peak rate, accept with probability λ(t)/peak.
        while len(times) < num_jobs:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() <= self.rate_at(t) / peak:
                times.append(t)
        return self._finalize(times, num_jobs)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (quiet / burst)."""

    quiet_rate: float = 1.0 / 60.0
    burst_rate: float = 1.0 / 5.0
    mean_quiet_duration: float = 600.0
    mean_burst_duration: float = 120.0

    def __post_init__(self) -> None:
        check_positive(self.quiet_rate, "quiet_rate")
        check_positive(self.burst_rate, "burst_rate")
        check_positive(self.mean_quiet_duration, "mean_quiet_duration")
        check_positive(self.mean_burst_duration, "mean_burst_duration")
        if self.burst_rate <= self.quiet_rate:
            raise ValueError("burst_rate must exceed quiet_rate")

    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        check_positive_int(num_jobs, "num_jobs")
        rng = as_generator(rng)
        times: List[float] = []
        t = 0.0
        bursting = False
        phase_end = float(rng.exponential(self.mean_quiet_duration))
        while len(times) < num_jobs:
            rate = self.burst_rate if bursting else self.quiet_rate
            gap = float(rng.exponential(1.0 / rate))
            if t + gap >= phase_end:
                # Switch regime at the phase boundary and continue from there.
                t = phase_end
                bursting = not bursting
                mean = self.mean_burst_duration if bursting else self.mean_quiet_duration
                phase_end = t + float(rng.exponential(mean))
                continue
            t += gap
            times.append(t)
        return self._finalize(times, num_jobs)


# --- the declarative profile registry -------------------------------------------------

#: Profile signature: ``(config) -> ArrivalProcess``.
ArrivalProfileFn = Callable[["ArrivalConfig"], ArrivalProcess]

_ARRIVAL_PROFILES: Dict[str, Tuple[ArrivalProfileFn, str]] = {}


class UnknownArrivalProfileError(KeyError):
    """Raised when a profile name does not resolve to a generator."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown arrival profile {name!r}; available: "
            f"{', '.join(available_arrival_profiles())}"
        )

    def __str__(self) -> str:  # KeyError quotes its repr by default
        return self.args[0]


def register_arrival_profile(
    name: str, description: str = ""
) -> Callable[[ArrivalProfileFn], ArrivalProfileFn]:
    """Decorator registering an arrival-profile factory under ``name``."""
    key = str(name).lower()
    if not key:
        raise ValueError("profile name must be a non-empty string")

    def decorator(fn: ArrivalProfileFn) -> ArrivalProfileFn:
        if key in _ARRIVAL_PROFILES:
            raise ValueError(f"arrival profile {key!r} is already registered")
        _ARRIVAL_PROFILES[key] = (fn, description)
        return fn

    return decorator


def available_arrival_profiles() -> Tuple[str, ...]:
    """Names of every registered arrival profile, in registration order."""
    return tuple(_ARRIVAL_PROFILES)


def arrival_profile_table() -> List[Dict[str, str]]:
    """``{profile, description}`` rows for CLI listings."""
    return [
        {"profile": name, "description": description}
        for name, (_, description) in _ARRIVAL_PROFILES.items()
    ]


@dataclass(frozen=True)
class ArrivalConfig:
    """Declarative, seeded description of an arrival stream.

    Parameters
    ----------
    profile:
        A registered profile name (``poisson``, ``diurnal``, ``bursty``).
    rate:
        Base arrival rate in jobs/second (the Poisson rate, the diurnal
        mean rate, or the bursty quiet-phase rate).
    seed:
        Seed of the stream's own RNG; the generated timestamps are a pure
        function of ``(config)`` including this seed.
    amplitude / period_hours / phase:
        Diurnal modulation (day/night sinusoid).
    burst_factor / mean_quiet_s / mean_burst_s:
        Bursty regime: the burst-phase rate is ``rate * burst_factor``.
    """

    profile: str = "poisson"
    rate: float = 1.0 / 30.0
    seed: int = 2021
    amplitude: float = 0.8
    period_hours: float = 24.0
    phase: float = 0.0
    burst_factor: float = 10.0
    mean_quiet_s: float = 600.0
    mean_burst_s: float = 120.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "profile", str(self.profile).lower())
        check_positive(self.rate, "rate")
        check_probability(self.amplitude, "amplitude")
        check_positive(self.period_hours, "period_hours")
        check_positive(self.mean_quiet_s, "mean_quiet_s")
        check_positive(self.mean_burst_s, "mean_burst_s")
        if self.burst_factor <= 1.0:
            raise ValueError("burst_factor must exceed 1.0")

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "profile": str(self.profile),
            "rate": float(self.rate),
            "seed": int(self.seed),
            "amplitude": float(self.amplitude),
            "period_hours": float(self.period_hours),
            "phase": float(self.phase),
            "burst_factor": float(self.burst_factor),
            "mean_quiet_s": float(self.mean_quiet_s),
            "mean_burst_s": float(self.mean_burst_s),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ArrivalConfig":
        """Rebuild an :class:`ArrivalConfig` from :meth:`to_dict` output."""
        return cls(
            profile=str(payload["profile"]),
            rate=float(payload["rate"]),
            seed=int(payload["seed"]),
            amplitude=float(payload.get("amplitude", 0.8)),
            period_hours=float(payload.get("period_hours", 24.0)),
            phase=float(payload.get("phase", 0.0)),
            burst_factor=float(payload.get("burst_factor", 10.0)),
            mean_quiet_s=float(payload.get("mean_quiet_s", 600.0)),
            mean_burst_s=float(payload.get("mean_burst_s", 120.0)),
        )

    def config_key(self) -> str:
        """Content hash of the config (cache / provenance key)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- generation ---------------------------------------------------------------------

    def build_process(self) -> ArrivalProcess:
        """Instantiate the registered :class:`ArrivalProcess` of this config."""
        entry = _ARRIVAL_PROFILES.get(self.profile)
        if entry is None:
            raise UnknownArrivalProfileError(self.profile)
        return entry[0](self)

    def generate(self, num_jobs: int) -> np.ndarray:
        """``num_jobs`` sorted arrival timestamps, deterministic in the config."""
        rng = np.random.Generator(np.random.PCG64(int(self.seed)))
        return self.build_process().generate(num_jobs, rng)


@register_arrival_profile("poisson", "homogeneous Poisson stream (rate jobs/s)")
def _poisson_arrival_profile(config: ArrivalConfig) -> ArrivalProcess:
    return PoissonArrivals(rate=config.rate)


@register_arrival_profile("diurnal", "sinusoidal day/night modulated Poisson stream")
def _diurnal_arrival_profile(config: ArrivalConfig) -> ArrivalProcess:
    return DiurnalArrivals(
        base_rate=config.rate,
        amplitude=config.amplitude,
        period=config.period_hours * HOUR,
        phase=config.phase,
    )


@register_arrival_profile("bursty", "Markov-modulated quiet/burst regime stream")
def _bursty_arrival_profile(config: ArrivalConfig) -> ArrivalProcess:
    return BurstyArrivals(
        quiet_rate=config.rate,
        burst_rate=config.rate * config.burst_factor,
        mean_quiet_duration=config.mean_quiet_s,
        mean_burst_duration=config.mean_burst_s,
    )


def interarrival_statistics(times: Sequence[float]) -> dict:
    """Mean / std / burstiness (coefficient of variation) of inter-arrivals."""
    arr = np.sort(np.asarray(list(times), dtype=float))
    if arr.size < 2:
        return {"mean": 0.0, "std": 0.0, "cv": 0.0, "count": int(arr.size)}
    gaps = np.diff(arr)
    mean = float(np.mean(gaps))
    std = float(np.std(gaps))
    return {
        "mean": mean,
        "std": std,
        "cv": std / mean if mean > 0 else 0.0,
        "count": int(arr.size),
    }
