"""Arrival-process models beyond the basic Poisson stream.

The paper's evaluation uses a single trace-driven workload, but real
cluster traces (e.g. the Philly trace analysed in related work) show
pronounced diurnal patterns and bursts.  To support sensitivity studies,
this module provides three arrival processes with a common interface:

* :class:`PoissonArrivals` — homogeneous Poisson (the default generator).
* :class:`DiurnalArrivals` — an inhomogeneous Poisson process whose rate
  follows a day/night sinusoid.
* :class:`BurstyArrivals` — a Markov-modulated Poisson process that
  alternates between a quiet and a bursty regime.

Each process produces arrival *timestamps*; the trace generator pairs
them with workload templates.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.units import HOUR
from repro.utils.validation import check_positive, check_positive_int, check_probability


class ArrivalProcess(abc.ABC):
    """Common interface: generate ``n`` arrival timestamps (sorted, >= 0)."""

    @abc.abstractmethod
    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        """Return ``num_jobs`` sorted arrival times starting at 0."""

    def _finalize(self, times: Sequence[float], num_jobs: int) -> np.ndarray:
        arr = np.asarray(list(times)[:num_jobs], dtype=float)
        arr.sort()
        if arr.size:
            arr -= arr[0]
        return arr


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals with rate λ (jobs/second)."""

    rate: float = 1.0 / 30.0

    def __post_init__(self) -> None:
        check_positive(self.rate, "rate")

    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        check_positive_int(num_jobs, "num_jobs")
        rng = as_generator(rng)
        gaps = rng.exponential(1.0 / self.rate, size=num_jobs)
        times = np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
        return self._finalize(times, num_jobs)


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally-modulated Poisson arrivals (busy days, quiet nights).

    The instantaneous rate is
    ``λ(t) = base_rate · (1 + amplitude · sin(2πt / period + phase))``
    and arrivals are drawn by thinning a homogeneous process at the peak
    rate.
    """

    base_rate: float = 1.0 / 30.0
    amplitude: float = 0.8
    period: float = 24.0 * HOUR
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.base_rate, "base_rate")
        check_probability(self.amplitude, "amplitude")
        check_positive(self.period, "period")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )

    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        check_positive_int(num_jobs, "num_jobs")
        rng = as_generator(rng)
        peak = self.base_rate * (1.0 + self.amplitude)
        times: List[float] = []
        t = 0.0
        # Thinning: propose at the peak rate, accept with probability λ(t)/peak.
        while len(times) < num_jobs:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() <= self.rate_at(t) / peak:
                times.append(t)
        return self._finalize(times, num_jobs)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (quiet / burst)."""

    quiet_rate: float = 1.0 / 60.0
    burst_rate: float = 1.0 / 5.0
    mean_quiet_duration: float = 600.0
    mean_burst_duration: float = 120.0

    def __post_init__(self) -> None:
        check_positive(self.quiet_rate, "quiet_rate")
        check_positive(self.burst_rate, "burst_rate")
        check_positive(self.mean_quiet_duration, "mean_quiet_duration")
        check_positive(self.mean_burst_duration, "mean_burst_duration")
        if self.burst_rate <= self.quiet_rate:
            raise ValueError("burst_rate must exceed quiet_rate")

    def generate(self, num_jobs: int, rng: SeedLike = None) -> np.ndarray:
        check_positive_int(num_jobs, "num_jobs")
        rng = as_generator(rng)
        times: List[float] = []
        t = 0.0
        bursting = False
        phase_end = float(rng.exponential(self.mean_quiet_duration))
        while len(times) < num_jobs:
            rate = self.burst_rate if bursting else self.quiet_rate
            gap = float(rng.exponential(1.0 / rate))
            if t + gap >= phase_end:
                # Switch regime at the phase boundary and continue from there.
                t = phase_end
                bursting = not bursting
                mean = self.mean_burst_duration if bursting else self.mean_quiet_duration
                phase_end = t + float(rng.exponential(mean))
                continue
            t += gap
            times.append(t)
        return self._finalize(times, num_jobs)


def interarrival_statistics(times: Sequence[float]) -> dict:
    """Mean / std / burstiness (coefficient of variation) of inter-arrivals."""
    arr = np.sort(np.asarray(list(times), dtype=float))
    if arr.size < 2:
        return {"mean": 0.0, "std": 0.0, "cv": 0.0, "count": int(arr.size)}
    gaps = np.diff(arr)
    mean = float(np.mean(gaps))
    std = float(np.std(gaps))
    return {
        "mean": mean,
        "std": std,
        "cv": std / mean if mean > 0 else 0.0,
        "count": int(arr.size),
    }
