"""Trace (de)serialisation and statistics.

Experiments must replay *identical* workloads across the four schedulers
(ONES, DRL, Tiresias, Optimus) so that JCT differences come from
scheduling decisions, not trace noise.  A trace is serialised to plain
JSON-compatible dictionaries; loading reconstructs full
:class:`repro.jobs.job.JobSpec` objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.jobs.convergence import ConvergenceProfile
from repro.jobs.job import JobSpec
from repro.jobs.model_zoo import ModelSpec


def jobspec_to_dict(spec: JobSpec) -> Dict:
    """Serialise a :class:`JobSpec` into a JSON-compatible dictionary."""
    model = spec.model
    conv = spec.convergence
    return {
        "job_id": spec.job_id,
        "task": spec.task,
        "dataset": spec.dataset,
        "dataset_size": spec.dataset_size,
        "num_classes": spec.num_classes,
        "base_batch": spec.base_batch,
        "base_lr": spec.base_lr,
        "requested_gpus": spec.requested_gpus,
        "arrival_time": spec.arrival_time,
        "convergence_patience": spec.convergence_patience,
        "model": {
            "name": model.name,
            "num_parameters": model.num_parameters,
            "flops_per_sample": model.flops_per_sample,
            "max_local_batch": model.max_local_batch,
            "bytes_per_parameter": model.bytes_per_parameter,
            "checkpoint_bytes": model.checkpoint_bytes,
        },
        "convergence": {
            "base_epochs_to_target": conv.base_epochs_to_target,
            "target_accuracy": conv.target_accuracy,
            "max_accuracy": conv.max_accuracy,
            "initial_loss": conv.initial_loss,
            "final_loss": conv.final_loss,
            "reference_batch": conv.reference_batch,
            "critical_batch": conv.critical_batch,
            "penalty_per_doubling": conv.penalty_per_doubling,
            "unscaled_penalty_per_doubling": conv.unscaled_penalty_per_doubling,
            "loss_spike_per_doubling": conv.loss_spike_per_doubling,
            "spike_recovery_epochs": conv.spike_recovery_epochs,
        },
    }


def jobspec_from_dict(payload: Dict) -> JobSpec:
    """Reconstruct a :class:`JobSpec` from :func:`jobspec_to_dict` output."""
    model = ModelSpec(**payload["model"])
    convergence = ConvergenceProfile(**payload["convergence"])
    return JobSpec(
        job_id=payload["job_id"],
        task=payload["task"],
        model=model,
        dataset=payload["dataset"],
        dataset_size=int(payload["dataset_size"]),
        num_classes=int(payload["num_classes"]),
        convergence=convergence,
        base_batch=int(payload["base_batch"]),
        base_lr=float(payload["base_lr"]),
        requested_gpus=int(payload["requested_gpus"]),
        arrival_time=float(payload["arrival_time"]),
        convergence_patience=int(payload["convergence_patience"]),
    )


def save_trace(trace: Sequence[JobSpec], path: Union[str, Path]) -> Path:
    """Write a trace to a JSON file; returns the path written."""
    path = Path(path)
    payload = [jobspec_to_dict(spec) for spec in trace]
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_trace(path: Union[str, Path]) -> List[JobSpec]:
    """Load a trace previously written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"trace file {path} does not contain a list of jobs")
    return [jobspec_from_dict(item) for item in payload]


def trace_statistics(trace: Iterable[JobSpec]) -> Dict[str, float]:
    """Summary statistics of a trace used in experiment reports."""
    trace = list(trace)
    if not trace:
        raise ValueError("cannot summarise an empty trace")
    arrivals = np.asarray([spec.arrival_time for spec in trace], dtype=float)
    sizes = np.asarray([spec.dataset_size for spec in trace], dtype=float)
    gpus = np.asarray([spec.requested_gpus for spec in trace], dtype=float)
    inter = np.diff(np.sort(arrivals)) if len(arrivals) > 1 else np.asarray([0.0])
    families: Dict[str, int] = {}
    for spec in trace:
        families[spec.dataset] = families.get(spec.dataset, 0) + 1
    return {
        "num_jobs": float(len(trace)),
        "makespan_of_arrivals": float(arrivals.max() - arrivals.min()),
        "mean_interarrival": float(inter.mean()),
        "mean_dataset_size": float(sizes.mean()),
        "mean_requested_gpus": float(gpus.mean()),
        "max_requested_gpus": float(gpus.max()),
        **{f"count_{name}": float(count) for name, count in sorted(families.items())},
    }
