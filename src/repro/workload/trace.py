"""Trace generation: online job arrivals over the Table-2 catalogue.

The paper generates "custom traces with typical DL tasks" and evaluates
online scheduling — jobs arrive over time and the scheduler cannot see
the future.  We model arrivals as a Poisson process (exponential
inter-arrival times with rate λ) and draw each job's workload template
uniformly from the catalogue and its requested GPU count from a skewed
distribution (most users ask for 1–2 GPUs, a few ask for 4–8), matching
the job-size mix reported in public cluster traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.jobs.job import JobSpec
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int
from repro.workload.tasks import WorkloadTemplate, build_workload_catalog, make_job_spec


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of a synthetic workload trace.

    Parameters
    ----------
    num_jobs:
        Number of jobs in the trace (the paper's main run uses 50).
    arrival_rate:
        Mean job arrivals per second (λ).  The default of one job every
        30 s keeps a 64-GPU cluster busy without saturating it, similar
        in spirit to the paper's setting where queuing time is tens of
        seconds on average.
    gpu_request_choices / gpu_request_weights:
        Distribution of the user-requested job size.
    convergence_jitter:
        Whether to jitter per-job convergence speed (two jobs of the same
        template then differ slightly).
    """

    num_jobs: int = 50
    arrival_rate: float = 1.0 / 30.0
    gpu_request_choices: Tuple[int, ...] = (1, 2, 4, 8)
    gpu_request_weights: Tuple[float, ...] = (0.45, 0.30, 0.17, 0.08)
    convergence_jitter: bool = True
    convergence_patience: int = 10

    def __post_init__(self) -> None:
        check_positive_int(self.num_jobs, "num_jobs")
        check_positive(self.arrival_rate, "arrival_rate")
        if len(self.gpu_request_choices) != len(self.gpu_request_weights):
            raise ValueError("gpu_request_choices and gpu_request_weights must align")
        if any(c < 1 for c in self.gpu_request_choices):
            raise ValueError("gpu_request_choices must all be >= 1")
        total = float(sum(self.gpu_request_weights))
        if total <= 0:
            raise ValueError("gpu_request_weights must sum to a positive value")
        check_positive_int(self.convergence_patience, "convergence_patience")

    @property
    def normalized_weights(self) -> np.ndarray:
        """GPU-request weights normalised to sum to 1."""
        weights = np.asarray(self.gpu_request_weights, dtype=float)
        return weights / weights.sum()

    # -- serialization (used by declarative experiment specs) ---------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation (round-trips through :meth:`from_dict`)."""
        return {
            "num_jobs": int(self.num_jobs),
            "arrival_rate": float(self.arrival_rate),
            "gpu_request_choices": [int(c) for c in self.gpu_request_choices],
            "gpu_request_weights": [float(w) for w in self.gpu_request_weights],
            "convergence_jitter": bool(self.convergence_jitter),
            "convergence_patience": int(self.convergence_patience),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceConfig":
        """Rebuild a :class:`TraceConfig` from :meth:`to_dict` output."""
        return cls(
            num_jobs=int(payload["num_jobs"]),
            arrival_rate=float(payload["arrival_rate"]),
            gpu_request_choices=tuple(int(c) for c in payload["gpu_request_choices"]),
            gpu_request_weights=tuple(float(w) for w in payload["gpu_request_weights"]),
            convergence_jitter=bool(payload["convergence_jitter"]),
            convergence_patience=int(payload["convergence_patience"]),
        )


class TraceGenerator:
    """Generates reproducible job traces from the Table-2 catalogue."""

    def __init__(
        self,
        config: Optional[TraceConfig] = None,
        catalog: Optional[Sequence[WorkloadTemplate]] = None,
        seed: SeedLike = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.catalog: List[WorkloadTemplate] = (
            list(catalog) if catalog is not None else build_workload_catalog()
        )
        if not self.catalog:
            raise ValueError("workload catalog must not be empty")
        self._rng = as_generator(seed)

    def generate(self) -> List[JobSpec]:
        """Generate a trace of ``config.num_jobs`` jobs sorted by arrival time."""
        cfg = self.config
        inter_arrivals = self._rng.exponential(1.0 / cfg.arrival_rate, size=cfg.num_jobs)
        # The first job arrives at t = 0 so the cluster starts busy.
        arrival_times = np.concatenate([[0.0], np.cumsum(inter_arrivals)[:-1]])
        template_idx = self._rng.integers(0, len(self.catalog), size=cfg.num_jobs)
        gpu_requests = self._rng.choice(
            cfg.gpu_request_choices, size=cfg.num_jobs, p=cfg.normalized_weights
        )
        jobs: List[JobSpec] = []
        for i in range(cfg.num_jobs):
            template = self.catalog[int(template_idx[i])]
            jobs.append(
                make_job_spec(
                    template=template,
                    job_id=f"job-{i:03d}",
                    arrival_time=float(arrival_times[i]),
                    requested_gpus=int(gpu_requests[i]),
                    rng=self._rng if cfg.convergence_jitter else None,
                    convergence_patience=cfg.convergence_patience,
                )
            )
        jobs.sort(key=lambda spec: (spec.arrival_time, spec.job_id))
        return jobs

    def generate_batch_arrival(self, at_time: float = 0.0) -> List[JobSpec]:
        """Generate a trace where every job arrives at the same instant.

        Useful for offline-scheduling unit tests where queueing dynamics
        should not depend on arrival order.
        """
        jobs = self.generate()
        return [
            JobSpec(
                job_id=spec.job_id,
                task=spec.task,
                model=spec.model,
                dataset=spec.dataset,
                dataset_size=spec.dataset_size,
                num_classes=spec.num_classes,
                convergence=spec.convergence,
                base_batch=spec.base_batch,
                base_lr=spec.base_lr,
                requested_gpus=spec.requested_gpus,
                arrival_time=float(at_time),
                convergence_patience=spec.convergence_patience,
            )
            for spec in jobs
        ]
