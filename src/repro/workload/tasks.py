"""The Table-2 workload catalogue.

Table 2 of the paper enumerates 50 workloads:

====  =========  ==========================  ======================  ========
Task  Dataset    Models                      Dataset sizes           #Classes
====  =========  ==========================  ======================  ========
CV    ImageNet   AlexNet, ResNet50, VGG16,   10k, 12k, …, 20k        10…20
                 InceptionV3
CV    CIFAR10    ResNet18, VGG16, GoogleNet  20k, 25k, 30k, 35k, 40k 10
NLP   COLA       BERT (pre-trained)          5k, 6k, 7k, 8k          2
NLP   MRPC       BERT (pre-trained)          3.6k                    2
NLP   SST-2      BERT (pre-trained)          10k, 12k, …, 20k        2
====  =========  ==========================  ======================  ========

4 × 6 + 3 × 5 + 4 + 1 + 6 = 50 workload templates.  Each template carries
the hyper-parameters of the analytic convergence profile (target accuracy,
critical batch size, epochs to target, …) used by the simulator.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.jobs.convergence import ConvergenceProfile
from repro.jobs.job import JobSpec
from repro.jobs.model_zoo import ModelSpec, get_model
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_positive_int


class TaskFamily(enum.Enum):
    """High-level task families of Table 2."""

    CV = "cv"
    NLP = "nlp"


@dataclass(frozen=True)
class WorkloadTemplate:
    """One row of the expanded Table 2: a concrete trainable workload."""

    name: str
    family: TaskFamily
    dataset: str
    model_name: str
    dataset_size: int
    num_classes: int
    compute_scale: float
    local_base_batch: int
    base_lr: float
    target_accuracy: float
    max_accuracy: float
    base_epochs_to_target: float
    critical_batch: int
    final_loss: float

    def __post_init__(self) -> None:
        check_positive_int(self.dataset_size, "dataset_size")
        check_positive_int(self.num_classes, "num_classes")
        check_positive(self.compute_scale, "compute_scale")
        check_positive_int(self.local_base_batch, "local_base_batch")
        check_positive(self.base_lr, "base_lr")
        check_positive(self.base_epochs_to_target, "base_epochs_to_target")
        check_positive_int(self.critical_batch, "critical_batch")

    @property
    def initial_loss(self) -> float:
        """Loss of an untrained classifier: ``ln(num_classes)``."""
        return math.log(max(2, self.num_classes))

    def model(self) -> ModelSpec:
        """The model spec scaled for this dataset's input size."""
        base = get_model(self.model_name)
        if abs(self.compute_scale - 1.0) < 1e-12:
            return base
        return base.scaled(self.compute_scale, name_suffix=f"@{self.dataset}")

    def convergence_profile(self) -> ConvergenceProfile:
        """Build the convergence profile of this workload."""
        return ConvergenceProfile(
            base_epochs_to_target=self.base_epochs_to_target,
            target_accuracy=self.target_accuracy,
            max_accuracy=self.max_accuracy,
            initial_loss=self.initial_loss,
            final_loss=self.final_loss,
            reference_batch=self.local_base_batch,
            critical_batch=self.critical_batch,
        )


# --- per-family defaults -------------------------------------------------------------

_IMAGENET_MODELS = ("alexnet", "resnet50", "vgg16", "inceptionv3")
_IMAGENET_SIZES = tuple(range(10_000, 20_001, 2_000))  # 10k, 12k, ..., 20k
_CIFAR_MODELS = ("resnet18", "vgg16", "googlenet")
_CIFAR_SIZES = (20_000, 25_000, 30_000, 35_000, 40_000)
_NLP_DATASETS: Dict[str, Sequence[int]] = {
    "cola": (5_000, 6_000, 7_000, 8_000),
    "mrpc": (3_600,),
    "sst2": tuple(range(10_000, 20_001, 2_000)),
}

# Per-model convergence speed on the ImageNet subsets (epochs to target).
_IMAGENET_EPOCHS = {
    "alexnet": 12.0,
    "resnet50": 16.0,
    "vgg16": 14.0,
    "inceptionv3": 18.0,
}
_CIFAR_EPOCHS = {"resnet18": 20.0, "vgg16": 18.0, "googlenet": 22.0}
_NLP_EPOCHS = {"cola": 4.0, "mrpc": 3.5, "sst2": 5.0}
_NLP_TARGET = {"cola": 0.78, "mrpc": 0.82, "sst2": 0.88}
_NLP_MAX = {"cola": 0.84, "mrpc": 0.88, "sst2": 0.93}


def _imagenet_template(model_name: str, dataset_size: int, num_classes: int) -> WorkloadTemplate:
    return WorkloadTemplate(
        name=f"imagenet-{model_name}-{dataset_size // 1000}k",
        family=TaskFamily.CV,
        dataset="imagenet",
        model_name=model_name,
        dataset_size=dataset_size,
        num_classes=num_classes,
        compute_scale=1.0,
        local_base_batch=64,
        base_lr=0.1,
        target_accuracy=0.75,
        max_accuracy=0.86,
        base_epochs_to_target=_IMAGENET_EPOCHS[model_name],
        critical_batch=1024,
        final_loss=0.25,
    )


def _cifar_template(model_name: str, dataset_size: int) -> WorkloadTemplate:
    return WorkloadTemplate(
        name=f"cifar10-{model_name}-{dataset_size // 1000}k",
        family=TaskFamily.CV,
        dataset="cifar10",
        model_name=model_name,
        dataset_size=dataset_size,
        num_classes=10,
        compute_scale=0.12,
        local_base_batch=128,
        base_lr=0.1,
        target_accuracy=0.85,
        max_accuracy=0.93,
        base_epochs_to_target=_CIFAR_EPOCHS[model_name],
        critical_batch=2048,
        final_loss=0.15,
    )


def _nlp_template(dataset: str, dataset_size: int) -> WorkloadTemplate:
    return WorkloadTemplate(
        name=f"{dataset}-bert-{dataset_size}",
        family=TaskFamily.NLP,
        dataset=dataset,
        model_name="bert",
        dataset_size=dataset_size,
        num_classes=2,
        compute_scale=0.5,
        local_base_batch=16,
        base_lr=2e-5,
        target_accuracy=_NLP_TARGET[dataset],
        max_accuracy=_NLP_MAX[dataset],
        base_epochs_to_target=_NLP_EPOCHS[dataset],
        critical_batch=128,
        final_loss=0.10,
    )


def build_workload_catalog() -> List[WorkloadTemplate]:
    """Expand Table 2 into its 50 concrete workload templates."""
    catalog: List[WorkloadTemplate] = []
    # CV on ImageNet subsets: classes grow with the subset size (10, 12, ..., 20).
    for model_name in _IMAGENET_MODELS:
        for size, classes in zip(_IMAGENET_SIZES, range(10, 21, 2)):
            catalog.append(_imagenet_template(model_name, size, classes))
    # CV on CIFAR-10 subsets.
    for model_name in _CIFAR_MODELS:
        for size in _CIFAR_SIZES:
            catalog.append(_cifar_template(model_name, size))
    # NLP fine-tuning on GLUE subsets.
    for dataset, sizes in _NLP_DATASETS.items():
        for size in sizes:
            catalog.append(_nlp_template(dataset, size))
    return catalog


def catalog_summary(catalog: Optional[Sequence[WorkloadTemplate]] = None) -> Dict[str, int]:
    """Count templates per (task family, dataset) — mirrors Table 2's layout."""
    catalog = list(catalog) if catalog is not None else build_workload_catalog()
    counts: Dict[str, int] = {}
    for template in catalog:
        key = f"{template.family.value}/{template.dataset}"
        counts[key] = counts.get(key, 0) + 1
    counts["total"] = len(catalog)
    return counts


def make_job_spec(
    template: WorkloadTemplate,
    job_id: str,
    arrival_time: float = 0.0,
    requested_gpus: int = 1,
    rng: Optional[np.random.Generator] = None,
    convergence_patience: int = 10,
) -> JobSpec:
    """Instantiate a :class:`JobSpec` from a workload template.

    ``requested_gpus`` is the user-submitted job size honoured by
    fixed-size schedulers; the submitted global batch follows the common
    practice of a fixed per-GPU batch (``local_base_batch × requested``).
    A small amount of convergence-speed jitter can be injected through
    ``rng`` so that two jobs from the same template are not byte-identical.
    """
    check_positive_int(requested_gpus, "requested_gpus")
    from dataclasses import replace as _replace

    model = template.model()
    profile = template.convergence_profile()
    if rng is not None:
        rng = as_generator(rng)
        jitter = float(rng.uniform(0.85, 1.15))
        profile = _replace(
            profile, base_epochs_to_target=profile.base_epochs_to_target * jitter
        )
    local_batch = min(template.local_base_batch, model.max_local_batch)
    base_batch = min(local_batch * requested_gpus, template.dataset_size)
    # The user tunes the learning rate for the batch they submit, so the
    # convergence reference batch is the submitted global batch.
    profile = _replace(profile, reference_batch=base_batch)
    return JobSpec(
        job_id=job_id,
        task=template.name,
        model=model,
        dataset=template.dataset,
        dataset_size=template.dataset_size,
        num_classes=template.num_classes,
        convergence=profile,
        base_batch=base_batch,
        base_lr=template.base_lr,
        requested_gpus=requested_gpus,
        arrival_time=arrival_time,
        convergence_patience=convergence_patience,
    )
