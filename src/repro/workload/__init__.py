"""Trace-driven workloads (Table 2 of the paper).

The evaluation trace mixes computer-vision and NLP training jobs over
reduced dataset sizes so every job finishes within about two hours.
This subpackage provides:

* :mod:`repro.workload.tasks` — the Table-2 catalogue: 50 distinct
  workload templates (model × dataset × dataset size) plus the
  hyper-parameters of their convergence profiles.
* :mod:`repro.workload.trace` — a Poisson-arrival trace generator over
  that catalogue.
* :mod:`repro.workload.replay` — (de)serialisation of traces and trace
  statistics, so experiments can replay identical workloads across
  schedulers.
"""

from repro.workload.tasks import (
    TaskFamily,
    WorkloadTemplate,
    build_workload_catalog,
    make_job_spec,
    catalog_summary,
)
from repro.workload.trace import TraceGenerator, TraceConfig
from repro.workload.replay import (
    jobspec_to_dict,
    jobspec_from_dict,
    save_trace,
    load_trace,
    trace_statistics,
)
from repro.workload.arrivals import (
    ArrivalConfig,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    arrival_profile_table,
    available_arrival_profiles,
    interarrival_statistics,
    register_arrival_profile,
)

__all__ = [
    "ArrivalConfig",
    "arrival_profile_table",
    "available_arrival_profiles",
    "register_arrival_profile",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "interarrival_statistics",
    "TaskFamily",
    "WorkloadTemplate",
    "build_workload_catalog",
    "make_job_spec",
    "catalog_summary",
    "TraceGenerator",
    "TraceConfig",
    "jobspec_to_dict",
    "jobspec_from_dict",
    "save_trace",
    "load_trace",
    "trace_statistics",
]
